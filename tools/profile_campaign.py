"""cProfile a FILVER campaign and print the top cumulative hot functions.

The engine's speed story is constant factors: where a reinforcement
campaign actually spends its time decides which of the accelerations
(cross-iteration memoization, the flat CSR kernel, worker pools) is worth
reaching for.  This tool runs one campaign on the same multi-component
planted-core composite the engine benchmark uses and prints the top-N
functions by cumulative time, so a regression or a new hot spot is one
command away::

    PYTHONPATH=src python tools/profile_campaign.py
    PYTHONPATH=src python tools/profile_campaign.py --no-memoize --parts 10
    PYTHONPATH=src python tools/profile_campaign.py --method filver+ --top 30
    PYTHONPATH=src python tools/profile_campaign.py --shards 30 --peak-rss

``--shards`` routes the campaign through the component-sharded engine and
prints a per-shard wall-clock breakdown (ranking vs apply) next to the
profile, so an unbalanced shard plan shows up as one long row.
``--peak-rss`` appends the process peak resident set size — the number to
watch when comparing ``backend="memmap"`` against the in-RAM CSR.

Profiles are wall-clock-free diagnostics — nothing here gates CI; the
enforced numbers live in ``benchmarks/bench_engine.py`` and
``benchmarks/bench_sharded.py``.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
import time
from contextlib import contextmanager

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bigraph import disjoint_union  # noqa: E402
from repro.core import reinforce  # noqa: E402
from repro.generators.planted import planted_core_graph  # noqa: E402


@contextmanager
def shard_timers():
    """Instrument ``CampaignShard`` ranking/apply with per-shard timers.

    Timing is collected in the tool, not the engine: the substrate stays
    measurement-free, and the accounting cost is only paid when profiling.
    Yields a dict ``{shard_index: {"ranked": s, "apply": s, "calls": n}}``.
    """
    from repro.core.sharded import CampaignShard

    totals: dict = {}
    original_ranked = CampaignShard.ranked
    original_apply = CampaignShard.apply

    def record(shard, stage, seconds):
        row = totals.setdefault(shard.index,
                                {"ranked": 0.0, "apply": 0.0, "calls": 0})
        row[stage] += seconds
        row["calls"] += 1

    def timed_ranked(self, *args, **kwargs):
        start = time.perf_counter()
        try:
            return original_ranked(self, *args, **kwargs)
        finally:
            record(self, "ranked", time.perf_counter() - start)

    def timed_apply(self, *args, **kwargs):
        start = time.perf_counter()
        try:
            return original_apply(self, *args, **kwargs)
        finally:
            record(self, "apply", time.perf_counter() - start)

    CampaignShard.ranked = timed_ranked
    CampaignShard.apply = timed_apply
    try:
        yield totals
    finally:
        CampaignShard.ranked = original_ranked
        CampaignShard.apply = original_apply


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def build_graph(parts: int, chains: int, chain_length: int):
    components = [
        planted_core_graph(alpha=4, beta=4, core_upper=16, core_lower=16,
                           n_chains=chains, max_chain_length=chain_length,
                           seed=1000 + i)
        for i in range(parts)
    ]
    return disjoint_union(components).to_csr()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one FILVER campaign, print hot functions")
    parser.add_argument("--method", default="filver++",
                        choices=["filver", "filver+", "filver++"])
    parser.add_argument("--parts", type=int, default=30,
                        help="planted components in the composite (30)")
    parser.add_argument("--chains", type=int, default=40)
    parser.add_argument("--chain-length", type=int, default=50)
    parser.add_argument("--budget", type=int, default=24,
                        help="per-layer anchor budget b1 = b2 (24)")
    parser.add_argument("--t", type=int, default=2,
                        help="anchors per iteration, filver++ only (2)")
    parser.add_argument("--top", type=int, default=20,
                        help="how many functions to print (20)")
    parser.add_argument("--no-memoize", action="store_true",
                        help="profile with the verification cache off")
    parser.add_argument("--no-kernel", action="store_true",
                        help="profile with the flat CSR kernel off")
    parser.add_argument("--shards", type=int, default=None,
                        help="run component-sharded and print per-shard "
                             "ranking/apply timings")
    parser.add_argument("--peak-rss", action="store_true",
                        help="print the process peak RSS after the run")
    args = parser.parse_args(argv)

    graph = build_graph(args.parts, args.chains, args.chain_length)
    print("graph: %d vertices, %d components (method=%s, memoize=%s, "
          "flat_kernel=%s, shards=%s)"
          % (graph.n_upper + graph.n_lower, args.parts, args.method,
             not args.no_memoize, not args.no_kernel, args.shards))

    profiler = cProfile.Profile()
    with shard_timers() as shard_totals:
        start = time.perf_counter()
        profiler.enable()
        result = reinforce(graph, 4, 4, args.budget, args.budget,
                           method=args.method, t=args.t,
                           memoize=not args.no_memoize,
                           flat_kernel=False if args.no_kernel else None,
                           shards=args.shards)
        profiler.disable()
        elapsed = time.perf_counter() - start

    print("campaign: %d iterations, %d followers, %.2fs (instrumented)"
          % (len(result.iterations), result.n_followers, elapsed))
    if shard_totals:
        print()
        print("per-shard wall clock (instrumented):")
        print("  %-6s %10s %10s %8s" % ("shard", "ranked", "apply", "calls"))
        for index in sorted(shard_totals):
            row = shard_totals[index]
            print("  %-6d %9.3fs %9.3fs %8d"
                  % (index, row["ranked"], row["apply"], row["calls"]))
    print()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    if args.peak_rss:
        print("peak RSS: %.1f MB" % (peak_rss_kb() / 1024.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
