"""Soak test for the campaign service: drain-kill/restart cycles under load.

Runs repeated cycles of (start service on a persistent state directory,
submit a batch of jobs, drain mid-flight, shut down) — the lifecycle of a
service that keeps getting SIGTERMed — then a final cycle that runs the
accumulated backlog to completion.  Asserts the two soak invariants:

* **zero lost jobs** — every job ever submitted is accounted for across
  every restart (restored backlog == the driver's outstanding set), and
  every completion is byte-identical to a one-shot ``reinforce`` run;
* **stable RSS** — resident memory after the last cycle stays within 2x
  of the post-first-cycle baseline (no per-cycle leak).

Usage::

    PYTHONPATH=src python tools/soak_service.py --duration 30
"""

import argparse
import json
import shutil
import sys
import tempfile
import time

from repro.bigraph import from_edge_list
from repro.core.api import reinforce
from repro.experiments.export import canonical_result_dict
from repro.service import CampaignService, JobSpec, JobState
from repro.utils.rng import make_rng

PROBLEMS = [(3, 3, 3, 3), (3, 3, 2, 2), (2, 2, 2, 2), (3, 2, 3, 2)]


def soak_graph(seed):
    rng = make_rng(seed)
    n1 = n2 = 120
    edges = set()
    while len(edges) < int(n1 * n2 * 0.08):
        edges.add((rng.randint(0, n1 - 1), rng.randint(0, n2 - 1)))
    return from_edge_list(sorted(edges), n_upper=n1, n_lower=n2,
                          backend="csr")


def canonical(result):
    return json.dumps(canonical_result_dict(result), sort_keys=True)


def rss_kb():
    """Resident set size in kB from /proc, or None off Linux."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def fail(message):
    print("SOAK FAILURE:", message, file=sys.stderr)
    sys.exit(1)


def harvest(handles, outstanding, references):
    """Settle finished handles; returns how many completed cleanly."""
    completed = 0
    for job_id, handle in handles.items():
        if handle.state == JobState.QUARANTINED:
            fail("job %d quarantined in a fault-free soak: %s"
                 % (job_id, [f.error for f in handle.failures]))
        if handle.state != JobState.COMPLETED:
            continue  # still pending; persisted for the next cycle
        result = handle.result(0)
        if result.interrupted:
            continue  # drain-interrupted; resumes next cycle
        problem = outstanding.get(job_id)
        if problem is None:
            continue  # already harvested in an earlier sweep
        if canonical(result) != references[problem]:
            fail("job %d diverged from the one-shot reference for %s"
                 % (job_id, problem))
        del outstanding[job_id]
        completed += 1
    return completed


def run_soak(duration, seed, workers):
    graph = soak_graph(seed)
    references = {problem: canonical(reinforce(graph, *problem, t=2))
                  for problem in PROBLEMS}
    state = tempfile.mkdtemp(prefix="repro-soak-")
    outstanding = {}  # job_id -> problem tuple
    submitted = completed = cycles = 0
    baseline = None
    spec_index = 0
    deadline = time.monotonic() + duration
    try:
        while time.monotonic() < deadline:
            cycles += 1
            service = CampaignService(graph, workers=workers,
                                      state_dir=state)
            restored = set(service.job_ids())
            if restored != set(outstanding):
                fail("cycle %d lost jobs across restart: restored %s, "
                     "expected %s" % (cycles, sorted(restored),
                                      sorted(outstanding)))
            handles = {job_id: service.handle(job_id)
                       for job_id in restored}
            for _ in range(len(PROBLEMS)):
                problem = PROBLEMS[spec_index % len(PROBLEMS)]
                spec_index += 1
                a, b, b1, b2 = problem
                handle = service.submit(
                    JobSpec(alpha=a, beta=b, b1=b1, b2=b2, t=2))
                handles[handle.job_id] = handle
                outstanding.setdefault(handle.job_id, problem)
                submitted += 1
            time.sleep(0.05)  # let the workers get mid-campaign
            service.shutdown()  # graceful drain + backlog persistence
            completed += harvest(handles, outstanding, references)
            sample = rss_kb()
            if baseline is None:
                baseline = sample

        # Final cycle: no kill — everything left must run to completion.
        service = CampaignService(graph, workers=workers, state_dir=state)
        if set(service.job_ids()) != set(outstanding):
            fail("final restart lost jobs: restored %s, expected %s"
                 % (sorted(service.job_ids()), sorted(outstanding)))
        handles = {job_id: service.handle(job_id)
                   for job_id in service.job_ids()}
        for job_id, handle in handles.items():
            if not handle.wait(120):
                fail("job %d never finished in the final cycle" % job_id)
        service.shutdown()
        completed += harvest(handles, outstanding, references)
        if outstanding:
            fail("jobs left unaccounted after the final cycle: %s"
                 % sorted(outstanding))

        final = rss_kb()
        if baseline is not None and final is not None \
                and final > 2 * baseline:
            fail("RSS grew from %d kB to %d kB across %d cycles"
                 % (baseline, final, cycles))
        print("soak OK: %d cycles, %d submissions, %d distinct jobs "
              "completed, RSS %s -> %s kB"
              % (cycles, submitted, completed, baseline, final))
        return 0
    finally:
        shutil.rmtree(state, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Drain-kill/restart soak of the campaign service")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="seconds of kill/restart cycling "
                             "(default: 30)")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    return run_soak(args.duration, args.seed, args.workers)


if __name__ == "__main__":
    sys.exit(main())
