# Convenience targets for the anchored (α,β)-core reproduction.

PYTHON ?= python

.PHONY: install test test-faults lint typecheck bench bench-smoke report \
	examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Deterministic resilience gate: fault injection, checkpoint/resume
# replay-equivalence, crash isolation.  No sleeps, no randomness.
test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_faults.py \
		tests/test_resilience.py -q

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/

typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy src/repro \
		|| echo "mypy not installed (pip install -e '.[dev]'); skipping"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick CI gate: scaling shape + CSR-vs-list backend comparison only.
# Timings land in bench_scalability.json ($$REPRO_BENCH_JSON to override).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_scalability.py --benchmark-only -q

report:
	$(PYTHON) -m repro.experiments report --scale 0.25 --out report.md

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
