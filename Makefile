# Convenience targets for the anchored (α,β)-core reproduction.

PYTHON ?= python

.PHONY: install test bench report examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.experiments report --scale 0.25 --out report.md

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
