# Convenience targets for the anchored (α,β)-core reproduction.

PYTHON ?= python

.PHONY: install test test-faults test-service-faults soak-service coverage \
	lint sanitize typecheck bench bench-smoke bench-parallel-smoke \
	bench-engine-smoke bench-sharded-smoke bench-batch-smoke report \
	examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Deterministic resilience gate: fault injection, checkpoint/resume
# replay-equivalence, crash isolation.  No sleeps, no randomness.
test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_faults.py \
		tests/test_resilience.py -q

# Campaign-service gate: functional + deterministic chaos + differential
# byte-identity tests for repro.service (docs/SERVICE.md).
test-service-faults:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_service.py \
		tests/test_service_faults.py tests/test_service_differential.py -q

# ~30s soak of the campaign service: repeated submit / drain-kill /
# restart-resume cycles, asserting zero lost jobs and a stable RSS.
soak-service:
	PYTHONPATH=src $(PYTHON) tools/soak_service.py --duration 30

# Coverage gate: total line coverage of src/repro must stay above the
# floor recorded in .coverage-baseline (measured baseline minus one point).
# Prefers pytest-cov (the CI path); falls back to the dependency-free
# stdlib tracer in tools/measure_coverage.py, which is a few times slower.
coverage:
	@GATE=$$(cat .coverage-baseline); \
	if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=src $(PYTHON) -m pytest -q -x --cov=repro \
			--cov-fail-under=$$GATE; \
	else \
		echo "pytest-cov not installed; using tools/measure_coverage.py"; \
		PYTHONPATH=src $(PYTHON) tools/measure_coverage.py \
			--fail-under $$GATE -q -x; \
	fi

# Static analysis gate: all ten rules (module + whole-program flow), with
# stale suppression pragmas treated as violations.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis --strict-pragmas src/

# Runtime sanitizer gate: tier-1 under randomized PYTHONHASHSEED with
# warnings-as-errors and SharedMemory/fd leak tracking (docs/ANALYSIS.md).
sanitize:
	PYTHONPATH=src $(PYTHON) -m repro.analysis.sanitize

typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy src/repro \
		|| echo "mypy not installed (pip install -e '.[dev]'); skipping"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick CI gate: scaling shape + CSR-vs-list backend comparison only.
# Timings land in bench_scalability.json ($$REPRO_BENCH_JSON to override).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_scalability.py --benchmark-only -q

# Parallel determinism gate: serial vs workers=2,4 FILVER++ must export
# byte-identical canonical JSON on every host; the 2x workers=4 speedup is
# asserted only on hosts with >= 4 cores.  Timings land in
# bench_parallel.json ($$REPRO_BENCH_PARALLEL_JSON to override).
bench-parallel-smoke:
	$(PYTHON) -m pytest benchmarks/bench_parallel.py --benchmark-only -q

# Memoization + flat-kernel gate: all four engine configurations must
# export byte-identical canonical JSON, and memo+kernel must run the
# FILVER++ campaign >= 2x faster than the memo-off engine.  Timings land
# in BENCH_engine.json ($$REPRO_BENCH_ENGINE_JSON to override).
bench-engine-smoke:
	$(PYTHON) -m pytest benchmarks/bench_engine.py --benchmark-only -q

# Component-sharding gate: sharded and memmap-backed campaigns must export
# byte-identical canonical JSON, the sharded run must beat serial >= 1.5x,
# and loading the graph under backend=memmap must peak below in-RAM CSR.
# Numbers land in bench_sharded.json ($$REPRO_BENCH_SHARDED_JSON to
# override).
bench-sharded-smoke:
	$(PYTHON) -m pytest benchmarks/bench_sharded.py --benchmark-only -q

# Batched-execution gate: an 8-job same-(α,β) batch over one shared
# context must export byte-identical canonical JSON per job vs running
# each alone, beat the eight cold starts >= 2x, and a service restart
# must serve finished jobs from the persisted on-disk cache.  Numbers
# land in bench_batch.json ($$REPRO_BENCH_BATCH_JSON to override).
bench-batch-smoke:
	$(PYTHON) -m pytest benchmarks/bench_batch.py --benchmark-only -q

report:
	$(PYTHON) -m repro.experiments report --scale 0.25 --out report.md

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
