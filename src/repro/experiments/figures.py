"""Drivers that regenerate each *figure* of the paper's evaluation (§VI).

Each ``figN_*`` function returns plain data (series/rows) and has a
``render_*`` companion that prints the same rows/series the paper plots.
Benchmarks under ``benchmarks/`` wrap these with pytest-benchmark; the CLI
(``python -m repro.experiments``) exposes them directly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.abcore.decomposition import abcore, anchored_abcore, delta
from repro.bigraph.graph import BipartiteGraph
from repro.core.api import reinforce
from repro.experiments.runner import (
    DEFAULTS,
    ExperimentDefaults,
    MethodRun,
    default_constraints,
    run_method,
)
from repro.generators.datasets import dataset_codes, load_dataset
from repro.utils.tables import render_series, render_table

__all__ = [
    "InShellSample",
    "fig4_inshell_ratio",
    "fig7a_effectiveness",
    "fig7b_exact_comparison",
    "fig8_runtime",
    "fig9_degree_constraints",
    "fig9_budgets",
    "fig10_t_followers",
    "render_fig4",
    "render_fig7a",
    "render_fig7b",
    "render_fig8",
    "render_fig9",
    "render_fig10",
]


# ----------------------------------------------------------------------
# Fig. 4 — |F_sh(T)| versus |F(T)| on random anchor sets
# ----------------------------------------------------------------------

@dataclass
class InShellSample:
    """One random anchor set's collective vs in-shell follower counts."""

    anchors: Tuple[int, ...]
    f_collective: int
    f_in_shell: int

    @property
    def ratio(self) -> float:
        """``|F_sh(T)| / |F(T)|`` (1.0 when both are empty)."""
        if self.f_collective == 0:
            return 1.0
        return self.f_in_shell / self.f_collective


def fig4_inshell_ratio(
    dataset: str = "WC",
    n_sets: int = 100,
    set_size: int = 5,
    alpha: Optional[int] = None,
    beta: Optional[int] = None,
    scale: float = DEFAULTS.scale,
    seed: int = DEFAULTS.seed,
) -> List[InShellSample]:
    """Sample random anchor sets ``T`` and compare ``|F_sh(T)|`` with ``|F(T)|``.

    Reproduces Fig. 4: ``F_sh(T) = ∪_{x∈T} F(x)`` is a tight lower bound of
    the collective follower set ``F(T)`` and highly correlated with it.
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    if alpha is None or beta is None:
        alpha, beta = default_constraints(graph)
    rng = random.Random(seed)
    base = abcore(graph, alpha, beta)
    # Sample anchor sets among *promising* anchors — arbitrary vertices have
    # empty follower sets with overwhelming probability, which would make
    # both |F_sh(T)| and |F(T)| zero and the figure vacuous.  The paper's
    # random sets are drawn in the same regime (its anchors produce dozens
    # of followers).
    from repro.core.deletion_order import compute_orders

    upper_order, lower_order = compute_orders(graph, alpha, beta)
    pool = sorted(set(upper_order.candidates(graph))
                  | set(lower_order.candidates(graph)))
    samples: List[InShellSample] = []
    if len(pool) < set_size:
        return samples
    for _ in range(n_sets):
        team = tuple(sorted(rng.sample(pool, set_size)))
        collective = anchored_abcore(graph, alpha, beta, team) - base - set(team)
        in_shell: Set[int] = set()
        for x in team:
            in_shell |= anchored_abcore(graph, alpha, beta, [x]) - base - {x}
        # F(T) excludes every anchor of T (Definition 3); a single anchor's
        # follower set may contain *another* anchor of T, so the union must
        # be trimmed the same way or it would not be a lower bound.
        in_shell -= set(team)
        samples.append(InShellSample(team, len(collective), len(in_shell)))
    return samples


def render_fig4(samples: Sequence[InShellSample]) -> str:
    """Summary table for Fig. 4 (mean/min ratio and correlation)."""
    if not samples:
        return "fig4: no anchor-set samples (core covers the graph?)"
    ratios = [s.ratio for s in samples]
    mean_ratio = sum(ratios) / len(ratios)
    rows = [["samples", len(samples)],
            ["mean |F_sh|/|F|", "%.3f" % mean_ratio],
            ["min  |F_sh|/|F|", "%.3f" % min(ratios)],
            ["max  |F|", max(s.f_collective for s in samples)]]
    return render_table(["metric", "value"], rows,
                        title="Fig. 4 — in-shell follower ratio")


# ----------------------------------------------------------------------
# Fig. 7(a) — effectiveness against the baselines
# ----------------------------------------------------------------------

def fig7a_effectiveness(
    dataset: str = "WC",
    budgets: Sequence[int] = (5, 10, 15, 20, 25),
    alpha: Optional[int] = None,
    beta: Optional[int] = None,
    methods: Sequence[str] = ("random", "top-degree", "degree-greedy", "filver"),
    scale: float = DEFAULTS.scale,
    seed: int = DEFAULTS.seed,
    time_limit: Optional[float] = DEFAULTS.time_limit,
    on_error: str = "raise",
) -> Dict[str, List[int]]:
    """Follower counts of each method as ``b1 = b2`` sweeps (Fig. 7(a)).

    The paper fixes (α, β) = (10, 7) on the full 3.8M-edge WC; surrogates
    carry their own δ, so constraints default to the same relative position
    (0.6δ, 0.4δ) unless given explicitly.
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    if delta(graph) < 2:
        raise ValueError("dataset %s surrogate too sparse for fig7a" % dataset)
    if alpha is None or beta is None:
        alpha, beta = default_constraints(graph)
    series: Dict[str, List[int]] = {m: [] for m in methods}
    for b in budgets:
        b1 = min(b, graph.n_upper)
        b2 = min(b, graph.n_lower)
        for m in methods:
            run = run_method(graph, dataset, m, alpha, beta, b1, b2,
                             time_limit=time_limit, seed=seed,
                             on_error=on_error)
            series[m].append(run.n_followers)
    return series


def render_fig7a(series: Dict[str, List[int]],
                 budgets: Sequence[int] = (5, 10, 15, 20, 25)) -> str:
    """Render the Fig. 7(a) followers-vs-budget series as a text table."""
    return render_series(series, "b1=b2", list(budgets),
                         title="Fig. 7(a) — followers vs budgets")


# ----------------------------------------------------------------------
# Fig. 7(b) — FILVER versus the exact algorithm
# ----------------------------------------------------------------------

def fig7b_exact_comparison(
    alpha: int = 4,
    beta: int = 3,
    budget_grid: Sequence[Tuple[int, int]] = ((1, 1), (1, 2), (2, 1), (2, 2)),
    n_chains: int = 8,
    max_chain_length: int = 6,
    seed: int = DEFAULTS.seed,
) -> List[Dict[str, object]]:
    """FILVER vs Exact follower counts on a small instance (Fig. 7(b)).

    The paper evaluates Exact on the 1.26K-edge Unicode dataset with small
    budgets; exhaustive search in pure Python needs a smaller instance, so
    this driver uses a UL-sized planted-core graph (a guaranteed (4,3)-core
    plus collapsing support chains — see
    :func:`repro.generators.planted.planted_core_graph`), which exercises the
    same comparison in the same regime.
    """
    from repro.generators.planted import planted_core_graph

    graph = planted_core_graph(alpha, beta, n_chains=n_chains,
                               max_chain_length=max_chain_length, seed=seed)
    dataset = "planted(UL-like)"
    rows: List[Dict[str, object]] = []
    for b1, b2 in budget_grid:
        filver = run_method(graph, dataset, "filver", alpha, beta, b1, b2)
        exact = run_method(graph, dataset, "exact", alpha, beta, b1, b2)
        rows.append({
            "b1": b1, "b2": b2,
            "filver": filver.n_followers,
            "exact": exact.n_followers,
            "optimal": filver.n_followers == exact.n_followers,
        })
    return rows


def render_fig7b(rows: List[Dict[str, object]]) -> str:
    """Render the Fig. 7(b) FILVER-vs-Exact comparison rows."""
    return render_table(
        ["b1", "b2", "FILVER", "Exact", "optimal?"],
        [[r["b1"], r["b2"], r["filver"], r["exact"], r["optimal"]]
         for r in rows],
        title="Fig. 7(b) — FILVER vs Exact")


# ----------------------------------------------------------------------
# Fig. 8 — runtime across all datasets
# ----------------------------------------------------------------------

def fig8_runtime(
    datasets: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ("naive", "filver", "filver+", "filver++"),
    defaults: ExperimentDefaults = DEFAULTS,
    naive_edge_limit: int = 5000,
    on_error: str = "raise",
) -> List[MethodRun]:
    """Runtime of every algorithm on every dataset surrogate (Fig. 8).

    ``naive`` is only run on surrogates up to ``naive_edge_limit`` edges and
    reported ``TIMEOUT`` beyond that, mirroring the paper's finding that it
    cannot finish on datasets larger than SO.
    """
    if datasets is None:
        datasets = [c for c in dataset_codes() if c != "UL"]
    rows: List[MethodRun] = []
    for code in datasets:
        graph = load_dataset(code, scale=defaults.scale, seed=defaults.seed)
        alpha, beta = default_constraints(graph, defaults)
        b1 = min(defaults.b1, graph.n_upper)
        b2 = min(defaults.b2, graph.n_lower)
        for method in methods:
            if method == "naive" and graph.n_edges > naive_edge_limit:
                rows.append(MethodRun(
                    dataset=code, method=method, alpha=alpha, beta=beta,
                    b1=b1, b2=b2, n_followers=-1,
                    elapsed=float("inf"), timed_out=True, result=None))
                continue
            rows.append(run_method(
                graph, code, method, alpha, beta, b1, b2,
                t=defaults.t, time_limit=defaults.time_limit,
                on_error=on_error, workers=defaults.workers,
                shards=defaults.shards))
    return rows


def render_fig8(rows: Sequence[MethodRun]) -> str:
    """Render the Fig. 8 per-dataset runtime bars (ASCII)."""
    from repro.utils.ascii_chart import bar_chart

    datasets: List[str] = []
    for r in rows:
        if r.dataset not in datasets:
            datasets.append(r.dataset)
    methods: List[str] = []
    for r in rows:
        if r.method not in methods:
            methods.append(r.method)
    table = []
    index = {(r.dataset, r.method): r for r in rows}
    for code in datasets:
        row: List[object] = [code]
        for m in methods:
            r = index.get((code, m))
            row.append(r.display_time if r else "-")
        table.append(row)
    text = render_table(["dataset"] + methods, table,
                        title="Fig. 8 — running time (s) on all datasets")
    # Shape at a glance: total runtime per method, log-scaled bars.
    totals: Dict[str, float] = {}
    for m in methods:
        per = [index[(c, m)].elapsed for c in datasets if (c, m) in index]
        totals[m] = float("inf") if any(t == float("inf") for t in per) \
            else sum(per)
    chart = bar_chart(totals, title="total runtime by method (log bars)",
                      log=True)
    return text + "\n\n" + chart


# ----------------------------------------------------------------------
# Fig. 9 — effect of degree constraints and budgets
# ----------------------------------------------------------------------

def fig9_degree_constraints(
    datasets: Sequence[str] = ("SO", "AZ", "WC"),
    fractions: Sequence[Tuple[float, float]] = (
        (0.4, 0.4), (0.5, 0.4), (0.6, 0.4), (0.6, 0.3), (0.6, 0.5)),
    methods: Sequence[str] = ("filver", "filver+", "filver++"),
    defaults: ExperimentDefaults = DEFAULTS,
    on_error: str = "raise",
) -> List[MethodRun]:
    """Runtime as α and β vary around the defaults (Fig. 9 row 1)."""
    rows: List[MethodRun] = []
    for code in datasets:
        graph = load_dataset(code, scale=defaults.scale, seed=defaults.seed)
        d = delta(graph)
        b1 = min(defaults.b1, graph.n_upper)
        b2 = min(defaults.b2, graph.n_lower)
        for fa, fb in fractions:
            alpha = max(2, int(fa * d))
            beta = max(2, int(fb * d))
            for method in methods:
                rows.append(run_method(
                    graph, code, method, alpha, beta,
                    b1, b2, t=defaults.t,
                    time_limit=defaults.time_limit, on_error=on_error,
                    workers=defaults.workers,
                    shards=defaults.shards))
    return rows


def fig9_budgets(
    datasets: Sequence[str] = ("SO", "AZ", "WC"),
    budgets: Sequence[int] = (5, 10, 15, 20, 25),
    methods: Sequence[str] = ("filver", "filver+", "filver++"),
    defaults: ExperimentDefaults = DEFAULTS,
    on_error: str = "raise",
) -> List[MethodRun]:
    """Runtime as ``b1 = b2`` sweeps (Fig. 9 row 2)."""
    rows: List[MethodRun] = []
    for code in datasets:
        graph = load_dataset(code, scale=defaults.scale, seed=defaults.seed)
        alpha, beta = default_constraints(graph, defaults)
        for b in budgets:
            # tiny surrogates can have layers smaller than the swept budget
            b1 = min(b, graph.n_upper)
            b2 = min(b, graph.n_lower)
            for method in methods:
                rows.append(run_method(
                    graph, code, method, alpha, beta, b1, b2, t=defaults.t,
                    time_limit=defaults.time_limit, on_error=on_error,
                    workers=defaults.workers,
                    shards=defaults.shards))
    return rows


def render_fig9(rows: Sequence[MethodRun], varying: str) -> str:
    """Render Fig. 9: followers while varying constraints or budgets."""
    table = []
    for r in rows:
        label = ("a=%d,b=%d" % (r.alpha, r.beta)) if varying == "constraints" \
            else ("b1=b2=%d" % r.b1)
        table.append([r.dataset, label, r.method, r.display_time,
                      r.n_followers])
    return render_table(
        ["dataset", varying, "method", "time (s)", "followers"], table,
        title="Fig. 9 — effect of %s" % varying)


# ----------------------------------------------------------------------
# Fig. 10 — effect of t on follower quality
# ----------------------------------------------------------------------

def fig10_t_followers(
    datasets: Sequence[str] = ("WC", "DB"),
    t_values: Sequence[int] = (1, 2, 4, 8, 16),
    budget: int = 8,
    defaults: ExperimentDefaults = DEFAULTS,
) -> Dict[str, Dict[int, List[int]]]:
    """Cumulative follower counts as anchors accumulate, per ``t`` (Fig. 10).

    Returns ``{dataset: {t: cumulative_followers_after_each_iteration}}``;
    ``b1 = b2 = 8`` as in the paper's sweep.
    """
    curves: Dict[str, Dict[int, List[int]]] = {}
    for code in datasets:
        graph = load_dataset(code, scale=defaults.scale, seed=defaults.seed)
        alpha, beta = default_constraints(graph, defaults)
        curves[code] = {}
        for t in t_values:
            result = reinforce(graph, alpha, beta, budget, budget,
                               method="filver++", t=t,
                               time_limit=defaults.time_limit)
            curves[code][t] = result.cumulative_follower_counts()
    return curves


def render_fig10(curves: Dict[str, Dict[int, List[int]]]) -> str:
    """Render the Fig. 10 follower-growth sparklines per dataset."""
    from repro.utils.ascii_chart import sparkline

    blocks = []
    for code, per_t in curves.items():
        rows = [["t=%d" % t, sparkline(series) or "-",
                 " -> ".join(map(str, series)) or "(none)",
                 series[-1] if series else 0]
                for t, series in sorted(per_t.items())]
        blocks.append(render_table(
            ["setting", "trend", "cumulative followers per iteration",
             "final"],
            rows, title="Fig. 10 — %s" % code))
    return "\n\n".join(blocks)
