"""Experiment harness: one driver per table/figure of the paper's §VI."""

from repro.experiments.case_study import CaseStudy, fig6_case_study, render_fig6
from repro.experiments.figures import (
    fig4_inshell_ratio,
    fig7a_effectiveness,
    fig7b_exact_comparison,
    fig8_runtime,
    fig9_budgets,
    fig9_degree_constraints,
    fig10_t_followers,
    render_fig4,
    render_fig7a,
    render_fig7b,
    render_fig8,
    render_fig9,
    render_fig10,
)
from repro.experiments.reporting import (
    bound_tightness_report,
    cumulative_effect_report,
    filter_power_report,
)
from repro.experiments.runner import (
    DEFAULTS,
    ExperimentDefaults,
    MethodRun,
    default_constraints,
    run_method,
)
from repro.experiments.tables import (
    render_table2,
    render_table3,
    table2_datasets,
    table3_t_runtime,
)

__all__ = [
    "DEFAULTS",
    "CaseStudy",
    "ExperimentDefaults",
    "MethodRun",
    "bound_tightness_report",
    "cumulative_effect_report",
    "default_constraints",
    "fig10_t_followers",
    "fig4_inshell_ratio",
    "fig6_case_study",
    "fig7a_effectiveness",
    "fig7b_exact_comparison",
    "fig8_runtime",
    "fig9_budgets",
    "fig9_degree_constraints",
    "filter_power_report",
    "render_fig10",
    "render_fig4",
    "render_fig6",
    "render_fig7a",
    "render_fig7b",
    "render_fig8",
    "render_fig9",
    "render_table2",
    "render_table3",
    "run_method",
    "table2_datasets",
    "table3_t_runtime",
]
