"""Shared plumbing for the per-figure/table experiment drivers.

Centralizes the conventions from Section VI-A of the paper:

* default degree constraints ``α = 0.6δ`` and ``β = 0.4δ`` (computed on the
  actual input graph, so surrogates use their own δ);
* default budgets ``b1 = b2 = 10`` and ``t = 5``;
* a per-run time limit standing in for the paper's 10⁵-second cutoff —
  algorithms that exceed it are reported as ``TIMEOUT`` rather than hanging
  the harness.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.abcore.decomposition import delta
from repro.bigraph.graph import BipartiteGraph
from repro.core.api import reinforce
from repro.core.result import AnchoredCoreResult
from repro.exceptions import InvalidParameterError
from repro.generators.datasets import load_dataset
from repro.resilience.faults import fault_site

__all__ = ["ExperimentDefaults", "default_constraints", "run_method",
           "MethodRun"]


@dataclass(frozen=True)
class ExperimentDefaults:
    """Section VI-A defaults, overridable per experiment."""

    b1: int = 10
    b2: int = 10
    t: int = 5
    alpha_fraction: float = 0.6
    beta_fraction: float = 0.4
    time_limit: float = 60.0
    scale: float = 1.0
    seed: int = 2022
    #: Worker processes for engine-method candidate verification, and
    #: section-level threads for the full suite; 1 = fully serial.
    workers: int = 1
    #: Component shards for engine-method campaigns (``None`` = unsharded);
    #: byte-identity-preserving, like ``workers``.
    shards: Optional[int] = None


DEFAULTS = ExperimentDefaults()


def default_constraints(graph: BipartiteGraph,
                        defaults: ExperimentDefaults = DEFAULTS) -> Tuple[int, int]:
    """``(α, β) = (0.6 δ, 0.4 δ)`` with a floor of 2, as in the paper."""
    d = delta(graph)
    alpha = max(2, int(defaults.alpha_fraction * d))
    beta = max(2, int(defaults.beta_fraction * d))
    return alpha, beta


@dataclass
class MethodRun:
    """One (dataset, method) measurement row."""

    dataset: str
    method: str
    alpha: int
    beta: int
    b1: int
    b2: int
    n_followers: int
    elapsed: float
    timed_out: bool
    result: Optional[AnchoredCoreResult]
    #: The run stopped early but gracefully (Ctrl-C / OOM at an iteration
    #: boundary); ``n_followers`` is the verified best-so-far.
    interrupted: bool = False
    #: Full traceback when the method crashed under ``on_error="record"``.
    error: Optional[str] = None

    @property
    def display_time(self) -> str:
        """Runtime cell: seconds, ``TIMEOUT`` past the limit, or ``CRASH``."""
        if self.error is not None:
            return "CRASH"
        if self.timed_out:
            return "TIMEOUT"
        return "%.3f" % self.elapsed


def run_method(
    graph: BipartiteGraph,
    dataset: str,
    method: str,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    t: int = 5,
    time_limit: Optional[float] = None,
    seed: Optional[int] = None,
    on_error: str = "raise",
    workers: int = 1,
    shards: Optional[int] = None,
) -> MethodRun:
    """Run one algorithm with timing and timeout accounting.

    ``on_error="record"`` isolates a crashing method: instead of taking the
    whole sweep down, the failure (including ``KeyboardInterrupt`` and
    ``MemoryError`` escaping a non-engine method) is captured as a
    ``CRASH`` row carrying the traceback, and the caller keeps measuring
    the remaining methods.  The default ``"raise"`` propagates as before.

    ``workers`` and ``shards`` are forwarded only to the engine methods
    (baselines have neither a parallel stage nor a sharded substrate);
    results are identical either way, so measurement rows stay comparable
    across worker and shard counts.
    """
    if on_error not in ("raise", "record"):
        raise InvalidParameterError(
            "on_error must be 'raise' or 'record', got %r" % (on_error,))
    from repro.core.api import CHECKPOINTABLE_METHODS, PARALLEL_METHODS

    method_workers = workers if method in PARALLEL_METHODS else 1
    method_shards = shards if method in CHECKPOINTABLE_METHODS else None
    started = time.perf_counter()
    try:
        fault_site("runner.run_method")
        result = reinforce(graph, alpha, beta, b1, b2, method=method, t=t,
                           seed=seed, time_limit=time_limit,
                           workers=method_workers, shards=method_shards)
    except (Exception, KeyboardInterrupt, MemoryError):  # repro: boundary
        if on_error == "raise":
            raise
        return MethodRun(
            dataset=dataset, method=method, alpha=alpha, beta=beta,
            b1=b1, b2=b2, n_followers=-1,
            elapsed=time.perf_counter() - started, timed_out=False,
            result=None, error=traceback.format_exc())
    return MethodRun(
        dataset=dataset, method=method, alpha=alpha, beta=beta,
        b1=b1, b2=b2, n_followers=result.n_followers,
        elapsed=result.elapsed, timed_out=result.timed_out, result=result,
        interrupted=result.interrupted)
