"""Shared plumbing for the per-figure/table experiment drivers.

Centralizes the conventions from Section VI-A of the paper:

* default degree constraints ``α = 0.6δ`` and ``β = 0.4δ`` (computed on the
  actual input graph, so surrogates use their own δ);
* default budgets ``b1 = b2 = 10`` and ``t = 5``;
* a per-run time limit standing in for the paper's 10⁵-second cutoff —
  algorithms that exceed it are reported as ``TIMEOUT`` rather than hanging
  the harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.abcore.decomposition import delta
from repro.bigraph.graph import BipartiteGraph
from repro.core.api import reinforce
from repro.core.result import AnchoredCoreResult
from repro.generators.datasets import load_dataset

__all__ = ["ExperimentDefaults", "default_constraints", "run_method",
           "MethodRun"]


@dataclass(frozen=True)
class ExperimentDefaults:
    """Section VI-A defaults, overridable per experiment."""

    b1: int = 10
    b2: int = 10
    t: int = 5
    alpha_fraction: float = 0.6
    beta_fraction: float = 0.4
    time_limit: float = 60.0
    scale: float = 1.0
    seed: int = 2022


DEFAULTS = ExperimentDefaults()


def default_constraints(graph: BipartiteGraph,
                        defaults: ExperimentDefaults = DEFAULTS) -> Tuple[int, int]:
    """``(α, β) = (0.6 δ, 0.4 δ)`` with a floor of 2, as in the paper."""
    d = delta(graph)
    alpha = max(2, int(defaults.alpha_fraction * d))
    beta = max(2, int(defaults.beta_fraction * d))
    return alpha, beta


@dataclass
class MethodRun:
    """One (dataset, method) measurement row."""

    dataset: str
    method: str
    alpha: int
    beta: int
    b1: int
    b2: int
    n_followers: int
    elapsed: float
    timed_out: bool
    result: Optional[AnchoredCoreResult]

    @property
    def display_time(self) -> str:
        """Runtime cell: seconds, or ``TIMEOUT`` past the limit."""
        if self.timed_out:
            return "TIMEOUT"
        return "%.3f" % self.elapsed


def run_method(
    graph: BipartiteGraph,
    dataset: str,
    method: str,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    t: int = 5,
    time_limit: Optional[float] = None,
    seed: Optional[int] = None,
) -> MethodRun:
    """Run one algorithm with timing and timeout accounting."""
    result = reinforce(graph, alpha, beta, b1, b2, method=method, t=t,
                       seed=seed, time_limit=time_limit)
    return MethodRun(
        dataset=dataset, method=method, alpha=alpha, beta=beta,
        b1=b1, b2=b2, n_followers=result.n_followers,
        elapsed=result.elapsed, timed_out=result.timed_out, result=result)
