"""Regression comparison between two exported measurement CSVs.

Long-running sweeps (Fig. 8/9) are worth tracking across commits: export
each run with ``python -m repro.experiments fig8 --csv runs.csv`` and diff
two exports here.  The comparison is keyed on
``(dataset, method, alpha, beta, b1, b2)`` and reports

* runtime ratios (new / old) with a configurable noise tolerance,
* follower-count changes (these should normally be *exactly* stable for the
  deterministic algorithms),
* rows present on only one side.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.utils.tables import render_table

__all__ = ["ComparisonReport", "load_rows", "compare_csv"]

Key = Tuple[str, str, str, str, str, str]


@dataclass
class ComparisonReport:
    """Structured outcome of one CSV-vs-CSV comparison."""

    regressions: List[Dict[str, object]] = field(default_factory=list)
    improvements: List[Dict[str, object]] = field(default_factory=list)
    follower_changes: List[Dict[str, object]] = field(default_factory=list)
    only_old: List[Key] = field(default_factory=list)
    only_new: List[Key] = field(default_factory=list)
    compared: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing regressed and follower counts are unchanged."""
        return not self.regressions and not self.follower_changes

    def render(self) -> str:
        blocks = ["compared %d measurement rows" % self.compared]
        if self.follower_changes:
            blocks.append(render_table(
                ["dataset", "method", "old F", "new F"],
                [[c["dataset"], c["method"], c["old"], c["new"]]
                 for c in self.follower_changes],
                title="FOLLOWER-COUNT CHANGES (should be empty)"))
        if self.regressions:
            blocks.append(render_table(
                ["dataset", "method", "old s", "new s", "ratio"],
                [[r["dataset"], r["method"], "%.3f" % r["old"],
                  "%.3f" % r["new"], "%.2fx" % r["ratio"]]
                 for r in self.regressions],
                title="RUNTIME REGRESSIONS"))
        if self.improvements:
            blocks.append(render_table(
                ["dataset", "method", "old s", "new s", "ratio"],
                [[r["dataset"], r["method"], "%.3f" % r["old"],
                  "%.3f" % r["new"], "%.2fx" % r["ratio"]]
                 for r in self.improvements],
                title="runtime improvements"))
        if self.only_old or self.only_new:
            blocks.append("rows only in old: %d, only in new: %d"
                          % (len(self.only_old), len(self.only_new)))
        if self.clean and not self.improvements:
            blocks.append("no changes beyond noise tolerance")
        return "\n\n".join(blocks)


def load_rows(path: Union[str, os.PathLike]) -> Dict[Key, Dict[str, str]]:
    """Index an exported CSV by its configuration key."""
    rows: Dict[Key, Dict[str, str]] = {}
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            key = (row["dataset"], row["method"], row["alpha"], row["beta"],
                   row["b1"], row["b2"])
            rows[key] = row
    return rows


def compare_csv(
    old_path: Union[str, os.PathLike],
    new_path: Union[str, os.PathLike],
    tolerance: float = 1.25,
) -> ComparisonReport:
    """Compare two exports; ratios beyond ``tolerance`` count as changes."""
    old_rows = load_rows(old_path)
    new_rows = load_rows(new_path)
    report = ComparisonReport()
    report.only_old = sorted(set(old_rows) - set(new_rows))
    report.only_new = sorted(set(new_rows) - set(old_rows))

    for key in sorted(set(old_rows) & set(new_rows)):
        old, new = old_rows[key], new_rows[key]
        report.compared += 1
        if old["n_followers"] != new["n_followers"]:
            report.follower_changes.append({
                "dataset": key[0], "method": key[1],
                "old": old["n_followers"], "new": new["n_followers"]})
        old_time = _parse_time(old)
        new_time = _parse_time(new)
        if old_time is None or new_time is None:
            continue
        if old_time <= 0:
            continue
        ratio = new_time / old_time
        entry = {"dataset": key[0], "method": key[1],
                 "old": old_time, "new": new_time, "ratio": ratio}
        if ratio > tolerance:
            report.regressions.append(entry)
        elif ratio < 1.0 / tolerance:
            report.improvements.append(entry)
    return report


def _parse_time(row: Dict[str, str]) -> Optional[float]:
    if row.get("timed_out") == "True" or not row.get("elapsed"):
        return None
    return float(row["elapsed"])
