"""Machine-readable export of experiment results (JSON / CSV).

The render helpers print the paper-style tables; this module persists the
underlying data so downstream analysis (plotting, regression tracking across
commits) does not have to re-run hours of sweeps.

* :func:`result_to_dict` / :func:`result_from_dict` — one
  :class:`AnchoredCoreResult` as plain data, and back;
* :func:`runs_to_rows` / :func:`write_csv` — flatten ``MethodRun`` lists
  into spreadsheet rows;
* :func:`write_json` — dump any exported structure with a stable layout.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Sequence, TextIO, Union

from repro.core.result import AnchoredCoreResult, IterationRecord
from repro.experiments.runner import MethodRun
from repro.resilience.atomic import atomic_writer
from repro.resilience.faults import fault_site

__all__ = ["result_to_dict", "result_from_dict", "canonical_result_dict",
           "runs_to_rows", "write_csv", "write_json"]

PathOrFile = Union[str, os.PathLike, TextIO]

CSV_COLUMNS = ("dataset", "method", "alpha", "beta", "b1", "b2",
               "n_followers", "elapsed", "timed_out", "interrupted", "error")


def result_to_dict(result: AnchoredCoreResult) -> Dict[str, object]:
    """Full, JSON-safe dump of one reinforcement run."""
    return {
        "algorithm": result.algorithm,
        "alpha": result.alpha,
        "beta": result.beta,
        "b1": result.b1,
        "b2": result.b2,
        "anchors": list(result.anchors),
        "followers": sorted(result.followers),
        "n_followers": result.n_followers,
        "base_core_size": result.base_core_size,
        "final_core_size": result.final_core_size,
        "elapsed": result.elapsed,
        "timed_out": result.timed_out,
        "interrupted": result.interrupted,
        "iterations": [record.to_dict() for record in result.iterations],
    }


def result_from_dict(data: Dict[str, object]) -> AnchoredCoreResult:
    """Inverse of :func:`result_to_dict` (used by the persistent service
    cache).  Raises ``KeyError`` / ``TypeError`` / ``ValueError`` on
    malformed input — callers treat any failure as a cache miss."""
    return AnchoredCoreResult(
        algorithm=str(data["algorithm"]),
        alpha=int(data["alpha"]),  # type: ignore[arg-type]
        beta=int(data["beta"]),  # type: ignore[arg-type]
        b1=int(data["b1"]),  # type: ignore[arg-type]
        b2=int(data["b2"]),  # type: ignore[arg-type]
        anchors=[int(a) for a in data["anchors"]],  # type: ignore[union-attr]
        followers={int(f) for f in data["followers"]},  # type: ignore[union-attr]
        base_core_size=int(data["base_core_size"]),  # type: ignore[arg-type]
        final_core_size=int(data["final_core_size"]),  # type: ignore[arg-type]
        elapsed=float(data["elapsed"]),  # type: ignore[arg-type]
        iterations=[IterationRecord.from_dict(record)
                    for record in data["iterations"]],  # type: ignore[union-attr]
        timed_out=bool(data["timed_out"]),
        interrupted=bool(data["interrupted"]),
    )


def canonical_result_dict(result: AnchoredCoreResult) -> Dict[str, object]:
    """:func:`result_to_dict` minus every wall-clock field.

    Two runs of the same campaign — serial vs. parallel, today vs. last
    commit — are *supposed* to produce byte-identical JSON under this view;
    only ``elapsed`` legitimately differs between them.  This is what the
    differential tests and the parallel bench compare.
    """
    data = result_to_dict(result)
    del data["elapsed"]
    data["iterations"] = [
        {key: value for key, value in record.items() if key != "elapsed"}
        for record in data["iterations"]]
    return data


def runs_to_rows(runs: Iterable[MethodRun]) -> List[Dict[str, object]]:
    """Flatten measurement rows (Fig. 8/9 style) for CSV export."""
    rows: List[Dict[str, object]] = []
    for run in runs:
        rows.append({
            "dataset": run.dataset,
            "method": run.method,
            "alpha": run.alpha,
            "beta": run.beta,
            "b1": run.b1,
            "b2": run.b2,
            "n_followers": run.n_followers,
            "elapsed": None if run.timed_out else round(run.elapsed, 6),
            "timed_out": run.timed_out,
            "interrupted": run.interrupted,
            # First line of the recorded traceback keeps the CSV greppable;
            # full tracebacks belong in the markdown report.
            "error": (run.error or "").strip().splitlines()[-1]
            if run.error else "",
        })
    return rows


def write_csv(runs: Iterable[MethodRun], target: PathOrFile) -> None:
    """Write measurement rows as CSV with a fixed, documented column set.

    Path targets are written crash-safely (temp file + fsync + rename): a
    killed sweep never leaves a truncated CSV behind.
    """
    fault_site("export.write")
    rows = runs_to_rows(runs)

    def _emit(handle: TextIO) -> None:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        writer.writerows(rows)

    if isinstance(target, (str, os.PathLike)):
        with atomic_writer(target) as handle:
            _emit(handle)
    else:
        _emit(target)


def write_json(data: object, target: PathOrFile) -> None:
    """Dump exported data as stable, human-diffable JSON.

    Path targets are written crash-safely, like :func:`write_csv`.
    """
    fault_site("export.write")
    if isinstance(target, (str, os.PathLike)):
        with atomic_writer(target) as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        json.dump(data, target, indent=2, sort_keys=True)
        target.write("\n")
