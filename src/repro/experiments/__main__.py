"""CLI for the experiment harness: ``python -m repro.experiments <target>``.

Targets mirror DESIGN.md's experiment index::

    table2  fig4  fig6  fig7a  fig7b  fig8  fig9a  fig9b  fig10  table3
    bounds  filter-power  cumulative  all
    report                  # run everything + automated shape checks
    compare OLD.csv NEW.csv # regression diff of two exports

Common flags: ``--scale`` (surrogate size multiplier), ``--seed``,
``--time-limit`` (per-run seconds), ``--csv`` (export measurement rows).
Example::

    python -m repro.experiments fig8 --scale 0.3 --csv fig8.csv
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List

from repro.experiments import case_study, figures, reporting, tables
from repro.experiments.runner import DEFAULTS


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables and figures "
                    "on dataset surrogates.")
    parser.add_argument("target", choices=[
        "table2", "fig4", "fig6", "fig7a", "fig7b", "fig8", "fig9a",
        "fig9b", "fig10", "table3", "bounds", "filter-power", "cumulative",
        "all", "compare", "report"])
    parser.add_argument("--out", default="report.md",
                        help="for 'report': output markdown path")
    parser.add_argument("files", nargs="*", metavar="CSV",
                        help="for 'compare': OLD.csv NEW.csv")
    parser.add_argument("--scale", type=float, default=DEFAULTS.scale,
                        help="surrogate size multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=DEFAULTS.seed)
    parser.add_argument("--time-limit", type=float,
                        default=DEFAULTS.time_limit,
                        help="per-run timeout in seconds")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write raw measurement rows as CSV "
                             "(fig8/fig9a/fig9b targets)")
    parser.add_argument("--workers", type=int, default=DEFAULTS.workers,
                        help="worker processes for engine methods; for "
                             "'report', also the number of sections run "
                             "concurrently (output is identical either way)")
    return parser


def main(argv: List[str] = None) -> int:
    args = _parser().parse_args(argv)
    if args.target == "compare":
        from repro.experiments.compare import compare_csv

        if len(args.files) != 2:
            print("compare needs exactly two CSV paths")
            return 2
        report = compare_csv(args.files[0], args.files[1])
        print(report.render())
        return 0 if report.clean else 1
    defaults = replace(DEFAULTS, scale=args.scale, seed=args.seed,
                       time_limit=args.time_limit, workers=args.workers)
    if args.target == "report":
        from repro.experiments.suite import run_full_suite

        result = run_full_suite(defaults, output_path=args.out)
        passed = sum(1 for c in result.checks if c.passed)
        print("wrote %s — %d/%d shape checks passed (%.1fs)"
              % (args.out, passed, len(result.checks), result.elapsed))
        return 0 if result.all_passed else 1
    targets = [args.target] if args.target != "all" else [
        "table2", "fig4", "fig6", "fig7a", "fig7b", "fig8", "fig9a",
        "fig9b", "fig10", "table3", "bounds", "filter-power", "cumulative"]
    exported_rows = []
    for target in targets:
        text, rows = _run(target, defaults)
        print(text)
        print()
        exported_rows.extend(rows)
    if args.csv:
        from repro.experiments.export import write_csv
        from repro.resilience.retry import Backoff, retry

        # Don't discard a finished sweep over a transient write error.
        retry(lambda: write_csv(exported_rows, args.csv),
              backoff=Backoff(attempts=3, base=0.05), retry_on=(OSError,))
        print("wrote %d measurement rows to %s"
              % (len(exported_rows), args.csv))
    return 0


def _run(target: str, defaults):
    """Return ``(rendered text, MethodRun rows for CSV export)``."""
    text = _render(target, defaults)
    if isinstance(text, tuple):
        return text
    return text, []


def _render(target: str, defaults):
    scale, seed = defaults.scale, defaults.seed
    if target == "table2":
        return tables.render_table2(tables.table2_datasets(scale=scale,
                                                           seed=seed))
    if target == "fig4":
        return figures.render_fig4(figures.fig4_inshell_ratio(
            scale=scale, seed=seed))
    if target == "fig6":
        return case_study.render_fig6(case_study.fig6_case_study(
            scale=scale, seed=seed))
    if target == "fig7a":
        budgets = (5, 10, 15, 20, 25)
        return figures.render_fig7a(figures.fig7a_effectiveness(
            budgets=budgets, scale=scale, seed=seed,
            time_limit=defaults.time_limit), budgets)
    if target == "fig7b":
        return figures.render_fig7b(figures.fig7b_exact_comparison(seed=seed))
    if target == "fig8":
        rows = figures.fig8_runtime(defaults=defaults)
        return figures.render_fig8(rows), rows
    if target == "fig9a":
        rows = figures.fig9_degree_constraints(defaults=defaults)
        return figures.render_fig9(rows, "constraints"), rows
    if target == "fig9b":
        rows = figures.fig9_budgets(defaults=defaults)
        return figures.render_fig9(rows, "budgets"), rows
    if target == "fig10":
        return figures.render_fig10(figures.fig10_t_followers(
            defaults=defaults))
    if target == "table3":
        return tables.render_table3(tables.table3_t_runtime(
            defaults=defaults))
    if target == "bounds":
        return reporting.bound_tightness_report(scale=scale, seed=seed)
    if target == "filter-power":
        return reporting.filter_power_report(scale=scale, seed=seed)
    if target == "cumulative":
        return reporting.cumulative_effect_report(scale=scale, seed=seed)
    raise ValueError(target)


if __name__ == "__main__":
    sys.exit(main())
