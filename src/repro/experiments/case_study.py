"""Fig. 6 — the anchored (α,β)-core case study on the BX (BookCrossing) data.

The paper anchors 2 users and 2 books of the user-book network at
``(α,β) = (3,20)`` and shows the anchored core growing by 35 upper and 11
lower followers, noting that some followers attach to other followers rather
than to any anchor.  The driver below reproduces the same *kind* of report on
the BX surrogate: chosen anchors, the follower split per layer, and how many
followers have no anchor among their neighbors (the indirect-support effect
the paper highlights).

The paper's exact (3,20) setting assumes BookCrossing's full degree scale; on
a scaled surrogate the driver falls back to the surrogate's own ``0.6δ/0.4δ``
defaults when (3,20) yields an empty core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.abcore.decomposition import abcore
from repro.core.api import reinforce
from repro.core.result import AnchoredCoreResult
from repro.experiments.runner import DEFAULTS, default_constraints
from repro.generators.datasets import load_dataset
from repro.utils.tables import render_table

__all__ = ["CaseStudy", "fig6_case_study", "render_fig6"]


@dataclass
class CaseStudy:
    """Structured Fig. 6 output."""

    dataset: str
    alpha: int
    beta: int
    anchors_upper: List[int]
    anchors_lower: List[int]
    followers_upper: int
    followers_lower: int
    indirect_followers: int
    base_core_size: int
    final_core_size: int
    result: AnchoredCoreResult


def fig6_case_study(
    dataset: str = "BX",
    alpha: int = 3,
    beta: int = 20,
    b1: int = 2,
    b2: int = 2,
    scale: float = DEFAULTS.scale,
    seed: int = DEFAULTS.seed,
) -> CaseStudy:
    """Run FILVER with 2+2 anchors and dissect the anchored core (Fig. 6)."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    if not abcore(graph, alpha, beta):
        alpha, beta = default_constraints(graph)
    result = reinforce(graph, alpha, beta, b1, b2, method="filver")

    anchor_set = set(result.anchors)
    followers_upper = sum(1 for f in result.followers if graph.is_upper(f))
    followers_lower = len(result.followers) - followers_upper
    indirect = sum(
        1 for f in result.followers
        if not any(w in anchor_set for w in graph.neighbors(f)))
    return CaseStudy(
        dataset=dataset, alpha=alpha, beta=beta,
        anchors_upper=result.upper_anchors(graph.n_upper),
        anchors_lower=result.lower_anchors(graph.n_upper),
        followers_upper=followers_upper,
        followers_lower=followers_lower,
        indirect_followers=indirect,
        base_core_size=result.base_core_size,
        final_core_size=result.final_core_size,
        result=result)


def render_fig6(study: CaseStudy) -> str:
    """Render the Fig. 6 case-study summary as a two-column table."""
    rows = [
        ["(alpha, beta)", "(%d, %d)" % (study.alpha, study.beta)],
        ["upper anchors", study.anchors_upper],
        ["lower anchors", study.anchors_lower],
        ["upper followers", study.followers_upper],
        ["lower followers", study.followers_lower],
        ["followers w/o anchor neighbor", study.indirect_followers],
        ["core size", "%d -> %d" % (study.base_core_size,
                                    study.final_core_size)],
    ]
    return render_table(["metric", "value"], rows,
                        title="Fig. 6 — case study on %s" % study.dataset)
