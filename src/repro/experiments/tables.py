"""Drivers that regenerate each *table* of the paper's evaluation (§VI).

* Table II — dataset statistics (here: of the surrogates, next to the
  paper's original numbers so the substitution is transparent);
* Table III — FILVER++ runtime as ``t`` varies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bigraph.stats import summarize
from repro.core.api import reinforce
from repro.experiments.runner import DEFAULTS, ExperimentDefaults, default_constraints
from repro.generators.datasets import DATASETS, dataset_codes, load_dataset
from repro.utils.tables import render_table

__all__ = ["table2_datasets", "render_table2",
           "table3_t_runtime", "render_table3"]


def table2_datasets(
    datasets: Optional[Sequence[str]] = None,
    scale: float = DEFAULTS.scale,
    seed: int = DEFAULTS.seed,
) -> List[Dict[str, object]]:
    """Surrogate statistics beside the paper's Table II numbers."""
    codes = list(datasets) if datasets is not None else list(dataset_codes())
    rows: List[Dict[str, object]] = []
    for code in codes:
        spec = DATASETS[code]
        graph = load_dataset(code, scale=scale, seed=seed)
        s = summarize(graph)
        rows.append({
            "code": code,
            "name": spec.name,
            "E": s.n_edges, "U": s.n_upper, "L": s.n_lower,
            "d_max": s.max_degree, "delta": s.delta,
            "paper_E": spec.paper_edges, "paper_U": spec.paper_upper,
            "paper_L": spec.paper_lower, "paper_d_max": spec.paper_dmax,
            "paper_delta": spec.paper_delta,
        })
    return rows


def render_table2(rows: Sequence[Dict[str, object]]) -> str:
    """Render the Table II dataset-statistics rows as a text table."""
    table = [[r["code"], r["name"], r["E"], r["U"], r["L"], r["d_max"],
              r["delta"], r["paper_E"], r["paper_delta"]] for r in rows]
    return render_table(
        ["code", "dataset", "|E|", "|U|", "|L|", "d_max", "delta",
         "paper |E|", "paper delta"],
        table, title="Table II — dataset surrogates")


def table3_t_runtime(
    datasets: Sequence[str] = ("WC", "DB"),
    t_values: Sequence[int] = (1, 2, 4, 8, 16),
    budget: int = 8,
    defaults: ExperimentDefaults = DEFAULTS,
) -> Dict[str, Dict[int, float]]:
    """FILVER++ runtime for each ``t`` (Table III; ``b1 = b2 = 8``)."""
    out: Dict[str, Dict[int, float]] = {}
    for code in datasets:
        graph = load_dataset(code, scale=defaults.scale, seed=defaults.seed)
        alpha, beta = default_constraints(graph, defaults)
        out[code] = {}
        for t in t_values:
            result = reinforce(graph, alpha, beta, budget, budget,
                               method="filver++", t=t,
                               time_limit=defaults.time_limit)
            out[code][t] = result.elapsed
    return out


def render_table3(times: Dict[str, Dict[int, float]]) -> str:
    """Render the Table III index-construction timing grid."""
    t_values = sorted({t for per in times.values() for t in per})
    rows = [[code] + ["%.3f" % times[code][t] for t in t_values]
            for code in times]
    return render_table(["t"] + ["t=%d" % t for t in t_values], rows,
                        title="Table III — FILVER++ runtime (s) vs t")
