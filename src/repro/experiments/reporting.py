"""Diagnostic reports on the internals the paper's optimizations rely on.

These are not paper figures but back the DESIGN.md ablation claims with
numbers:

* :func:`bound_tightness_report` — how tight the two candidate upper bounds
  (r-score vs ``|rf(x)|``) are against the true ``|F(x)|``;
* :func:`filter_power_report` — candidate-pool sizes before/after the
  two-hop domination filter, plus verification counts per algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.api import reinforce
from repro.core.deletion_order import compute_orders, r_scores, reachable_from
from repro.core.followers import compute_followers
from repro.core.signatures import two_hop_filter
from repro.experiments.runner import DEFAULTS, default_constraints
from repro.generators.datasets import load_dataset
from repro.utils.tables import render_table

__all__ = ["BoundStats", "bound_tightness_report", "filter_power_report",
           "cumulative_effect_report"]


@dataclass
class BoundStats:
    """Aggregate tightness of one upper bound against ``|F(x)|``."""

    name: str
    candidates: int
    exact_hits: int          # bound == |F(x)|
    mean_slack: float        # mean (bound - |F(x)|)

    def as_row(self) -> List[object]:
        return [self.name, self.candidates, self.exact_hits,
                "%.2f" % self.mean_slack]


def bound_tightness_report(
    dataset: str = "WC",
    scale: float = DEFAULTS.scale,
    seed: int = DEFAULTS.seed,
    max_candidates: int = 300,
) -> str:
    """Compare r-score and ``|rf(x)|`` against the true follower counts."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    alpha, beta = default_constraints(graph)
    upper, lower = compute_orders(graph, alpha, beta)

    stats: Dict[str, List[int]] = {"r-score": [], "|rf|": [], "|F|": []}
    for order in (upper, lower):
        scores = r_scores(graph, order)
        for x in order.candidates(graph)[:max_candidates]:
            f = len(compute_followers(graph, order, x))
            stats["r-score"].append(scores.get(x, 0))
            stats["|rf|"].append(len(reachable_from(graph, order, x)))
            stats["|F|"].append(f)

    n = len(stats["|F|"])
    if not n:
        return "no candidates to report on"
    rows = []
    for name in ("r-score", "|rf|"):
        slack = [stats[name][i] - stats["|F|"][i] for i in range(n)]
        assert all(s >= 0 for s in slack), "%s is not an upper bound!" % name
        rows.append(BoundStats(
            name=name, candidates=n,
            exact_hits=sum(1 for s in slack if s == 0),
            mean_slack=sum(slack) / n).as_row())
    return render_table(["bound", "candidates", "exact", "mean slack"], rows,
                        title="Bound tightness on %s (a=%d, b=%d)"
                              % (dataset, alpha, beta))


def cumulative_effect_report(
    dataset: str = "WC",
    scale: float = DEFAULTS.scale,
    seed: int = DEFAULTS.seed,
    n_sets: int = 40,
    set_size: int = 4,
) -> str:
    """Quantify the super-additive cumulative effect of Section V.

    The paper's verification-stage optimization rests on two facts about
    anchor sets ``T``: ``|F_sh(T)| = |∪F(x)| ≤ |F(T)|`` (anchors can jointly
    rescue vertices none rescues alone), and the gap is usually small.  This
    report samples promising-anchor sets and prints the distribution of the
    cumulative surplus ``|F(T)| - |F_sh(T)|`` — the quantity FILVER++ gives
    up per iteration and recovers by folding the batch into the core.
    """
    from repro.experiments.figures import fig4_inshell_ratio

    samples = fig4_inshell_ratio(dataset, n_sets=n_sets, set_size=set_size,
                                 scale=scale, seed=seed)
    if not samples:
        return "no anchor sets to sample"
    surpluses = [s.f_collective - s.f_in_shell for s in samples]
    positive = [s for s in surpluses if s > 0]
    rows = [
        ["anchor sets sampled", len(samples)],
        ["sets with cumulative surplus", len(positive)],
        ["max surplus", max(surpluses)],
        ["mean surplus", "%.2f" % (sum(surpluses) / len(surpluses))],
        ["mean |F(T)|", "%.2f" % (sum(s.f_collective for s in samples)
                                  / len(samples))],
    ]
    return render_table(["metric", "value"], rows,
                        title="Cumulative effect on %s (|T|=%d)"
                              % (dataset, set_size))


def filter_power_report(
    dataset: str = "WC",
    scale: float = DEFAULTS.scale,
    seed: int = DEFAULTS.seed,
    b1: int = 10,
    b2: int = 10,
) -> str:
    """Pool sizes and verification counts across the FILVER family."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    alpha, beta = default_constraints(graph)
    rows = []
    for method in ("filver", "filver+", "filver++"):
        result = reinforce(graph, alpha, beta, b1, b2, method=method)
        pools = [it.candidates_total for it in result.iterations]
        filtered = [it.candidates_after_filter for it in result.iterations]
        rows.append([
            method,
            max(pools, default=0),
            max(filtered, default=0),
            result.total_verifications,
            result.n_followers,
            "%.3f" % result.elapsed,
        ])
    return render_table(
        ["method", "max pool", "after filter", "verifications",
         "followers", "time (s)"],
        rows, title="Filter power on %s (a=%d, b=%d)" % (dataset, alpha, beta))
