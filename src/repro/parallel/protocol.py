"""The typed contract between the engine and candidate evaluators.

The engine only ever touches three methods of whatever evaluates its
candidates; :class:`Evaluator` names them so ``engine.py`` can annotate its
``evaluator`` parameters instead of passing ``object`` and ignoring
attribute errors.  It lives in its own leaf module (no runtime imports
from the rest of :mod:`repro.parallel`) so the engine can reference the
type without importing ``multiprocessing`` machinery, and the structural
check stays one-way: :class:`~repro.parallel.evaluator.ParallelEvaluator`
conforms without subclassing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Protocol, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.core.order_maintenance import OrderState

__all__ = ["Candidate", "Evaluator"]

#: One candidate: (side, vertex) where side selects O_U or O_L.
Candidate = Tuple[str, int]


class Evaluator(Protocol):
    """What the engine requires of a parallel candidate evaluator."""

    def begin_iteration(self, state: "OrderState",
                        deadline: Optional[float]) -> None:
        """Freeze this iteration's orders/core/deadline for the pool."""

    def evaluate(self, items: Sequence[Candidate],
                 ) -> Generator[Set[int], None, None]:
        """Yield ``F(x)`` per candidate in order; ``close()`` cancels."""

    def shutdown(self) -> None:
        """Tear the pool down; must be idempotent."""
