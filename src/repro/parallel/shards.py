"""Shard-granular parallel evaluation for component-sharded campaigns.

Built on the same pool substrate as :class:`~repro.parallel.evaluator
.ParallelEvaluator` (:class:`~repro.parallel.evaluator._EvaluatorPool`:
pipes, epoch-tagged chunks, dead-worker burial, drain/shutdown) with three
sharded twists:

* **one shared segment per shard** — every worker attaches every shard's
  CSR graph at spawn; a chunk names its shard, so no per-iteration graph
  traffic ever happens;
* **incremental state broadcasts** — the per-iteration ``state`` message
  carries deletion orders and cores only for the shards anchored since the
  previous broadcast.  A clean shard's worker-side state is still valid
  precisely because nothing that defines it changed — the same argument
  that lets the engine reuse clean shards' ranked lists;
* **whole-shard chunks** — candidate chunks are split at shard boundaries,
  so each dispatched unit of work touches exactly one shard's graph and
  state (shard-granular scheduling with cache locality), while chunk
  *order* still follows the merged ranking, keeping the parent's reduction
  identical to the serial scan.

Failure semantics are inherited unchanged: worker death degrades to
in-parent recomputation, ``stopped`` replies surface as
:class:`~repro.parallel.evaluator.EvaluationStopped`, aborts as
:class:`~repro.exceptions.AbortCampaign`.
"""

from __future__ import annotations

import signal
import time
import traceback
from contextlib import nullcontext
from multiprocessing import connection as mp_connection
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.kernel import FollowerKernel, kernel_for
from repro.bigraph.shm import (
    SharedGraphExport,
    SharedGraphMeta,
    attach_shared_graph,
    export_shared_graph,
)
from repro.core.deletion_order import DeletionOrder
from repro.core.followers import compute_followers
from repro.exceptions import AbortCampaign
from repro.parallel.evaluator import _EvaluatorPool, _CHUNKS_PER_WORKER, _MAX_CHUNK
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    deactivate_inherited_plan,
    fault_site,
)

if TYPE_CHECKING:  # runtime import would be circular via repro.core.sharded
    from repro.core.order_maintenance import OrderState

__all__ = ["ShardCandidate", "ShardedEvaluator", "create_sharded_evaluator"]

#: One unit of sharded verification work: ``(shard_index, side, local_x)``.
ShardCandidate = Tuple[int, str, int]


class ShardedEvaluator(_EvaluatorPool):
    """Evaluate ``F(x)`` for merged candidate batches across shard graphs.

    Parameters
    ----------
    shard_graphs:
        The component-local graphs, indexed by shard; each is exported to
        shared memory once at construction.
    workers / chunk_size / start_method / fault_specs / use_flat_kernel:
        As for :class:`~repro.parallel.ParallelEvaluator`; workers build
        one follower kernel per shard when ``use_flat_kernel`` is set.
    """

    def __init__(
        self,
        shard_graphs: Sequence[BipartiteGraph],
        workers: int,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        fault_specs: Sequence[FaultSpec] = (),
        use_flat_kernel: bool = True,
    ) -> None:
        self._check_pool_params(workers, chunk_size)
        self._graphs = list(shard_graphs)
        self._orders: Dict[int, Dict[str, DeletionOrder]] = {}
        self._cores: Dict[int, Set[int]] = {}
        self._fault_specs = tuple(fault_specs)
        self._use_flat_kernel = use_flat_kernel
        self._exports: List[SharedGraphExport] = []
        try:
            for shard_graph in shard_graphs:
                self._exports.append(export_shared_graph(shard_graph))
            super().__init__(workers, chunk_size=chunk_size,
                             start_method=start_method)
        except BaseException:  # repro: boundary - release, then re-raise
            self.release()
            raise

    def _worker_target(self):
        return _sharded_worker_main

    def _spawn_args(self, child_conn: mp_connection.Connection) -> Tuple:
        return (child_conn, tuple(export.meta for export in self._exports),
                self._stop, self._fault_specs, self._use_flat_kernel)

    def begin_iteration(self, shard_states: Sequence["OrderState"],
                        dirty_shards: Iterable[int],
                        deadline: Optional[float]) -> None:
        """Broadcast this iteration's deadline and *changed* shard states.

        ``dirty_shards`` must contain every shard anchored since the last
        broadcast (all shards on the first call); clean shards keep their
        previous worker-side state, which is still exact.
        """
        payload_shards: Dict[int, Dict[str, object]] = {}
        for shard_index in sorted(dirty_shards):
            state = shard_states[shard_index]
            self._orders[shard_index] = {"upper": state.upper,
                                         "lower": state.lower}
            self._cores[shard_index] = state.core
            payload_shards[shard_index] = {
                "core": state.core,
                "positions": {"upper": state.upper.position,
                              "lower": state.lower.position},
            }
        reference = shard_states[0]
        self._broadcast_state({
            "alpha": reference.alpha,
            "beta": reference.beta,
            "deadline": deadline,
            "shards": payload_shards,
        })

    def _make_chunks(self, items: Sequence[ShardCandidate]) -> List[Sequence]:
        """Order-preserving chunks, additionally split at shard boundaries.

        Every chunk is single-shard — the shard-granular scheduling unit —
        but chunk order still follows ``items`` (the merged ranking), so
        the base class's in-order reduction is untouched.
        """
        size = self._chunk_size
        if size is None:
            per_pipeline = max(1, self.alive_workers) * _CHUNKS_PER_WORKER
            size = max(1, min(_MAX_CHUNK, -(-len(items) // per_pipeline)))
        chunks: List[List[ShardCandidate]] = []
        current: List[ShardCandidate] = []
        for item in items:
            if current and (len(current) >= size or item[0] != current[-1][0]):
                chunks.append(current)
                current = []
            current.append(item)
        if current:
            chunks.append(current)
        return chunks

    def _local_chunk(self, items: Sequence[ShardCandidate]) -> List[Set[int]]:
        out: List[Set[int]] = []
        for shard_index, side, x in items:
            out.append(compute_followers(
                self._graphs[shard_index],
                self._orders[shard_index][side], x,
                core=self._cores[shard_index]))
        return out

    def release(self) -> None:
        for export in self._exports:
            export.close()


def create_sharded_evaluator(
    shard_graphs: Sequence[BipartiteGraph],
    workers: int,
    chunk_size: Optional[int] = None,
    fault_specs: Sequence[FaultSpec] = (),
    use_flat_kernel: bool = True,
) -> Optional[ShardedEvaluator]:
    """Build a sharded evaluator, or ``None`` to keep the serial path.

    Mirrors :func:`repro.parallel.create_evaluator`: ``workers <= 1``, an
    empty shard list, or pool-construction failure all degrade to serial.
    """
    if workers <= 1 or not shard_graphs:
        return None
    try:
        return ShardedEvaluator(shard_graphs, workers, chunk_size=chunk_size,
                                fault_specs=fault_specs,
                                use_flat_kernel=use_flat_kernel)
    except (OSError, ValueError):  # repro: boundary
        return None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _sharded_worker_main(conn: mp_connection.Connection,
                         metas: Sequence[SharedGraphMeta], stop_event: object,
                         fault_specs: Tuple[FaultSpec, ...],
                         use_flat_kernel: bool = True) -> None:
    """Worker loop: attach every shard graph, evaluate chunks until stopped."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - non-main thread
        pass
    handles = []
    kernels: List[Optional[FollowerKernel]] = []
    try:
        for meta in metas:
            handles.append(attach_shared_graph(meta))
        deactivate_inherited_plan()
        plan = FaultPlan(specs=list(fault_specs)) if fault_specs else None
        kernels = [kernel_for(handle.graph) if use_flat_kernel else None
                   for handle in handles]
        state: Dict[str, object] = {"shards": {}}
        with (plan.active() if plan is not None else nullcontext()):
            _sharded_worker_loop(conn, [h.graph for h in handles],
                                 stop_event, state, kernels)
    except (KeyboardInterrupt, SystemExit):
        raise
    finally:
        for kernel in kernels:
            if kernel is not None:
                kernel.release()
        for handle in handles:
            handle.close()
        try:
            conn.close()
        except OSError:
            pass


def _sharded_worker_loop(conn: mp_connection.Connection,
                         graphs: List[BipartiteGraph], stop_event: object,
                         state: Dict[str, object],
                         kernels: List[Optional[FollowerKernel]]) -> None:
    shards: Dict[int, Dict[str, object]] = state["shards"]  # type: ignore[assignment]
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "state":
            _, epoch, payload = message
            state["epoch"] = epoch
            state["deadline"] = payload["deadline"]
            state["alpha"] = payload["alpha"]
            state["beta"] = payload["beta"]
            # Only dirty shards travel; the rest keep their prior state,
            # which is exact because nothing anchored them since.
            for shard_index, shard_payload in payload["shards"].items():
                orders = {}
                for side in ("upper", "lower"):
                    orders[side] = DeletionOrder(
                        side=side,
                        position=shard_payload["positions"][side],
                        core=shard_payload["core"],
                        relaxed_core=set(),
                        alpha=payload["alpha"],
                        beta=payload["beta"],
                    )
                shards[shard_index] = {"orders": orders,
                                       "core": shard_payload["core"]}
                kernel = kernels[shard_index]
                if kernel is not None:
                    kernel.begin_iteration(
                        shard_payload["positions"]["upper"],
                        shard_payload["positions"]["lower"],
                        shard_payload["core"])
            continue
        # ("chunk", epoch, chunk_id, items)
        _, epoch, chunk_id, items = message
        try:
            follower_sets = _evaluate_sharded_chunk(graphs, state, items,
                                                    stop_event, kernels)
        except AbortCampaign as exc:
            conn.send(("abort", epoch, chunk_id, str(exc)))
            continue
        except Exception:  # repro: boundary
            conn.send(("error", epoch, chunk_id, traceback.format_exc(),
                       items))
            continue
        if follower_sets is None:
            conn.send(("stopped", epoch, chunk_id))
        else:
            conn.send(("result", epoch, chunk_id, follower_sets))


def _evaluate_sharded_chunk(graphs: List[BipartiteGraph],
                            state: Dict[str, object],
                            items: Sequence[ShardCandidate],
                            stop_event: object,
                            kernels: List[Optional[FollowerKernel]],
                            ) -> Optional[List[Set[int]]]:
    """Follower sets for one single-shard chunk; ``None`` on deadline/stop."""
    fault_site("parallel.chunk")
    shards: Dict[int, Dict[str, object]] = state["shards"]  # type: ignore[assignment]
    deadline = state["deadline"]
    alpha = state["alpha"]
    beta = state["beta"]
    is_stopped = stop_event.is_set  # type: ignore[attr-defined]
    now = time.perf_counter
    out: List[Set[int]] = []
    for shard_index, side, x in items:
        if is_stopped():
            return None
        if deadline is not None and now() > deadline:  # type: ignore[operator]
            return None
        kernel = kernels[shard_index]
        if kernel is not None:
            out.append(kernel.followers(side, x, alpha, beta))  # type: ignore[arg-type]
        else:
            shard_state = shards[shard_index]
            out.append(compute_followers(
                graphs[shard_index],
                shard_state["orders"][side],  # type: ignore[index]
                x, core=shard_state["core"]))  # type: ignore[arg-type]
    return out
