"""Parallel candidate evaluation for the FILVER engine.

The verification stage evaluates ``F(x)`` for many independent candidate
anchors; :class:`~repro.parallel.evaluator.ParallelEvaluator` fans those
evaluations out to a pool of worker processes that share the CSR graph
zero-copy (:mod:`repro.bigraph.shm`) and reduces the results in the exact
serial tie-breaking order, so a parallel campaign is byte-identical to a
serial one.  See ``docs/PARALLEL.md`` for the architecture and the
determinism contract.
"""

from repro.parallel.evaluator import (
    EvaluationStopped,
    ParallelEvaluator,
    create_evaluator,
)
from repro.parallel.protocol import Candidate, Evaluator
from repro.parallel.shards import (
    ShardCandidate,
    ShardedEvaluator,
    create_sharded_evaluator,
)

__all__ = [
    "Candidate",
    "EvaluationStopped",
    "Evaluator",
    "ParallelEvaluator",
    "ShardCandidate",
    "ShardedEvaluator",
    "create_evaluator",
    "create_sharded_evaluator",
]
