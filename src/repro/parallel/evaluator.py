"""Process-pool evaluation of candidate anchors, bit-identical to serial.

Why this is safe to parallelize
-------------------------------
Within one engine iteration the graph, both deletion orders, and the
anchored core are all *frozen*: ``compute_followers(graph, order, x, core)``
is a pure function of them and ``x``.  The serial verification stage's skip
rules (coverage by an earlier follower set, the ``T``-threshold bound) only
decide *whether* a candidate is evaluated — never *what* its follower set
would be.  So workers may evaluate candidates speculatively, in any order,
and the parent replays the serial scan over the precomputed sets: the
chosen anchors, the follower sets, and even the per-iteration
``verifications`` counter come out exactly as a serial run's.  The price of
that contract is bounded wasted work — follower sets the serial scan would
have skipped are computed and discarded.

Topology
--------
One duplex pipe per worker; the shared stop flag is a
``multiprocessing.Event``.  Per iteration the parent broadcasts one
``state`` message (deletion-order positions, anchored core, deadline), then
streams candidate chunks round-robin to idle workers and yields follower
sets back in candidate order.  Messages are processed FIFO per worker, so a
chunk can never be interpreted under the wrong iteration's state.

The pipe/chunk/burial machinery lives in :class:`_EvaluatorPool`, shared
with the component-sharded evaluator (:mod:`repro.parallel.shards`); this
module's :class:`ParallelEvaluator` adds the single-graph export and the
one-``OrderState`` broadcast protocol on top.

Failure semantics (see ``docs/PARALLEL.md``):

* a worker raising :class:`~repro.exceptions.AbortCampaign` (observers,
  injected faults) surfaces in the parent as ``AbortCampaign`` — the engine
  finalizes the usual clean ``interrupted=True`` result;
* a worker hitting the deadline or the stop flag replies ``stopped`` and
  the parent raises :class:`EvaluationStopped` — the engine returns the
  usual partial ``timed_out=True`` result;
* a worker that *dies* mid-chunk (killed, OOM, ``SystemExit``) is buried
  and its chunk is recomputed serially in the parent; with every worker
  gone the evaluator degrades to fully serial evaluation.  Results are
  identical in all three degraded modes because the replay order never
  changes.

Determinism caveat: worker *scheduling* is nondeterministic, but scheduling
only affects wall-clock, never values — every reduction is keyed by chunk
index, not arrival order.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from contextlib import nullcontext
from multiprocessing import connection as mp_connection
from typing import (
    TYPE_CHECKING,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.kernel import FollowerKernel, kernel_for
from repro.bigraph.shm import SharedGraphMeta, attach_shared_graph, export_shared_graph
from repro.core.deletion_order import DeletionOrder
from repro.core.followers import compute_followers
from repro.exceptions import AbortCampaign, InvalidParameterError
from repro.parallel.protocol import Candidate
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    deactivate_inherited_plan,
    fault_site,
)

if TYPE_CHECKING:  # runtime import would be circular via repro.core.engine
    from repro.core.order_maintenance import OrderState

__all__ = ["Candidate", "EvaluationStopped", "ParallelEvaluator", "create_evaluator"]

#: Upper bound on auto-sized chunks: small enough that the drain after an
#: early break wastes little work, large enough to amortize IPC.
_MAX_CHUNK = 64

#: How many chunks each worker should receive over an average iteration
#: under auto-sizing; > 1 keeps the pipeline busy when chunk costs vary.
_CHUNKS_PER_WORKER = 4


class EvaluationStopped(Exception):
    """Internal signal: a worker observed the deadline / stop flag.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: it never
    escapes the engine, which translates it into ``timed_out=True`` exactly
    like the serial deadline check.
    """


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("process", "conn", "inflight", "dead")

    def __init__(self, process: multiprocessing.process.BaseProcess,
                 conn: mp_connection.Connection) -> None:
        self.process = process
        self.conn = conn
        #: ``(epoch, chunk_id, items)`` of the dispatched, unanswered chunk.
        self.inflight: Optional[Tuple[int, int, Sequence[Candidate]]] = None
        self.dead = False


class _EvaluatorPool:
    """Generic chunk-streaming process pool with burial-based degradation.

    Everything protocol-shaped lives here — spawning, round-robin chunk
    dispatch, epoch-tagged replies, dead-worker burial with in-parent
    recomputation, the drain invariant, and shutdown.  Subclasses provide
    what varies between pool flavors:

    * :meth:`_worker_target` / :meth:`_spawn_args` — the worker entry point
      and its arguments (the shared-graph metadata travels here);
    * :meth:`_local_chunk` — the in-parent serial fallback used for burial
      and pool-exhaustion degradation;
    * :meth:`release` — drop the shared segments at shutdown;
    * a ``begin_iteration`` broadcast appropriate to its state shape.

    Chunk item types are opaque to this class; only the worker entry point
    and ``_local_chunk`` interpret them.
    """

    @classmethod
    def _check_pool_params(cls, workers: int,
                           chunk_size: Optional[int]) -> None:
        """Parameter validation, callable *before* acquiring any resource.

        Subclass constructors that allocate shared memory ahead of the base
        ``__init__`` call this first so a bad parameter cannot leak the
        allocation.
        """
        if workers < 2:
            raise InvalidParameterError(
                "%s needs workers >= 2, got %d" % (cls.__name__, workers))
        if chunk_size is not None and chunk_size < 1:
            raise InvalidParameterError(
                "chunk_size must be >= 1, got %d" % chunk_size)

    def __init__(
        self,
        workers: int,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self._check_pool_params(workers, chunk_size)
        self._chunk_size = chunk_size
        self._epoch = 0
        self._closed = False

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        self._stop = ctx.Event()
        self._workers: List[_WorkerHandle] = []
        try:
            for _ in range(workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=self._worker_target(),
                    args=self._spawn_args(child_conn),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers.append(_WorkerHandle(process, parent_conn))
        except (OSError, ValueError):
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _worker_target(self):
        """The worker process entry point (a module-level function)."""
        raise NotImplementedError

    def _spawn_args(self, child_conn: mp_connection.Connection) -> Tuple:
        """Full argument tuple for one worker process."""
        raise NotImplementedError

    def _local_chunk(self, items: Sequence) -> List[Set[int]]:
        """The serial fallback: evaluate one chunk in the parent process."""
        raise NotImplementedError

    def release(self) -> None:
        """Release shared-memory resources at shutdown (idempotent)."""

    # ------------------------------------------------------------------
    # Introspection (used by tests and the engine)
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Workers originally spawned (dead ones included)."""
        return len(self._workers)

    @property
    def alive_workers(self) -> int:
        """Workers still accepting chunks."""
        return sum(1 for w in self._workers if not w.dead)

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (fault tests kill these)."""
        return [w.process.pid for w in self._workers
                if not w.dead and w.process.pid is not None]

    # ------------------------------------------------------------------
    # Per-iteration protocol
    # ------------------------------------------------------------------

    def _broadcast_state(self, payload: Dict[str, object]) -> None:
        """Bump the epoch and send ``("state", epoch, payload)`` to the pool.

        The epoch is what lets stale results from an abandoned stream be
        recognized and dropped.
        """
        self._epoch += 1
        message = ("state", self._epoch, payload)
        for worker in self._workers:
            if worker.dead:
                continue
            try:
                worker.conn.send(message)
            except (OSError, BrokenPipeError):
                self._bury(worker, results=None)

    def evaluate(self, items: Sequence,
                 ) -> Generator[Set[int], None, None]:
        """Yield ``F(x)`` for every candidate, in the given (serial) order.

        Chunks are dispatched speculatively; closing the generator early
        (serial scan break) cancels the remaining dispatch and drains
        whatever is in flight.  Raises :class:`AbortCampaign` when a worker
        aborts and :class:`EvaluationStopped` when one hits the deadline.
        """
        if not items:
            return
        chunks = self._make_chunks(items)
        results: Dict[int, List[Set[int]]] = {}
        cursor = 0  # chunks[:cursor] have been dispatched (or run locally)
        next_yield = 0
        try:
            while next_yield < len(chunks):
                if next_yield in results:
                    for follower_set in results.pop(next_yield):
                        yield follower_set
                    next_yield += 1
                    continue
                cursor = self._fill_idle(chunks, cursor)
                if any(w.inflight is not None for w in self._workers
                       if not w.dead):
                    self._pump(results, blocking=True)
                elif next_yield >= cursor:
                    # Pool unavailable (all workers dead, or buried during
                    # dispatch): evaluate the next chunk in-process.  Same
                    # values, no parallelism.
                    cursor = max(cursor, next_yield + 1)
                    results[next_yield] = self._local_chunk(chunks[next_yield])
                # else: the chunk was dispatched and its worker died; _bury
                # already recomputed it into results — loop around.
        finally:
            self._drain()

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------

    def _make_chunks(self, items: Sequence) -> List[Sequence]:
        """Split ``items`` (order-preserving) into dispatchable chunks."""
        size = self._chunk_size
        if size is None:
            per_pipeline = max(1, self.alive_workers) * _CHUNKS_PER_WORKER
            size = max(1, min(_MAX_CHUNK, -(-len(items) // per_pipeline)))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _fill_idle(self, chunks: List[Sequence],
                   cursor: int) -> int:
        """Dispatch pending chunks to idle workers; return the new cursor."""
        for worker in self._workers:
            if cursor >= len(chunks):
                break
            if worker.dead or worker.inflight is not None:
                continue
            fault_site("parallel.dispatch")
            chunk_id = cursor
            worker.inflight = (self._epoch, chunk_id, chunks[chunk_id])
            try:
                worker.conn.send(("chunk", self._epoch, chunk_id,
                                  tuple(chunks[chunk_id])))
            except (OSError, BrokenPipeError):
                # _bury recomputes the chunk locally via the inflight record.
                self._bury(worker, results=None)
                return cursor  # caller re-enters and reconsiders
            cursor += 1
        return cursor

    def _pump(self, results: Dict[int, List[Set[int]]],
              blocking: bool) -> None:
        """Receive at least one message (when blocking) and apply it."""
        conns = {w.conn: w for w in self._workers
                 if not w.dead and w.inflight is not None}
        if not conns:
            return
        ready = mp_connection.wait(list(conns),
                                   timeout=None if blocking else 0)
        for conn in ready:
            worker = conns[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._bury(worker, results)
                continue
            self._apply_message(worker, message, results)

    def _apply_message(self, worker: _WorkerHandle, message: Tuple,
                       results: Optional[Dict[int, List[Set[int]]]]) -> None:
        kind, epoch, chunk_id = message[0], message[1], message[2]
        worker.inflight = None
        if epoch != self._epoch or results is None:
            return  # stale reply from an abandoned stream
        if kind == "result":
            results[chunk_id] = message[3]
        elif kind == "abort":
            raise AbortCampaign(message[3])
        elif kind == "stopped":
            raise EvaluationStopped()
        elif kind == "error":
            # Degrade: recompute in the parent.  An injected worker-only
            # fault vanishes (graceful degradation); a genuine bug in the
            # evaluation re-raises here with a clean parent traceback (the
            # worker's formatted traceback is chained for context).
            try:
                results[chunk_id] = self._local_chunk(
                    self._chunk_items(chunk_id, message))
            except Exception as exc:  # repro: boundary
                raise RuntimeError(
                    "candidate evaluation failed in worker and parent; "
                    "worker traceback:\n%s" % message[3]) from exc

    def _chunk_items(self, chunk_id: int,
                     message: Tuple) -> Sequence:
        items = message[4] if len(message) > 4 else None
        if items is None:
            raise RuntimeError("worker error reply carried no chunk items")
        return items

    def _bury(self, worker: _WorkerHandle,
              results: Optional[Dict[int, List[Set[int]]]]) -> None:
        """Mark a worker dead; recompute its in-flight chunk in-process."""
        worker.dead = True
        inflight = worker.inflight
        worker.inflight = None
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        if inflight is not None and results is not None:
            epoch, chunk_id, items = inflight
            if epoch == self._epoch:
                results[chunk_id] = self._local_chunk(items)

    def _drain(self) -> None:
        """Collect (and discard) every outstanding reply.

        Restores the invariant that no chunk is in flight between
        :meth:`evaluate` calls — which is what makes the next
        ``begin_iteration`` broadcast deadlock-free: a worker mid-``send``
        of a large stale result would otherwise never drain its inbound
        pipe.  Abort/stop replies arriving during a drain are dropped; the
        stream they belonged to is already abandoned.
        """
        while True:
            pending = [w for w in self._workers
                       if not w.dead and w.inflight is not None]
            if not pending:
                return
            conns = {w.conn: w for w in pending}
            for conn in mp_connection.wait(list(conns)):
                worker = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._bury(worker, results=None)
                    continue
                worker.inflight = None
                del message  # stale by construction

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Raise the shared stop flag without tearing the pool down.

        Workers check the flag between candidates; any chunk in flight
        comes back ``stopped`` and the consuming :meth:`evaluate` stream
        raises :class:`EvaluationStopped` — the same clean path a deadline
        takes.  This is the campaign-budget hook: one call stops every
        worker at its next candidate boundary.
        """
        self._stop.set()

    def shutdown(self) -> None:
        """Stop the pool and release the shared segments; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        for worker in self._workers:
            if worker.dead:
                continue
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.perf_counter() + 5.0
        for worker in self._workers:
            if worker.dead:
                continue
            # Keep the outbound pipe drained while waiting so a worker
            # blocked mid-send of a stale result can reach the stop message.
            while worker.process.is_alive():
                if time.perf_counter() > deadline:
                    worker.process.terminate()
                    break
                try:
                    if worker.conn.poll(0.05):
                        worker.conn.recv()
                except (EOFError, OSError):
                    break
            worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.dead = True
        self.release()

    def __enter__(self) -> "_EvaluatorPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class ParallelEvaluator(_EvaluatorPool):
    """Evaluate ``F(x)`` for candidate batches on a process pool.

    Parameters
    ----------
    graph:
        The problem graph.  Exported once (CSR, shared memory) at
        construction; list-backed graphs are converted for the export only.
    workers:
        Number of worker processes, ≥ 2 (``workers=1`` means "don't build
        an evaluator" — the engine keeps its serial path).
    chunk_size:
        Candidates per dispatched chunk; ``None`` auto-sizes per iteration.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` (cheap,
        Linux) and falls back to ``spawn``.
    fault_specs:
        :class:`~repro.resilience.faults.FaultSpec` entries replayed inside
        each worker (sites ``parallel.*``) — the deterministic handle the
        fault tests use to crash or abort a worker mid-chunk.
    use_flat_kernel:
        Let workers evaluate ``F(x)`` with the flat-array
        :class:`~repro.bigraph.FollowerKernel` (the shared-memory graph is
        always CSR, so the kernel is always constructible worker-side).
        Kernel results are set-identical to ``compute_followers``, so this
        is purely a speed switch; the engine passes its own kernel
        selection through so "generic path" benchmark configurations stay
        generic end to end.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        workers: int,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        fault_specs: Sequence[FaultSpec] = (),
        use_flat_kernel: bool = True,
    ) -> None:
        self._check_pool_params(workers, chunk_size)
        self._graph = graph
        self._orders: Dict[str, DeletionOrder] = {}
        self._core: Set[int] = set()
        self._fault_specs = tuple(fault_specs)
        self._use_flat_kernel = use_flat_kernel
        self._export = export_shared_graph(graph)
        try:
            super().__init__(workers, chunk_size=chunk_size,
                             start_method=start_method)
        except BaseException:  # repro: boundary - release, then re-raise
            self._export.close()
            raise

    def _worker_target(self):
        return _worker_main

    def _spawn_args(self, child_conn: mp_connection.Connection) -> Tuple:
        return (child_conn, self._export.meta, self._stop,
                self._fault_specs, self._use_flat_kernel)

    def begin_iteration(self, state: "OrderState",
                        deadline: Optional[float]) -> None:
        """Broadcast this iteration's frozen evaluation state to the pool.

        Must be called before :meth:`evaluate` each iteration.
        """
        self._orders = {"upper": state.upper, "lower": state.lower}
        self._core = state.core
        self._broadcast_state({
            "alpha": state.alpha,
            "beta": state.beta,
            "deadline": deadline,
            "core": state.core,
            "positions": {"upper": state.upper.position,
                          "lower": state.lower.position},
        })

    def _local_chunk(self, items: Sequence[Candidate]) -> List[Set[int]]:
        out: List[Set[int]] = []
        for side, x in items:
            out.append(compute_followers(self._graph, self._orders[side], x,
                                         core=self._core))
        return out

    def release(self) -> None:
        self._export.close()


def create_evaluator(
    graph: BipartiteGraph,
    workers: int,
    chunk_size: Optional[int] = None,
    fault_specs: Sequence[FaultSpec] = (),
    use_flat_kernel: bool = True,
) -> Optional[ParallelEvaluator]:
    """Build an evaluator for ``workers > 1``; ``None`` keeps the serial path.

    Pool construction failure (fork refused, resource limits) also returns
    ``None`` — campaigns degrade to serial instead of failing.
    """
    if workers <= 1:
        return None
    try:
        return ParallelEvaluator(graph, workers, chunk_size=chunk_size,
                                 fault_specs=fault_specs,
                                 use_flat_kernel=use_flat_kernel)
    except (OSError, ValueError):  # repro: boundary
        return None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _worker_main(conn: mp_connection.Connection, meta: SharedGraphMeta,
                 stop_event: object, fault_specs: Tuple[FaultSpec, ...],
                 use_flat_kernel: bool = True) -> None:
    """Worker loop: attach the shared graph, evaluate chunks until stopped."""
    # Ctrl-C belongs to the parent: it finalizes the best-so-far result and
    # asks the pool to stop; a KeyboardInterrupt racing inside a worker
    # would only turn that clean path into a broken pipe.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - non-main thread
        pass
    handle = attach_shared_graph(meta)
    # Under the fork start method the parent's active FaultPlan global is
    # inherited; its counters belong to the parent, so drop it before
    # activating this worker's own (parallel.*-filtered) plan.
    deactivate_inherited_plan()
    plan = FaultPlan(specs=list(fault_specs)) if fault_specs else None
    state: Dict[str, object] = {}
    # The attached graph is always CSR-backed, so this never falls back;
    # the flag exists so generic-path configurations stay generic.
    kernel = kernel_for(handle.graph) if use_flat_kernel else None
    try:
        with (plan.active() if plan is not None else nullcontext()):
            _worker_loop(conn, handle.graph, stop_event, state, kernel)
    except (KeyboardInterrupt, SystemExit):
        raise
    finally:
        state.clear()
        if kernel is not None:
            # The kernel's views pin the shared segments; drop them first.
            kernel.release()
        handle.close()
        try:
            conn.close()
        except OSError:
            pass


def _worker_loop(conn: mp_connection.Connection, graph: BipartiteGraph,
                 stop_event: object, state: Dict[str, object],
                 kernel: Optional[FollowerKernel] = None) -> None:
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "state":
            _, epoch, payload = message
            orders = {}
            for side in ("upper", "lower"):
                orders[side] = DeletionOrder(
                    side=side,
                    position=payload["positions"][side],
                    core=payload["core"],
                    relaxed_core=set(),
                    alpha=payload["alpha"],
                    beta=payload["beta"],
                )
            state["epoch"] = epoch
            state["orders"] = orders
            state["core"] = payload["core"]
            state["deadline"] = payload["deadline"]
            state["alpha"] = payload["alpha"]
            state["beta"] = payload["beta"]
            if kernel is not None:
                kernel.begin_iteration(payload["positions"]["upper"],
                                       payload["positions"]["lower"],
                                       payload["core"])
            continue
        # ("chunk", epoch, chunk_id, items) — FIFO pipes guarantee the
        # state message for this epoch was already processed.
        _, epoch, chunk_id, items = message
        try:
            follower_sets = _evaluate_chunk(graph, state, items, stop_event,
                                            kernel)
        except AbortCampaign as exc:
            conn.send(("abort", epoch, chunk_id, str(exc)))
            continue
        except Exception:  # repro: boundary
            # Ship the traceback with the items so the parent can both
            # recompute the chunk and report the worker-side context.
            conn.send(("error", epoch, chunk_id, traceback.format_exc(),
                       items))
            continue
        if follower_sets is None:
            conn.send(("stopped", epoch, chunk_id))
        else:
            conn.send(("result", epoch, chunk_id, follower_sets))


def _evaluate_chunk(graph: BipartiteGraph, state: Dict[str, object],
                    items: Sequence[Candidate], stop_event: object,
                    kernel: Optional[FollowerKernel] = None,
                    ) -> Optional[List[Set[int]]]:
    """Follower sets for one chunk; ``None`` when deadline/stop fired.

    The flat-array ``kernel`` (stamped by this epoch's state message) and
    ``compute_followers`` return set-identical values, so which path runs
    is invisible to the parent's reduction.
    """
    fault_site("parallel.chunk")
    orders = state["orders"]
    core = state["core"]
    deadline = state["deadline"]
    alpha = state["alpha"]
    beta = state["beta"]
    is_stopped = stop_event.is_set  # type: ignore[attr-defined]
    now = time.perf_counter
    out: List[Set[int]] = []
    for side, x in items:
        # The stop flag is the campaign-wide budget guard; the deadline
        # check mirrors the serial scan (perf_counter is CLOCK_MONOTONIC,
        # comparable across processes on the supported platforms).
        if is_stopped():
            return None
        if deadline is not None and now() > deadline:
            return None
        if kernel is not None:
            out.append(kernel.followers(side, x, alpha, beta))  # type: ignore[arg-type]
        else:
            out.append(compute_followers(graph, orders[side], x, core=core))  # type: ignore[index]
    return out
