"""k-bitruss: the edge-level cohesive model from the paper's related work.

The k-bitruss (Zou DASFAA'16; Wang et al. ICDE'20) is the maximal subgraph
in which every *edge* participates in at least ``k`` butterflies.  Like the
(α,β)-core it is computed by peeling, but over edges with butterfly support
instead of vertices with degree.  It is stricter than the core model: edges,
not endpoints, must be embedded in cohesive structure.

The implementation favors clarity over asymptotics (support updates
re-enumerate the butterflies of each removed edge), which is the right
trade-off for a reference model used in tests, examples and comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.bigraph.graph import BipartiteGraph
from repro.cohesion.butterflies import edge_support
from repro.exceptions import InvalidParameterError

__all__ = ["k_bitruss", "bitruss_number"]

Edge = Tuple[int, int]


def k_bitruss(graph: BipartiteGraph, k: int) -> Set[Edge]:
    """Edge set of the k-bitruss (edges as ``(upper_id, lower_global_id)``).

    ``k = 0`` returns every edge.  Peels edges whose live butterfly support
    drops below ``k``; on removal of (u, v), every butterfly (u, w | v, x)
    still alive loses one, decrementing its other three edges.
    """
    if k < 0:
        raise InvalidParameterError("k must be >= 0, got %d" % k)
    adjacency: Dict[int, Set[int]] = {
        v: set(graph.neighbors(v)) for v in graph.vertices()}
    support = edge_support(graph)
    if k == 0:
        return set(support)

    queue: List[Edge] = [e for e, s in support.items() if s < k]
    removed: Set[Edge] = set(queue)
    head = 0
    while head < len(queue):
        u, v = queue[head]
        head += 1
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        # butterflies through (u, v): w ∈ N(v), x ∈ N(u) with (w, x) an edge
        for w in adjacency[v]:
            if w == u:
                continue
            for x in adjacency[u]:
                if x == v or x not in adjacency[w]:
                    continue
                for other in ((w, v), (u, x), (w, x)):
                    edge = other if other in support else (other[1], other[0])
                    if edge in removed:
                        continue
                    support[edge] -= 1
                    if support[edge] < k:
                        removed.add(edge)
                        queue.append(edge)
    return {e for e in support if e not in removed}


def bitruss_number(graph: BipartiteGraph) -> Dict[Edge, int]:
    """The bitruss number of each edge: max k with the edge in a k-bitruss.

    Computed by increasing k and recording when each edge peels out; simple,
    quadratic in the peel levels, adequate for analysis-sized graphs.
    """
    numbers: Dict[Edge, int] = {}
    survivors = k_bitruss(graph, 0)
    k = 0
    while survivors:
        k += 1
        nxt = k_bitruss(graph, k)
        for edge in survivors - nxt:
            numbers[edge] = k - 1
        survivors = nxt
    return numbers
