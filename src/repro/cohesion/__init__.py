"""Bipartite cohesive-subgraph models from the paper's related work.

The (α,β)-core is one of a family of bipartite cohesion models; this package
implements the butterfly-based members (butterfly counting and the
k-bitruss) so the reinforcement results can be contrasted with stricter
cohesion notions.
"""

from repro.cohesion.biclique import Biclique, maximal_bicliques, maximum_biclique
from repro.cohesion.bitruss import bitruss_number, k_bitruss
from repro.cohesion.butterflies import (
    butterflies_per_vertex,
    count_butterflies,
    edge_support,
)

__all__ = [
    "Biclique",
    "bitruss_number",
    "butterflies_per_vertex",
    "count_butterflies",
    "edge_support",
    "k_bitruss",
    "maximal_bicliques",
    "maximum_biclique",
]
