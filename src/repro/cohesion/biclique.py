"""Maximal biclique enumeration (MBEA) — related work [40]'s model.

A biclique is a complete bipartite subgraph; maximal bicliques are the
strongest cohesion notion the paper's related work surveys (Lyu et al.,
PVLDB'20 search them at billion scale).  This module implements the classic
MBEA branch-and-bound (Zhang et al., BMC Bioinformatics 2014): grow a lower
vertex set, keep the uppers adjacent to all of it, close the lower side, and
prune branches whose closure was already reported (via the excluded set).

Exponentially many maximal bicliques can exist; callers bound the output
with ``limit`` and the per-side minimum sizes (as the billion-scale search
does with its size thresholds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = ["Biclique", "maximal_bicliques", "maximum_biclique"]


@dataclass(frozen=True)
class Biclique:
    """One maximal biclique, as frozen vertex sets of each layer."""

    uppers: FrozenSet[int]
    lowers: FrozenSet[int]

    @property
    def n_edges(self) -> int:
        return len(self.uppers) * len(self.lowers)


def maximal_bicliques(
    graph: BipartiteGraph,
    min_upper: int = 1,
    min_lower: int = 1,
    limit: Optional[int] = 10_000,
) -> List[Biclique]:
    """Enumerate maximal bicliques with at least the given side sizes.

    Raises :class:`InvalidParameterError` when the enumeration exceeds
    ``limit`` results (pass ``limit=None`` to disable, at your own risk).
    """
    if min_upper < 1 or min_lower < 1:
        raise InvalidParameterError("minimum side sizes must be >= 1")
    results: List[Biclique] = []
    lowers = [v for v in graph.lower_vertices() if graph.degree(v) > 0]
    uppers = {u for u in graph.upper_vertices() if graph.degree(u) > 0}
    if not lowers or not uppers:
        return results

    neighbor_cache = {v: set(graph.neighbors(v)) for v in graph.vertices()}

    def expand(current_uppers: Set[int], candidates: List[int],
               excluded: List[int]) -> None:
        for i, v in enumerate(candidates):
            new_uppers = current_uppers & neighbor_cache[v]
            if not new_uppers:
                continue
            # maximality w.r.t. already-processed lowers
            if any(new_uppers <= neighbor_cache[q] for q in excluded):
                continue
            # close the lower side: every lower adjacent to all new_uppers
            closure = {w for w in neighbor_cache[next(iter(new_uppers))]
                       if new_uppers <= neighbor_cache[w]}
            if len(new_uppers) >= min_upper and len(closure) >= min_lower:
                results.append(Biclique(frozenset(new_uppers),
                                        frozenset(closure)))
                if limit is not None and len(results) > limit:
                    raise InvalidParameterError(
                        "more than %d maximal bicliques; raise the size "
                        "thresholds or the limit" % limit)
            remaining = [p for p in candidates[i + 1:]
                         if p not in closure and new_uppers & neighbor_cache[p]]
            if remaining:
                expand(new_uppers, remaining,
                       excluded + [q for q in candidates[:i]
                                   if q not in closure])
        return

    expand(set(uppers), lowers, [])
    # Deduplicate: different branches can reach the same closed pair.
    unique = {}
    for b in results:
        unique[(b.uppers, b.lowers)] = b
    return sorted(unique.values(),
                  key=lambda b: (-b.n_edges, sorted(b.uppers),
                                 sorted(b.lowers)))


def maximum_biclique(
    graph: BipartiteGraph,
    min_upper: int = 1,
    min_lower: int = 1,
    limit: Optional[int] = 10_000,
) -> Optional[Biclique]:
    """The edge-maximum biclique among the maximal ones (None when empty)."""
    found = maximal_bicliques(graph, min_upper, min_lower, limit)
    return found[0] if found else None
