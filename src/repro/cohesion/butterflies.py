"""Butterfly counting — the bipartite analogue of triangle counting.

A *butterfly* is a complete 2×2 biclique (two upper and two lower vertices,
all four edges present).  It is the smallest non-trivial cohesion motif on
bipartite graphs and underlies the k-bitruss model the paper's related work
surveys (Wang et al. ICDE'20, Zou DASFAA'16, Sarıyüce & Pinar WSDM'18).

Counting uses the classic wedge-processing scheme: iterate vertices on the
layer with the smaller wedge volume; for each start vertex count, via its
two-hop walks, how many common neighbors it shares with every same-layer
vertex; each pair with ``c`` common neighbors closes ``C(c,2)`` butterflies.
Complexity ``O(Σ_v deg(v)²)`` on the chosen side.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bigraph.graph import BipartiteGraph

__all__ = ["count_butterflies", "butterflies_per_vertex", "edge_support"]


def _wedge_side(graph: BipartiteGraph) -> bool:
    """True when starting from the upper layer is cheaper."""
    upper_volume = sum(graph.degree(v) ** 2 for v in graph.upper_vertices())
    lower_volume = sum(graph.degree(v) ** 2 for v in graph.lower_vertices())
    return upper_volume <= lower_volume


def count_butterflies(graph: BipartiteGraph) -> int:
    """Total number of butterflies in the graph."""
    start_upper = _wedge_side(graph)
    vertices = graph.upper_vertices() if start_upper else graph.lower_vertices()
    total = 0
    for u in vertices:
        common: Dict[int, int] = {}
        for v in graph.neighbors(u):
            for w in graph.neighbors(v):
                if w > u:  # count each same-layer pair once
                    common[w] = common.get(w, 0) + 1
        for c in common.values():
            total += c * (c - 1) // 2
    return total


def butterflies_per_vertex(graph: BipartiteGraph) -> Dict[int, int]:
    """Number of butterflies each vertex participates in.

    A butterfly on (u, w | v, x) counts once for each of its four vertices;
    consistency: the per-vertex counts sum to ``4 ×`` the total.
    """
    counts: Dict[int, int] = {v: 0 for v in graph.vertices()}
    # A butterfly's two upper vertices are credited by the upper-pair pass
    # and its two lower vertices by the lower-pair pass, so each vertex is
    # counted exactly once and the grand total sums to 4x the butterflies.
    for vertices in (graph.upper_vertices(), graph.lower_vertices()):
        for u in vertices:
            common: Dict[int, int] = {}
            for v in graph.neighbors(u):
                for w in graph.neighbors(v):
                    if w > u:
                        common[w] = common.get(w, 0) + 1
            for w, c in common.items():
                pairs = c * (c - 1) // 2
                counts[u] += pairs
                counts[w] += pairs
    return counts


def edge_support(graph: BipartiteGraph) -> Dict[Tuple[int, int], int]:
    """Butterflies containing each edge (the k-bitruss peel quantity).

    For edge (u, v): every ``w ∈ N(v) \\ {u}`` with ``c = |N(u) ∩ N(w)|``
    common neighbors contributes ``c - 1`` butterflies through (u, v)
    (choosing any common neighbor other than v itself as the fourth vertex).
    """
    support: Dict[Tuple[int, int], int] = {e: 0 for e in graph.edges()}
    for u in graph.upper_vertices():
        # common[w] = |N(u) ∩ N(w)| for same-layer w
        common: Dict[int, int] = {}
        for v in graph.neighbors(u):
            for w in graph.neighbors(v):
                if w != u:
                    common[w] = common.get(w, 0) + 1
        for v in graph.neighbors(u):
            count = 0
            for w in graph.neighbors(v):
                if w != u:
                    count += common[w] - 1
            support[(u, v)] = count
    return support
