"""Erdős–Rényi bipartite generation (the GTgraph-ER substitute).

The paper's billion-scale ``Synthetic`` dataset is produced by GTgraph under
the Erdős–Rényi model; :func:`erdos_renyi_bipartite` reproduces that model at
configurable scale, sampling exactly ``n_edges`` distinct edges uniformly
from ``U × L`` (or each edge independently with probability ``p``).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple, Union

from repro.bigraph.builder import from_edge_list
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError
from repro.utils.rng import make_rng

__all__ = ["erdos_renyi_bipartite"]


def erdos_renyi_bipartite(
    n_upper: int,
    n_lower: int,
    n_edges: Optional[int] = None,
    p: Optional[float] = None,
    seed: Optional[Union[int, random.Random]] = None,
) -> BipartiteGraph:
    """Uniform random bipartite graph ``G(n_upper, n_lower, m)`` or ``G(n, p)``.

    Exactly one of ``n_edges`` (the G(n, m) model, what GTgraph's ER mode
    uses) and ``p`` (the G(n, p) model) must be given.
    """
    if (n_edges is None) == (p is None):
        raise InvalidParameterError("give exactly one of n_edges or p")
    rng = make_rng(seed)
    possible = n_upper * n_lower
    if n_edges is None:
        if not (0.0 <= p <= 1.0):
            raise InvalidParameterError("p must be in [0, 1], got %r" % (p,))
        n_edges = sum(1 for _ in range(possible) if rng.random() < p) \
            if possible < 1 << 20 else int(possible * p)
    if n_edges > possible:
        raise InvalidParameterError(
            "cannot place %d edges in a %dx%d biclique" % (n_edges, n_upper, n_lower))

    edges: List[Tuple[int, int]]
    if n_edges * 3 >= possible:
        # Dense regime: sample positions without replacement.
        chosen = rng.sample(range(possible), n_edges)
        edges = [(idx // n_lower, idx % n_lower) for idx in chosen]
    else:
        # Sparse regime: rejection sampling.
        seen = set()
        while len(seen) < n_edges:
            seen.add((rng.randrange(n_upper), rng.randrange(n_lower)))
        edges = sorted(seen)
    return from_edge_list(edges, n_upper=n_upper, n_lower=n_lower)
