"""Power-law (scale-free) bipartite graphs via degree sequences.

Real user-item networks — every KONECT dataset in the paper's Table II — have
heavily skewed degree distributions.  The surrogates draw per-layer degree
sequences from a discrete power law (zeta) distribution, rescale them to hit
a target edge count, and wire them with the configuration model.  The
resulting graphs show the same qualitative core structure (a small dense
(δ,δ)-core with large sparse shells) that the FILVER optimizations exploit.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError
from repro.generators.configuration import (
    balance_degree_sequences,
    configuration_model,
)
from repro.utils.rng import make_rng

__all__ = ["powerlaw_degree_sequence", "chung_lu_bipartite"]


def powerlaw_degree_sequence(
    n: int,
    target_stubs: int,
    exponent: float = 2.2,
    d_min: int = 1,
    d_max: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """``n`` degrees with a power-law tail summing to ``target_stubs``.

    Uses rank-based Zipf weights (the Chung–Lu construction): vertex of rank
    ``i`` gets expected degree ``∝ (i+1)^(-1/(exponent-1))``, normalized to
    the stub budget and clipped to ``[d_min, d_max]``.  Crucially this keeps
    a thick population of minimum-degree vertices at *any* average degree —
    the borderline vertices that make up (α,β)-core shells — unlike
    sample-then-rescale schemes that shift the whole distribution upward.
    The returned sequence is randomly shuffled.
    """
    if n <= 0:
        raise InvalidParameterError("n must be positive")
    if exponent <= 1.0:
        raise InvalidParameterError("exponent must be > 1, got %r" % exponent)
    rng = make_rng(rng)
    if d_max is None:
        d_max = max(d_min, target_stubs)
    mu = 1.0 / (exponent - 1.0)

    weights = [(i + 1.0) ** -mu for i in range(n)]
    total = sum(weights)
    scale = target_stubs / total
    degrees = [min(d_max, max(d_min, int(w * scale))) for w in weights]

    # Fix up the rounding/clipping gap: trim hubs when over budget, grow the
    # highest-ranked non-capped vertices when under.
    gap = target_stubs - sum(degrees)
    i = 0
    while gap > 0 and i < n:
        room = d_max - degrees[i]
        take = min(room, gap)
        degrees[i] += take
        gap -= take
        i += 1
    i = 0
    while gap < 0 and i < n:
        room = degrees[i] - d_min
        give = min(room, -gap)
        degrees[i] -= give
        gap += give
        i += 1

    rng.shuffle(degrees)
    return degrees


def chung_lu_bipartite(
    n_upper: int,
    n_lower: int,
    n_edges: int,
    exponent_upper: float = 2.2,
    exponent_lower: float = 2.2,
    d_max: Optional[int] = None,
    seed: Optional[Union[int, random.Random]] = None,
) -> BipartiteGraph:
    """Skewed bipartite graph with ≈ ``n_edges`` edges.

    Both layers draw power-law degree sequences summing to ``n_edges`` stubs,
    which the configuration model then wires.  Parallel stubs collapse when
    the graph is simplified — significant for heavy tails — so the generator
    tops the result back up with uniform random edges until it reaches
    ``n_edges`` (the tail shape is set by the sequences; the top-up edges are
    a thin uniform background, as in real user-item data).
    """
    if n_edges > n_upper * n_lower:
        raise InvalidParameterError(
            "cannot place %d edges in a %dx%d biclique"
            % (n_edges, n_upper, n_lower))
    rng = make_rng(seed)
    stubs = n_edges
    cap = d_max if d_max is not None else max(n_upper, n_lower)
    upper = powerlaw_degree_sequence(n_upper, stubs, exponent_upper,
                                     d_max=min(cap, n_lower), rng=rng)
    lower = powerlaw_degree_sequence(n_lower, stubs, exponent_lower,
                                     d_max=min(cap, n_upper), rng=rng)
    upper, lower = balance_degree_sequences(upper, lower, rng)
    graph = configuration_model(upper, lower, rng)
    if graph.n_edges >= n_edges:
        return graph

    edges = {(u, graph.lower_index(v)) for u, v in graph.edges()}
    missing = n_edges - len(edges)
    attempts = 0
    while missing > 0 and attempts < 50 * n_edges:
        attempts += 1
        pair = (rng.randrange(n_upper), rng.randrange(n_lower))
        if pair not in edges:
            edges.add(pair)
            missing -= 1
    from repro.bigraph.builder import from_edge_list

    return from_edge_list(sorted(edges), n_upper=n_upper, n_lower=n_lower)
