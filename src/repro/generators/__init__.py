"""Synthetic workload generators and the Table-II dataset surrogate registry."""

from repro.generators.configuration import (
    balance_degree_sequences,
    configuration_model,
)
from repro.generators.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_codes,
    load_dataset,
)
from repro.generators.planted import planted_core_graph
from repro.generators.powerlaw import chung_lu_bipartite, powerlaw_degree_sequence
from repro.generators.random_bipartite import erdos_renyi_bipartite

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "balance_degree_sequences",
    "chung_lu_bipartite",
    "configuration_model",
    "dataset_codes",
    "erdos_renyi_bipartite",
    "load_dataset",
    "planted_core_graph",
    "powerlaw_degree_sequence",
]
