"""Bipartite configuration model: wire two degree sequences together.

Used by the power-law generator: once per-layer degree sequences are drawn,
the configuration model pairs their stubs uniformly at random.  Duplicate
pairings are collapsed (the resulting simple graph then has slightly fewer
edges than stubs, as is standard), so callers that need an exact edge count
over-provision slightly.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.bigraph.builder import from_edge_list
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError
from repro.utils.rng import make_rng

__all__ = ["configuration_model", "balance_degree_sequences"]


def balance_degree_sequences(
    upper_degrees: Sequence[int],
    lower_degrees: Sequence[int],
    rng: random.Random,
) -> "tuple[List[int], List[int]]":
    """Adjust both sequences in place-copies so their sums match.

    The surplus side loses one stub at a time from random positive entries;
    this preserves the shape of the distribution far better than truncating
    the tail.
    """
    up = list(upper_degrees)
    low = list(lower_degrees)
    diff = sum(up) - sum(low)
    surplus = up if diff > 0 else low
    for _ in range(abs(diff)):
        while True:
            i = rng.randrange(len(surplus))
            if surplus[i] > 0:
                surplus[i] -= 1
                break
    return up, low


def configuration_model(
    upper_degrees: Sequence[int],
    lower_degrees: Sequence[int],
    seed: Optional[Union[int, random.Random]] = None,
) -> BipartiteGraph:
    """Random bipartite graph with (approximately) the given degree sequences.

    Stub sums must match (use :func:`balance_degree_sequences` first if they
    may not); parallel stub pairings collapse to single edges.
    """
    if sum(upper_degrees) != sum(lower_degrees):
        raise InvalidParameterError(
            "stub counts differ: %d vs %d"
            % (sum(upper_degrees), sum(lower_degrees)))
    rng = make_rng(seed)
    upper_stubs: List[int] = []
    for u, d in enumerate(upper_degrees):
        upper_stubs.extend([u] * d)
    lower_stubs: List[int] = []
    for v, d in enumerate(lower_degrees):
        lower_stubs.extend([v] * d)
    rng.shuffle(lower_stubs)
    edges = set(zip(upper_stubs, lower_stubs))
    return from_edge_list(sorted(edges),
                          n_upper=len(upper_degrees),
                          n_lower=len(lower_degrees))
