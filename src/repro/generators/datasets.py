"""Surrogate registry for the paper's 17 datasets (Table II).

The original experiments use 15 KONECT datasets, the Taobao user-behaviour
dataset and a 1.9-billion-edge GTgraph synthetic — none of which can be
downloaded here (offline environment), and the largest of which are far
beyond what pure Python peels in reasonable time.  Per the substitution rule
in DESIGN.md §5, each dataset gets a *scaled-down synthetic surrogate* that
preserves what the algorithms are sensitive to:

* the upper:lower vertex ratio and the average degrees of both layers;
* a heavy-tailed (power-law) degree distribution for the real datasets and a
  uniform (Erdős–Rényi) one for the synthetic SN dataset;
* monotone ordering of surrogate sizes matching the ordering of the original
  sizes, so cross-dataset runtime comparisons (Fig. 8) keep their shape.

``load_dataset("WC")`` returns the surrogate at its default size;
``scale`` multiplies the default edge count for quick tests (``scale=0.1``)
or more faithful runs (``scale=10``).  If the real KONECT file is available
on disk, pass it to :func:`repro.bigraph.read_edge_list` instead — every
algorithm works on either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import DatasetError
from repro.generators.powerlaw import chung_lu_bipartite
from repro.generators.random_bipartite import erdos_renyi_bipartite
from repro.utils.rng import derive_seed

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_codes"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one paper dataset and its surrogate parameters.

    ``paper_*`` fields are copied from Table II (K = 10³, M = 10⁶);
    ``surrogate_edges`` is the default size of the synthetic stand-in and
    ``exponent`` tunes its degree-distribution tail (lower = heavier, used
    for the datasets whose reported ``d_max``/δ are extreme).
    """

    code: str
    name: str
    paper_edges: int
    paper_upper: int
    paper_lower: int
    paper_dmax: int
    paper_delta: int
    surrogate_edges: int
    exponent: float = 2.2
    model: str = "powerlaw"  # or "er"
    density_factor: float = 1.0

    def surrogate_shape(self, scale: float) -> Tuple[int, int, int]:
        """(n_upper, n_lower, n_edges) of the surrogate at ``scale``.

        Vertex counts shrink proportionally to the edge count, preserving
        the layer ratio and average degrees.  ``density_factor`` scales the
        vertex counts on top of that: > 1 grows them (lowering the average
        degree, for originals so dense that a faithful small surrogate would
        saturate the biclique), < 1 shrinks them (for originals so sparse
        that a faithful surrogate would have an empty core).
        """
        edges = max(16, int(self.surrogate_edges * scale))
        ratio = edges / self.paper_edges * self.density_factor
        n_upper = max(4, int(self.paper_upper * ratio))
        n_lower = max(4, int(self.paper_lower * ratio))
        edges = min(edges, n_upper * n_lower)
        return n_upper, n_lower, edges


_K = 1_000
_M = 1_000_000

#: Table II, in the paper's order.  Surrogate sizes grow with original sizes.
DATASETS: Dict[str, DatasetSpec] = {spec.code: spec for spec in [
    DatasetSpec("UL", "Unicode", 1260, 870, 250, 141, 4, 1260, 2.0),
    DatasetSpec("AC", "Cond-mat", 58_600, 38_740, 16_730, 116, 8, 4000, 2.2),
    DatasetSpec("WR", "Writers", 144_340, 135_570, 89_360, 246, 6, 5000, 2.2),
    DatasetSpec("PR", "Producers", 207_270, 187_680, 48_830, 512, 6, 6000, 2.1),
    DatasetSpec("ST", "Movies", 281_400, 157_180, 76_100, 321, 7, 7000, 2.2),
    DatasetSpec("BX", "BookCrossing", 1_150_000, 445_800, 105_300, 13_601, 41, 9000, 1.9),
    DatasetSpec("SO", "Stack-Overflow", 1_300_000, 545_200, 96_700, 6_119, 22, 10000, 2.0),
    DatasetSpec("TB", "Taobao", 1_020_000, 5_160_000, 2_015_000, 1_393, 10,
                9500, 2.3, density_factor=0.05),
    DatasetSpec("WC", "Wiki-en", 3_800_000, 2_040_000, 1_850_000, 11_593, 18, 12000, 2.1),
    DatasetSpec("AZ", "Amazon", 5_740_000, 2_150_000, 1_230_000, 12_180, 26, 13000, 2.0),
    DatasetSpec("DB", "DBLP", 8_650_000, 1_430_000, 4_000_000, 951, 10, 14000, 2.3),
    DatasetSpec("ER", "Epinions", 13_670_000, 876_300, 120_500, 162_169, 152, 16000, 1.8),
    DatasetSpec("DE", "Wiki-de", 57_320_000, 3_620_000, 425_800, 278_998, 156, 20000, 1.8),
    DatasetSpec("DUI", "Delicious", 101_800_000, 34_610_000, 833_100, 29_240, 184, 24000, 1.9),
    DatasetSpec("LG", "LiveJournal", 112_310_000, 3_200_000, 7_490_000, 1_053_676, 109, 26000, 1.8),
    DatasetSpec("OG", "Orkut", 327_040_000, 11_510_000, 2_780_000, 318_240, 467, 32000, 1.9),
    DatasetSpec("SN", "Synthetic", 1_919_930_000, 5_000_000, 5_000_000, 36_360,
                359, 40000, 0.0, "er", density_factor=48.0),
]}


def dataset_codes() -> Tuple[str, ...]:
    """All dataset codes in Table-II order."""
    return tuple(DATASETS)


def load_dataset(code: str, scale: float = 1.0,
                 seed: int = 2022) -> BipartiteGraph:
    """Generate the surrogate for dataset ``code`` at the given ``scale``.

    Deterministic for a (code, scale, seed) triple.  Raises
    :class:`DatasetError` for unknown codes.
    """
    spec = DATASETS.get(code.upper())
    if spec is None:
        raise DatasetError(
            "unknown dataset %r; known codes: %s"
            % (code, ", ".join(DATASETS)))
    n_upper, n_lower, n_edges = spec.surrogate_shape(scale)
    child_seed = derive_seed(seed, spec.code, scale)
    if spec.model == "er":
        return erdos_renyi_bipartite(n_upper, n_lower, n_edges=n_edges,
                                     seed=child_seed)
    return chung_lu_bipartite(n_upper, n_lower, n_edges,
                              exponent_upper=spec.exponent,
                              exponent_lower=spec.exponent,
                              seed=child_seed)
