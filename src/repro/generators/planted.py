"""Planted-core instances: a known (α,β)-core plus collapsing support chains.

Random surrogates at very small scale often have *no* (α,β)-core at all,
which makes exact-vs-greedy comparisons degenerate.  This generator plants
the structure the anchored (α,β)-core problem is about:

* a complete ``K_{core_upper, core_lower}`` biclique that is exactly the
  base (α,β)-core;
* *support chains* hanging off the core.  A chain alternates layers; its
  head has one support less than its constraint (only core attachments), and
  every later vertex has ``α-1`` (or ``β-1``) core attachments plus its chain
  predecessor.

Without anchors every chain unravels head-first — the support structure is
acyclic, so nothing in the periphery can sustain itself (this is exactly the
all-or-nothing tree idea from the paper's Theorem-1 gadget).  Anchoring any
chain vertex rescues the rest of its chain (and, via the head's edge to its
successor, usually the head too), so follower sets are non-trivial, nested
along each chain, and of varying sizes across chains: the regime Fig. 7(b)
compares Exact and FILVER in, at sizes where exhaustive search is tractable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.bigraph.builder import from_edge_list
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError
from repro.utils.rng import make_rng

__all__ = ["planted_core_graph"]


def planted_core_graph(
    alpha: int = 4,
    beta: int = 3,
    core_upper: Optional[int] = None,
    core_lower: Optional[int] = None,
    n_chains: int = 8,
    max_chain_length: int = 6,
    seed: Optional[Union[int, random.Random]] = None,
) -> BipartiteGraph:
    """Build a planted-core instance (see module docstring).

    ``core_upper`` defaults to ``β + 1`` and ``core_lower`` to ``α + 1`` —
    the smallest biclique that is an (α,β)-core with one support to spare.
    Chain lengths are drawn uniformly from ``1..max_chain_length``.
    """
    if alpha < 2 or beta < 2:
        raise InvalidParameterError(
            "planted cores need alpha, beta >= 2, got (%d, %d)" % (alpha, beta))
    rng = make_rng(seed)
    cu = core_upper if core_upper is not None else beta + 1
    cl = core_lower if core_lower is not None else alpha + 1
    if cu < beta or cl < alpha:
        raise InvalidParameterError(
            "core %dx%d cannot satisfy (alpha=%d, beta=%d)"
            % (cu, cl, alpha, beta))
    if alpha - 1 > cl or beta - 1 > cu:
        raise InvalidParameterError("core too small for chain attachments")

    edges = set()
    for u in range(cu):
        for v in range(cl):
            edges.add((u, v))

    # Chain degree budget: every chain vertex must sit at *exactly* its
    # threshold when its predecessor is alive and strictly below it when the
    # predecessor is gone — that makes support strictly forward-flowing:
    #
    #   head      threshold-2 core edges (+ successor)  -> threshold-1: dies
    #   interior  threshold-2 core edges (+ pred + succ) -> threshold
    #   tail      threshold-1 core edges (+ pred)        -> threshold
    #
    # Unanchored, the head dies and the loss cascades down the chain; an
    # anchored vertex re-solidifies its entire suffix.
    next_upper = cu
    next_lower = cl
    for _ in range(n_chains):
        length = rng.randint(1, max_chain_length)
        on_upper = rng.random() < 0.5
        prev: Optional[int] = None
        for position in range(length):
            is_tail = position == length - 1
            threshold = alpha if on_upper else beta
            core_edges = threshold - 1 if is_tail and prev is not None \
                else threshold - 2 if not is_tail \
                else threshold - 1  # length-1 chain: lone deficient vertex
            if on_upper:
                vertex = next_upper
                next_upper += 1
                for v in rng.sample(range(cl), core_edges):
                    edges.add((vertex, v))
                if prev is not None:
                    edges.add((vertex, prev))
            else:
                vertex = next_lower
                next_lower += 1
                for u in rng.sample(range(cu), core_edges):
                    edges.add((u, vertex))
                if prev is not None:
                    edges.add((prev, vertex))
            prev = vertex
            on_upper = not on_upper

    return from_edge_list(sorted(edges), n_upper=next_upper,
                          n_lower=next_lower)
