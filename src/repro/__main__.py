"""User-facing CLI: ``python -m repro <command>``.

Commands
--------
``reinforce``
    Run an anchored (α,β)-core reinforcement on an edge-list file or a
    dataset surrogate and print (or JSON-dump) the anchors and followers::

        python -m repro reinforce --dataset BX --b1 2 --b2 2 --method filver++
        python -m repro reinforce --input my_graph.txt --alpha 3 --beta 2 \
            --b1 5 --b2 5 --json plan.json

``stats``
    Print the Table-II statistics of a graph (|E|, |U|, |L|, d_max, δ).

``generate``
    Write a synthetic bipartite graph (er / powerlaw / planted) to an
    edge-list file, for experimentation without any external data.

(The experiment harness reproducing the paper's tables/figures lives under
``python -m repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bigraph import read_edge_list, summarize, write_edge_list
from repro.core.api import METHODS, reinforce
from repro.exceptions import ReproError
from repro.experiments.runner import default_constraints
from repro.generators import (
    chung_lu_bipartite,
    erdos_renyi_bipartite,
    load_dataset,
    planted_core_graph,
)


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--input", help="edge-list file (optionally .gz)")
    group.add_argument("--dataset",
                       help="surrogate dataset code (UL, AC, ..., SN)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="surrogate scale (with --dataset)")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--backend", choices=("list", "csr", "memmap"),
                        default="csr",
                        help="adjacency storage for --input graphs: in-RAM "
                             "lists or CSR, or out-of-core memory-mapped CSR")
    parser.add_argument("--memmap-dir", metavar="DIR", default=None,
                        help="directory for --backend memmap buffers "
                             "(default: a self-cleaning temp dir)")


def _load_graph(args: argparse.Namespace):
    if args.input:
        return read_edge_list(args.input, backend=args.backend,
                              memmap_dir=args.memmap_dir)
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Anchored (α,β)-core reinforcement of bipartite networks")
    sub = parser.add_subparsers(dest="command", required=True)

    r = sub.add_parser("reinforce", help="pick anchors to grow the core")
    _add_graph_source(r)
    r.add_argument("--alpha", type=int, default=None,
                   help="upper-layer degree constraint (default 0.6*delta)")
    r.add_argument("--beta", type=int, default=None,
                   help="lower-layer degree constraint (default 0.4*delta)")
    r.add_argument("--b1", type=int, default=5, help="upper anchor budget")
    r.add_argument("--b2", type=int, default=5, help="lower anchor budget")
    r.add_argument("--method", choices=METHODS, default="filver++")
    r.add_argument("--t", type=int, default=5,
                   help="anchors per iteration (filver++)")
    r.add_argument("--time-limit", type=float, default=None)
    r.add_argument("--workers", type=int, default=1,
                   help="candidate-verification worker processes "
                        "(filver/filver+/filver++ only; results are "
                        "identical to --workers 1)")
    r.add_argument("--shards", type=int, default=None,
                   help="run on the component-sharded substrate with at "
                        "most this many shards (filver/filver+/filver++ "
                        "only; results are identical to unsharded)")
    r.add_argument("--json", metavar="PATH", default=None,
                   help="write the full result as JSON")
    r.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="write a campaign checkpoint after every iteration "
                        "(filver/filver+/filver++ only)")
    r.add_argument("--resume", metavar="PATH", default=None,
                   help="resume a campaign from a checkpoint file; the "
                        "checkpoint must match the graph, constraints and "
                        "budgets")
    r.add_argument("--graceful-sigterm", action="store_true",
                   help="on SIGTERM, finish the current iteration, flush "
                        "the checkpoint, and report the verified "
                        "best-so-far result (interrupted=True) instead of "
                        "dying mid-iteration (filver/filver+/filver++ only)")

    s = sub.add_parser("stats", help="print Table-II style statistics")
    _add_graph_source(s)

    g = sub.add_parser("generate", help="write a synthetic graph")
    g.add_argument("--model", choices=("er", "powerlaw", "planted"),
                   default="powerlaw")
    g.add_argument("--upper", type=int, default=1000)
    g.add_argument("--lower", type=int, default=1000)
    g.add_argument("--edges", type=int, default=5000)
    g.add_argument("--exponent", type=float, default=2.2)
    g.add_argument("--alpha", type=int, default=4,
                   help="planted model: core constraint")
    g.add_argument("--beta", type=int, default=3)
    g.add_argument("--seed", type=int, default=2022)
    g.add_argument("--out", required=True, help="output edge-list path")
    return parser


def _cmd_reinforce(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    alpha, beta = args.alpha, args.beta
    if alpha is None or beta is None:
        auto_alpha, auto_beta = default_constraints(graph)
        alpha = alpha if alpha is not None else auto_alpha
        beta = beta if beta is not None else auto_beta
        print("constraints: alpha=%d beta=%d (derived from delta)"
              % (alpha, beta))
    if args.resume:
        print("resuming campaign from", args.resume)
    if args.checkpoint:
        print("checkpointing each iteration to", args.checkpoint)
    result = reinforce(graph, alpha, beta, args.b1, args.b2,
                       method=args.method, t=args.t,
                       time_limit=args.time_limit,
                       checkpoint=args.checkpoint, resume_from=args.resume,
                       workers=args.workers, shards=args.shards,
                       handle_sigterm=args.graceful_sigterm)
    if result.interrupted:
        print("campaign interrupted; reporting verified best-so-far")
    print(result.summary())
    print("upper anchors:",
          [graph.label_of(a) for a in result.upper_anchors(graph.n_upper)])
    print("lower anchors:",
          [graph.label_of(a) for a in result.lower_anchors(graph.n_upper)])
    followers_upper = sorted(graph.label_of(f) for f in result.followers
                             if graph.is_upper(f))
    followers_lower = sorted(graph.label_of(f) for f in result.followers
                             if graph.is_lower(f))
    print("followers: %d upper %s, %d lower %s"
          % (len(followers_upper), followers_upper[:20],
             len(followers_lower), followers_lower[:20]))
    if args.json:
        from repro.experiments.export import result_to_dict, write_json

        write_json(result_to_dict(result), args.json)
        print("wrote result to", args.json)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = summarize(graph)
    print("|E| = %d, |U| = %d, |L| = %d" % (stats.n_edges, stats.n_upper,
                                            stats.n_lower))
    print("d_max = %d, delta = %d" % (stats.max_degree, stats.delta))
    print("avg degree: upper %.2f, lower %.2f"
          % (stats.avg_upper_degree, stats.avg_lower_degree))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.model == "er":
        graph = erdos_renyi_bipartite(args.upper, args.lower,
                                      n_edges=args.edges, seed=args.seed)
    elif args.model == "powerlaw":
        graph = chung_lu_bipartite(args.upper, args.lower, args.edges,
                                   exponent_upper=args.exponent,
                                   exponent_lower=args.exponent,
                                   seed=args.seed)
    else:
        graph = planted_core_graph(args.alpha, args.beta, seed=args.seed)
    write_edge_list(graph, args.out,
                    header="generated by repro (%s model)" % args.model)
    print("wrote %s to %s" % (graph, args.out))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        if args.command == "reinforce":
            return _cmd_reinforce(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "generate":
            return _cmd_generate(args)
    except ReproError as error:
        print("error:", error, file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
