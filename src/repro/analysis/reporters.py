"""Human and machine (JSON) renderings of an analysis report."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.runner import AnalysisReport

__all__ = ["format_human", "format_json", "report_to_dict"]


def format_human(report: AnalysisReport) -> str:
    """``path:line:col: [rule] message`` lines plus a one-line summary."""
    lines = [v.format() for v in report.violations]
    for path, message in report.errors:
        lines.append("%s: error: %s" % (path, message))
    if report.ok:
        lines.append("repro.analysis: %d file(s) clean (%d rule(s))"
                     % (report.checked_files, len(report.rules)))
    else:
        lines.append("repro.analysis: %d violation(s), %d error(s) in "
                     "%d file(s)" % (len(report.violations),
                                     len(report.errors),
                                     report.checked_files))
    return "\n".join(lines)


def report_to_dict(report: AnalysisReport) -> Dict[str, Any]:
    """The JSON-serializable structure behind :func:`format_json`."""
    return {
        "checked_files": report.checked_files,
        "rules": list(report.rules),
        "violations": [v.to_dict() for v in report.violations],
        "errors": [{"path": p, "message": m} for p, m in report.errors],
        "ok": report.ok,
    }


def format_json(report: AnalysisReport) -> str:
    """Stable, indented JSON for tooling and CI artifacts."""
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)
