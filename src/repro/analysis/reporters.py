"""Human, machine (JSON), and SARIF renderings of an analysis report."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.registry import all_rules
from repro.analysis.runner import AnalysisReport

__all__ = ["format_human", "format_json", "format_sarif",
           "report_to_dict", "report_to_sarif"]

#: Version stamped into SARIF output; tracks the analysis engine, not the
#: repo release.
_TOOL_VERSION = "2.0"
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def format_human(report: AnalysisReport) -> str:
    """``path:line:col: [rule] message`` lines plus a one-line summary."""
    lines = [v.format() for v in report.violations]
    for path, message in report.errors:
        lines.append("%s: error: %s" % (path, message))
    for w in report.warnings:
        lines.append("%s (warning)" % w.format())
    if report.ok:
        summary = ("repro.analysis: %d file(s) clean (%d rule(s))"
                   % (report.checked_files, len(report.rules)))
        if report.warnings:
            summary += ", %d warning(s)" % len(report.warnings)
        lines.append(summary)
    else:
        lines.append("repro.analysis: %d violation(s), %d error(s), "
                     "%d warning(s) in %d file(s)"
                     % (len(report.violations), len(report.errors),
                        len(report.warnings), report.checked_files))
    return "\n".join(lines)


def report_to_dict(report: AnalysisReport) -> Dict[str, Any]:
    """The JSON-serializable structure behind :func:`format_json`."""
    return {
        "checked_files": report.checked_files,
        "rules": list(report.rules),
        "violations": [v.to_dict() for v in report.violations],
        "errors": [{"path": p, "message": m} for p, m in report.errors],
        "warnings": [w.to_dict() for w in report.warnings],
        "ok": report.ok,
    }


def format_json(report: AnalysisReport) -> str:
    """Stable, indented JSON for tooling and CI artifacts."""
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


def report_to_sarif(report: AnalysisReport) -> Dict[str, Any]:
    """The report as a SARIF 2.1.0 log (one run, one tool).

    Violations map to ``level: error`` results, stale-pragma warnings to
    ``level: warning``, unanalyzable files to tool execution
    notifications.  Paths are emitted as written (repo-relative when the
    CLI was invoked from the repo root), which is what GitHub's
    ``upload-sarif`` action expects for inline annotations.
    """
    descriptors: List[Dict[str, Any]] = [
        {"id": rule.name,
         "shortDescription": {"text": rule.description}}
        for rule in all_rules()
    ]
    descriptors.append({
        "id": "stale-pragma",
        "shortDescription": {
            "text": "suppression/boundary/hot-loop pragma that no longer "
                    "does anything"}})

    def result(v: Any, level: str) -> Dict[str, Any]:
        return {
            "ruleId": v.rule,
            "level": level,
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": str(v.path).replace(
                        "\\", "/")},
                    "region": {"startLine": int(v.line),
                               "startColumn": int(v.col) + 1},
                },
            }],
        }

    results = [result(v, "error") for v in report.violations]
    results += [result(w, "warning") for w in report.warnings]
    notifications = [
        {"level": "error",
         "message": {"text": "%s: %s" % (path, message)}}
        for path, message in report.errors
    ]
    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "repro.analysis",
                "version": _TOOL_VERSION,
                "informationUri":
                    "https://example.invalid/repro/docs/ANALYSIS.md",
                "rules": descriptors,
            },
        },
        "results": results,
        "columnKind": "utf16CodeUnits",
    }
    if notifications:
        run["invocations"] = [{
            "executionSuccessful": False,
            "toolExecutionNotifications": notifications,
        }]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [run],
    }


def format_sarif(report: AnalysisReport) -> str:
    """Stable, indented SARIF JSON for ``--sarif`` and CI upload."""
    return json.dumps(report_to_sarif(report), indent=2, sort_keys=True)
