"""Command line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 violations (or unanalyzable files), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.registry import all_rules, get_rule, rule_names
from repro.analysis.reporters import format_human, format_json, format_sarif
from repro.analysis.runner import run_analysis

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro.analysis`` CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis: layer-safety, "
                    "encapsulation, determinism, hot-path hygiene, and "
                    "export consistency.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to analyze (e.g. src/)")
    parser.add_argument("--rules", metavar="NAME[,NAME...]",
                        help="comma-separated subset of rules to run")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of text")
    parser.add_argument("--sarif", action="store_true",
                        help="emit a SARIF 2.1.0 report (for CI upload / "
                             "inline annotations)")
    parser.add_argument("--strict-pragmas", action="store_true",
                        help="treat stale suppression/boundary/hot-loop "
                             "pragmas as violations")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print("%-14s %s" % (rule.name, rule.description))
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: python -m repro.analysis src/)",
              file=sys.stderr)
        return 2

    rules = None
    if args.rules:
        wanted: List[str] = [n.strip() for n in args.rules.split(",")
                             if n.strip()]
        unknown = [n for n in wanted if n not in rule_names()]
        if unknown:
            print("error: unknown rule(s): %s (known: %s)"
                  % (", ".join(unknown), ", ".join(rule_names())),
                  file=sys.stderr)
            return 2
        rules = [get_rule(n) for n in dict.fromkeys(wanted)]

    if args.json and args.sarif:
        print("error: --json and --sarif are mutually exclusive",
              file=sys.stderr)
        return 2

    report = run_analysis(args.paths, rules,
                          strict_pragmas=args.strict_pragmas)
    if args.sarif:
        print(format_sarif(report))
    elif args.json:
        print(format_json(report))
    else:
        print(format_human(report))
    return 0 if report.ok else 1
