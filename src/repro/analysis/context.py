"""Per-module analysis context: source, AST, pragmas, and suppressions.

Every rule receives a :class:`ModuleContext` — one parsed module together
with the comment-level metadata rules care about:

* ``# repro: ignore[rule-a,rule-b]`` on a line suppresses those rules for
  that line (``# repro: ignore`` with no bracket suppresses every rule);
* ``# hot-loop`` on a ``for``/``while`` header line (or the line directly
  above it) marks the loop as performance-critical, activating the
  hot-path hygiene rule and relaxing the layer-safety rule for hoisted
  boundary locals inside it;
* ``# repro: boundary`` on an ``except`` header line (or the line directly
  above it) marks a sanctioned exception boundary — a deliberate
  catch-everything isolation point (experiment-suite section guards,
  crash-safe writers) that the exception-boundaries rule must not flag.

Comments are recovered with :mod:`tokenize`, so pragma-looking text inside
string literals is never misread as a pragma.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = ["ModuleContext", "module_name_for_path"]

# Anchored at the start of the comment token: a pragma is the comment,
# not a phrase inside one — prose like "see the # hot-loop pragma" (or
# this very comment) must not register.
_IGNORE_RE = re.compile(r"^#\s*repro:\s*ignore(?:\[([^\]]*)\])?")
_HOT_LOOP_RE = re.compile(r"^#\s*hot-loop\b")
_BOUNDARY_RE = re.compile(r"^#\s*repro:\s*boundary\b")

#: Sentinel stored in the suppression map when every rule is ignored.
_ALL_RULES: FrozenSet[str] = frozenset({"*"})


def module_name_for_path(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Rules scope themselves by package (``repro.bigraph`` is allowed to touch
    graph internals, ``repro.abcore``/``repro.core`` must be deterministic,
    ...), so the runner derives the dotted name from the last ``repro``
    component of the path.  Files outside any ``repro`` tree fall back to
    their bare stem.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            dotted = [p for p in parts[i:] if p != "__init__"]
            return ".".join(dotted)
    return path.stem


@dataclass
class ModuleContext:
    """One module, parsed and annotated, ready to be checked by rules."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    #: line number -> rule names suppressed on that line ({"*"} == all).
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: line numbers carrying a ``# hot-loop`` pragma.
    hot_loop_pragma_lines: Set[int] = field(default_factory=set)
    #: line numbers carrying a ``# repro: boundary`` pragma.
    boundary_pragma_lines: Set[int] = field(default_factory=set)
    #: (first_body_line, end_line) spans of loops marked ``# hot-loop``.
    hot_loop_spans: List[Tuple[int, int]] = field(default_factory=list)
    #: ``# hot-loop`` pragma lines that matched an actual loop header.
    matched_hot_loop_pragma_lines: Set[int] = field(default_factory=set)
    #: boundary-pragma lines attached to an ``except`` handler header.
    matched_boundary_pragma_lines: Set[int] = field(default_factory=set)
    #: ``(line, rule)`` pairs where an ignore pragma suppressed a finding.
    used_suppressions: Set[Tuple[int, str]] = field(default_factory=set)

    @classmethod
    def from_source(
        cls,
        source: str,
        path: Path,
        module: Optional[str] = None,
    ) -> "ModuleContext":
        """Parse ``source`` and collect pragma/suppression metadata.

        Raises :class:`SyntaxError` when the module does not parse; the
        runner converts that into a reported error rather than crashing.
        """
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            module=module if module is not None else module_name_for_path(path),
            source=source,
            tree=tree,
        )
        ctx._scan_comments()
        ctx._collect_hot_loops()
        ctx._match_boundary_pragmas()
        return ctx

    @classmethod
    def from_file(cls, path: Path, module: Optional[str] = None) -> "ModuleContext":
        """Read and parse ``path`` (UTF-8, the repo-wide encoding)."""
        return cls.from_source(path.read_text(encoding="utf-8"), path, module)

    # ------------------------------------------------------------------
    # Pragma scanning
    # ------------------------------------------------------------------

    def _scan_comments(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except tokenize.TokenError:  # unterminated string etc.; ast parsed, so rare
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line = tok.start[0]
            m = _IGNORE_RE.match(tok.string)
            if m:
                names = m.group(1)
                if names is None:
                    self.suppressions[line] = _ALL_RULES
                else:
                    rules = frozenset(
                        n.strip() for n in names.split(",") if n.strip())
                    prior = self.suppressions.get(line, frozenset())
                    self.suppressions[line] = prior | rules
            if _HOT_LOOP_RE.match(tok.string):
                self.hot_loop_pragma_lines.add(line)
            if _BOUNDARY_RE.match(tok.string):
                self.boundary_pragma_lines.add(line)

    def _collect_hot_loops(self) -> None:
        pragmas = self.hot_loop_pragma_lines
        if not pragmas:
            return
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            for pragma_line in (node.lineno, node.lineno - 1):
                if pragma_line in pragmas:
                    self.matched_hot_loop_pragma_lines.add(pragma_line)
                    end = getattr(node, "end_lineno", node.lineno)
                    self.hot_loop_spans.append(
                        (node.lineno, end or node.lineno))
                    break

    def _match_boundary_pragmas(self) -> None:
        """Record which boundary pragmas sit on/above an except header."""
        if not self.boundary_pragma_lines:
            return
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for pragma_line in (node.lineno, node.lineno - 1):
                if pragma_line in self.boundary_pragma_lines:
                    self.matched_boundary_pragma_lines.add(pragma_line)

    # ------------------------------------------------------------------
    # Queries used by rules and the runner
    # ------------------------------------------------------------------

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Is ``rule`` suppressed on ``line`` by an ignore pragma?

        A hit is recorded in :attr:`used_suppressions`; the runner's
        stale-pragma pass reports ignore pragmas that never record one.
        """
        names = self.suppressions.get(line)
        if names is None:
            return False
        if names is _ALL_RULES or "*" in names or rule in names:
            self.used_suppressions.add((line, rule))
            return True
        return False

    def in_hot_loop(self, line: int) -> bool:
        """Does ``line`` fall inside a loop marked ``# hot-loop``?"""
        return any(start <= line <= end for start, end in self.hot_loop_spans)

    def has_boundary_pragma(self, line: int) -> bool:
        """Does ``line`` (or the line above) carry ``# repro: boundary``?"""
        return (line in self.boundary_pragma_lines
                or line - 1 in self.boundary_pragma_lines)

    def in_package(self, *packages: str) -> bool:
        """Is this module inside any of the given dotted packages?"""
        for pkg in packages:
            if self.module == pkg or self.module.startswith(pkg + "."):
                return True
        return False
