"""The unit of analysis output: one violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Violation"]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation, ordered by location for stable reports."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: [rule] message`` — the human report line."""
        return "%s:%d:%d: [%s] %s" % (
            self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form used by the machine reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
