"""Small AST helpers shared by the analysis rules."""

from __future__ import annotations

import ast
from typing import List, Tuple

__all__ = ["split_scope", "dotted_name"]


def split_scope(body: List[ast.AST]) -> Tuple[List[ast.AST], List[List[ast.AST]]]:
    """Pre-order nodes of ``body`` plus the bodies of nested scopes.

    Returns ``(nodes, nested_bodies)`` where ``nodes`` contains every AST
    node reachable from the given statements *without* crossing into a
    nested ``def``/``class`` scope, in source order, and ``nested_bodies``
    holds the body statement lists of those nested scopes so callers can
    recurse with a fresh scope.  Decorators, argument defaults, and base
    classes evaluate in the enclosing scope and therefore stay in ``nodes``.
    Lambdas cannot contain assignments, so their bodies are not split out.
    """
    nodes: List[ast.AST] = []
    nested: List[List[ast.AST]] = []
    stack: List[ast.AST] = list(reversed(body))
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.append(list(node.body))
            enclosing: List[ast.AST] = list(node.decorator_list)
            enclosing.extend(node.args.defaults)
            enclosing.extend(d for d in node.args.kw_defaults if d is not None)
            stack.extend(reversed(enclosing))
        elif isinstance(node, ast.ClassDef):
            nested.append(list(node.body))
            enclosing = list(node.decorator_list)
            enclosing.extend(node.bases)
            enclosing.extend(kw.value for kw in node.keywords)
            stack.extend(reversed(enclosing))
        else:
            stack.extend(reversed(list(ast.iter_child_nodes(node))))
    return nodes, nested


def dotted_name(node: ast.AST) -> str:
    """``"a.b.c"`` for a Name/Attribute chain, ``""`` when not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))
