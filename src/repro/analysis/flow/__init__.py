"""Whole-program flow analysis: symbols, call graph, and flow rules.

This package upgrades :mod:`repro.analysis` from per-module lints to
interprocedural checking.  The pieces:

* :mod:`~repro.analysis.flow.symbols` — a project-wide symbol table of
  functions, classes, methods, and import aliases, keyed by qualified
  name (``repro.core.engine.run_engine``);
* :mod:`~repro.analysis.flow.callgraph` — a best-effort static call
  graph resolved against the symbol table;
* :mod:`~repro.analysis.flow.program` — :class:`ProgramContext` (every
  module of a run, bundled) and :class:`FlowRule`, the base class for
  rules with ``scope = "program"``;
* the three rule families: :mod:`~repro.analysis.flow.ordering`
  (``ordering-flow``), :mod:`~repro.analysis.flow.lifecycle`
  (``resource-lifecycle``), and :mod:`~repro.analysis.flow.mutation`
  (``shared-mutation``).

Rule modules are imported (and thereby registered) by
:mod:`repro.analysis.rules`, keeping this package importable without
side effects.
"""

from __future__ import annotations

from repro.analysis.flow.callgraph import CallGraph, CallSite, resolve_call
from repro.analysis.flow.program import FlowRule, ProgramContext
from repro.analysis.flow.symbols import (ClassInfo, FunctionInfo,
                                         SymbolTable)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FlowRule",
    "FunctionInfo",
    "ProgramContext",
    "SymbolTable",
    "resolve_call",
]
