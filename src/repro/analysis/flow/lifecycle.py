"""``resource-lifecycle``: shared resources must be released on all paths.

A leaked ``SharedMemory`` segment outlives the campaign as a file in
``/dev/shm``; a leaked memmap or file handle pins its descriptor for the
life of a long-running service process.  This rule checks, path-sensitively,
that every acquisition of such a resource is tied to a release that also
runs on exception paths.

**Acquisitions** are calls resolving to :data:`RESOURCE_FACTORIES`
(``SharedMemory``, ``open``/``gzip.open``, ``numpy.memmap``,
``tempfile.*``), to the repo's own handle factories
(``export_shared_graph``, ``attach_shared_graph``, ``create_evaluator``),
or — the interprocedural part — to any function in the program whose
return value is an acquired resource (computed to a fixpoint, so a local
``def _open_segment(...)`` wrapper is tracked like ``SharedMemory``
itself).

An acquisition is **accounted for** when one of these holds:

* it is the context expression of a ``with`` block (its ``__exit__``
  releases on every path);
* it is returned or yielded (ownership transfers to the caller, which
  this rule then checks in turn);
* it escapes — passed into a call (``segments.append(shm)``, wrapped in a
  handle class), stored into a container or subscript;
* it is assigned to ``self.<attr>`` of a class that defines a release
  method (``close``/``shutdown``/``release``/``__exit__``…) — looked up
  program-wide through the symbol table;
* it is assigned to a local whose release call
  (``.close()``/``.unlink()``/``.shutdown()``/``.terminate()``/
  ``.release()``/``.join()``) sits inside a ``finally`` block, or the
  enclosing function *is itself* a release method (``close`` and friends
  releasing what ``__init__`` acquired).

A release found only on the fall-through path is flagged as the
distinct — and historically most common — bug: the happy path cleans up,
the exception path leaks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import resolve_call
from repro.analysis.flow.program import FlowRule, ProgramContext
from repro.analysis.flow.symbols import FunctionInfo
from repro.analysis.registry import register
from repro.analysis.violations import Violation

__all__ = ["ResourceLifecycleRule", "RESOURCE_FACTORIES"]

#: Resolved callables that acquire a shared resource needing release.
RESOURCE_FACTORIES = frozenset({
    "multiprocessing.shared_memory.SharedMemory",
    "multiprocessing.shared_memory.SharedMemory.__init__",
    "open",
    "io.open",
    "gzip.open",
    "bz2.open",
    "lzma.open",
    "tempfile.TemporaryFile",
    "tempfile.NamedTemporaryFile",
    "numpy.memmap",
    "multiprocessing.Pool",
    "concurrent.futures.ProcessPoolExecutor",
    "repro.bigraph.shm.export_shared_graph",
    "repro.bigraph.shm.attach_shared_graph",
    "repro.parallel.create_evaluator",
    "repro.parallel.evaluator.create_evaluator",
})

#: Method names that release a resource.
_RELEASERS = frozenset({"close", "unlink", "shutdown", "release",
                        "terminate", "join", "__exit__", "cleanup"})

#: Functions that *are* release/teardown paths: acquisitions they hand to
#: locals are usually re-wraps during cleanup; still checked, but their
#: own name counts as the release context.
_RELEASE_METHOD_NAMES = _RELEASERS | {"__del__", "stop"}


@dataclass
class _Acquisition:
    """One resource-acquiring call site and what became of it."""

    node: ast.Call
    factory: str
    #: Local name it was bound to, when a plain ``name = acquire()``.
    name: Optional[str] = None
    accounted: bool = False
    #: Release calls on ``name``: (in_finally, in_except_handler).
    releases: List[Tuple[bool, bool]] = field(default_factory=list)
    escaped: bool = False


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


class _FunctionLifecycle:
    """Lifecycle accounting for the acquisitions of one function."""

    def __init__(self, info: FunctionInfo, program: ProgramContext,
                 producers: Set[str]) -> None:
        self.info = info
        self.program = program
        self.producers = producers
        self.parents = _parent_map(info.node)
        self.acquisitions: List[_Acquisition] = []
        self.returns_resource = False
        self._collect()

    # -- classification of each acquiring call -------------------------

    def _factory_of(self, node: ast.Call) -> Optional[str]:
        resolved, text = resolve_call(node, self.info,
                                      self.program.symbols)
        qualified = resolved
        if qualified is None and text:
            qualified = self.program.symbols.resolve(self.info.module,
                                                     text) or text
        if qualified is None:
            return None
        for candidate in (qualified, qualified + ".__init__"):
            if candidate in RESOURCE_FACTORIES:
                return qualified
        if qualified.endswith(".__init__") \
                and qualified[:-len(".__init__")] in RESOURCE_FACTORIES:
            return qualified[:-len(".__init__")]
        if qualified in self.producers:
            return qualified
        return None

    def _collect(self) -> None:
        for node in ast.walk(self.info.node):
            if not isinstance(node, ast.Call):
                continue
            factory = self._factory_of(node)
            if factory is None:
                continue
            if self._inside_lambda(node):
                continue  # a factory thunk; its caller owns the handle
            acq = _Acquisition(node=node, factory=factory)
            self._classify(acq)
            self.acquisitions.append(acq)
        self._track_locals()

    def _inside_lambda(self, node: ast.AST) -> bool:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, ast.Lambda):
                return True
            current = self.parents.get(current)
        return False

    def _classify(self, acq: _Acquisition) -> None:
        """Decide what syntactic context the acquiring call sits in."""
        node: ast.AST = acq.node
        parent = self.parents.get(node)
        # Walk up through value-preserving wrappers (``closing(open(p))``
        # counts as the inner call escaping into the outer one).
        if isinstance(parent, ast.withitem):
            acq.accounted = True
            return
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            acq.accounted = True
            self.returns_resource = True
            return
        if isinstance(parent, ast.Call) and node is not parent.func:
            acq.accounted = True  # escapes as an argument
            return
        if isinstance(parent, ast.keyword):
            acq.accounted = True
            return
        if isinstance(parent, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
            acq.accounted = True  # escapes into a container literal
            return
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (parent.targets if isinstance(parent, ast.Assign)
                       else [parent.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    acq.name = target.id
                elif isinstance(target, ast.Attribute):
                    acq.accounted = self._releasing_class(target)
                elif isinstance(target, ast.Subscript):
                    acq.accounted = True  # stored into a container
            return
        # Bare expression statement, conditions, comprehensions: the
        # handle is dropped on the floor.

    def _releasing_class(self, target: ast.Attribute) -> bool:
        """``self.x = acquire()``: does the owning class release?"""
        if not (isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")):
            return False
        owner = self.info.owner_class
        if owner is None:
            return False
        cls_info = self.program.symbols.class_of(owner)
        return cls_info is not None and cls_info.has_method(*_RELEASERS)

    # -- local-name release tracking ------------------------------------

    def _track_locals(self) -> None:
        named = [a for a in self.acquisitions
                 if not a.accounted and a.name is not None]
        if not named:
            return
        by_name: Dict[str, List[_Acquisition]] = {}
        for acq in named:
            by_name.setdefault(acq.name or "", []).append(acq)
        finally_spans, except_spans = self._protected_spans()

        for node in ast.walk(self.info.node):
            if isinstance(node, ast.withitem) and isinstance(
                    node.context_expr, ast.Name):
                for acq in by_name.get(node.context_expr.id, ()):
                    acq.accounted = True  # later managed by a with block
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in _RELEASERS \
                        and isinstance(func.value, ast.Name) \
                        and func.value.id in by_name:
                    line = node.lineno
                    in_finally = any(s <= line <= e
                                     for s, e in finally_spans)
                    in_except = any(s <= line <= e
                                    for s, e in except_spans)
                    for acq in by_name[func.value.id]:
                        acq.releases.append((in_finally, in_except))
                    continue
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in by_name:
                        for acq in by_name[arg.id]:
                            acq.escaped = True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                names: List[str] = []
                if isinstance(value, ast.Name):
                    names = [value.id]
                elif isinstance(value, (ast.Tuple, ast.List)):
                    names = [e.id for e in value.elts
                             if isinstance(e, ast.Name)]
                for name in names:
                    if name in by_name:
                        for acq in by_name[name]:
                            acq.escaped = True
                        self.returns_resource = True
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = getattr(node, "value", None)
                if isinstance(value, ast.Name) and value.id in by_name:
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if isinstance(target, (ast.Attribute,
                                               ast.Subscript)):
                            for acq in by_name[value.id]:
                                acq.escaped = True

    def _protected_spans(self) -> Tuple[List[Tuple[int, int]],
                                        List[Tuple[int, int]]]:
        """Line spans of every ``finally`` body and except-handler body."""
        finally_spans: List[Tuple[int, int]] = []
        except_spans: List[Tuple[int, int]] = []
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Try):
                if node.finalbody:
                    first = node.finalbody[0]
                    last = node.finalbody[-1]
                    finally_spans.append(
                        (first.lineno,
                         getattr(last, "end_lineno", last.lineno)
                         or last.lineno))
                for handler in node.handlers:
                    if handler.body:
                        first = handler.body[0]
                        last = handler.body[-1]
                        except_spans.append(
                            (first.lineno,
                             getattr(last, "end_lineno", last.lineno)
                             or last.lineno))
        return finally_spans, except_spans

    # -- verdicts -------------------------------------------------------

    def findings(self) -> Iterator[Tuple[int, int, str]]:
        release_context = self.info.name in _RELEASE_METHOD_NAMES
        for acq in self.acquisitions:
            if acq.accounted or acq.escaped or release_context:
                continue
            if acq.name is None:
                yield (acq.node.lineno, acq.node.col_offset,
                       "%s acquired but never bound or released; use a "
                       "with block (or bind it and release in a "
                       "try/finally)" % acq.factory)
                continue
            if not acq.releases:
                yield (acq.node.lineno, acq.node.col_offset,
                       "%s bound to '%s' is never released on any path; "
                       "use a with block or close/unlink it in a "
                       "try/finally" % (acq.factory, acq.name))
                continue
            in_finally = any(f for f, _ in acq.releases)
            in_except = any(e for _, e in acq.releases)
            on_happy_path = any(not f and not e for f, e in acq.releases)
            if in_finally or (in_except and on_happy_path):
                continue
            yield (acq.node.lineno, acq.node.col_offset,
                   "%s bound to '%s' is released only on the "
                   "non-exception path; move the release into a finally "
                   "block or use a with block" % (acq.factory, acq.name))


@register
class ResourceLifecycleRule(FlowRule):
    """Path-sensitive release checking for shared resources."""

    name = "resource-lifecycle"
    description = ("SharedMemory/memmap/pool/file acquisitions must be "
                   "released on all paths (with block or try/finally)")

    def check_program(self,
                      program: ProgramContext) -> Iterator[Violation]:
        producers = self._producer_fixpoint(program)
        out: List[Violation] = []
        for info in program.symbols.iter_functions():
            checker = _FunctionLifecycle(info, program, producers)
            for line, col, message in checker.findings():
                out.append(Violation(path=str(info.ctx.path), line=line,
                                     col=col, rule=self.name,
                                     message=message))
        for v in sorted(set(out)):
            yield v

    @staticmethod
    def _producer_fixpoint(program: ProgramContext) -> Set[str]:
        """Functions whose return value is a tracked resource."""
        producers: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for info in program.symbols.iter_functions():
                if info.qualname in producers:
                    continue
                checker = _FunctionLifecycle(info, program, producers)
                if checker.returns_resource:
                    producers.add(info.qualname)
                    changed = True
        return producers
