"""Project-wide symbol table: every function, class, and import alias.

The per-module rules see one :class:`~repro.analysis.context.ModuleContext`
at a time; the whole-program rules need to answer questions like *"which
function does this call resolve to?"* and *"does the class this attribute
is assigned to define a ``close`` method?"* across module boundaries.  The
:class:`SymbolTable` is the shared substrate for those answers:

* every top-level function, every class, and every method gets a
  :class:`FunctionInfo` / :class:`ClassInfo` keyed by its fully-qualified
  dotted name (``repro.core.engine.run_engine``,
  ``repro.bigraph.shm.SharedGraphExport.close``);
* per module, an *alias map* from local names to qualified targets is
  derived from the import statements (``from repro.bigraph.shm import
  attach_shared_graph`` binds ``attach_shared_graph`` →
  ``repro.bigraph.shm.attach_shared_graph``; ``import numpy as np`` binds
  ``np`` → ``numpy``), so expression-level dotted names resolve to program
  symbols without executing any imports.

Resolution is best-effort by design: names bound by assignment, star
imports, or runtime tricks stay unresolved, and rules built on top treat
"unresolved" as "unknown", never as "safe" or "unsafe" on its own.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.astutils import dotted_name
from repro.analysis.context import ModuleContext

__all__ = ["FunctionInfo", "ClassInfo", "SymbolTable"]


@dataclass
class FunctionInfo:
    """One function or method, addressable program-wide."""

    qualname: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    ctx: ModuleContext
    #: Qualified name of the owning class for methods, ``None`` for
    #: module-level functions.
    owner_class: Optional[str] = None

    @property
    def name(self) -> str:
        """The bare (unqualified) function name."""
        return self.qualname.rsplit(".", 1)[-1]

    def arg_names(self) -> List[str]:
        """Positional + keyword argument names, in declaration order."""
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args]
        names.extend(a.arg for a in args.kwonlyargs)
        return names


@dataclass
class ClassInfo:
    """One class definition, with enough structure for lifecycle checks."""

    qualname: str
    module: str
    node: ast.ClassDef
    ctx: ModuleContext
    #: Bare method names defined directly on the class body.
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base-class expressions as dotted source text (unresolved).
    bases: Tuple[str, ...] = ()

    def has_method(self, *names: str) -> bool:
        """Does the class body define any of the given method names?"""
        return any(name in self.methods for name in names)


class SymbolTable:
    """Functions, classes, and import aliases for a set of modules."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module name -> local identifier -> qualified target.
        self.aliases: Dict[str, Dict[str, str]] = {}
        self.modules: Dict[str, ModuleContext] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, contexts: List[ModuleContext]) -> "SymbolTable":
        """Index every context; later duplicates of a module name win."""
        table = cls()
        for ctx in contexts:
            table.add_module(ctx)
        return table

    def add_module(self, ctx: ModuleContext) -> None:
        """Index one module's defs, classes, and import aliases."""
        module = ctx.module
        self.modules[module] = ctx
        aliases = self.aliases.setdefault(module, {})
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".", 1)[0]
                    target = name.name if name.asname else name.name.split(
                        ".", 1)[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = "%s.%s" % (base, name.name)
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = "%s.%s" % (module, stmt.name)
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=module, node=stmt, ctx=ctx)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(ctx, stmt)

    def _add_class(self, ctx: ModuleContext, stmt: ast.ClassDef) -> None:
        qualname = "%s.%s" % (ctx.module, stmt.name)
        info = ClassInfo(
            qualname=qualname, module=ctx.module, node=stmt, ctx=ctx,
            bases=tuple(filter(None, (dotted_name(b) for b in stmt.bases))))
        for member in stmt.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qualname = "%s.%s" % (qualname, member.name)
                fn = FunctionInfo(
                    qualname=method_qualname, module=ctx.module, node=member,
                    ctx=ctx, owner_class=qualname)
                info.methods[member.name] = fn
                self.functions[method_qualname] = fn
        self.classes[qualname] = info

    @staticmethod
    def _import_base(module: str, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base of a ``from ... import`` statement."""
        if node.level == 0:
            return node.module
        # Relative import: resolve against the importing module's package.
        parts = module.split(".")
        # ``from . import x`` inside a package __init__ has the package
        # itself as base; ModuleContext names __init__ modules by their
        # package already, so one level strips nothing there.  For plain
        # modules the last component is the module, stripped by level 1.
        drop = node.level if not SymbolTable._is_package(module) \
            else node.level - 1
        if drop >= len(parts):
            return None
        base_parts = parts[:len(parts) - drop]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    @staticmethod
    def _is_package(module: str) -> bool:
        # ModuleContext.module for ``repro/analysis/__init__.py`` is
        # ``repro.analysis``; we cannot distinguish that from a plain module
        # without the path, so treat "has submodules in this table" as the
        # signal at resolve time instead.  Conservative default: not a
        # package (level-1 relative imports resolve like CPython's).
        return False

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Qualify ``dotted`` (as written in ``module``) program-wide.

        Returns a fully-qualified dotted name — which may or may not be a
        known function/class — or ``None`` when the head identifier is
        neither a local top-level definition nor an import alias.
        """
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        aliases = self.aliases.get(module, {})
        target = aliases.get(head)
        if target is None:
            # A module's own top-level def/class referenced by bare name.
            local = "%s.%s" % (module, head)
            if local in self.functions or local in self.classes:
                target = local
            else:
                return None
        return "%s.%s" % (target, rest) if rest else target

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` for ``qualname``, if indexed."""
        return self.functions.get(qualname)

    def class_of(self, qualname: str) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` for ``qualname``, if indexed."""
        info = self.classes.get(qualname)
        if info is not None:
            return info
        # A ``from m import Cls`` re-export: follow one alias hop.
        module, _, name = qualname.rpartition(".")
        resolved = self.resolve(module, name) if module else None
        if resolved is not None and resolved != qualname:
            return self.classes.get(resolved)
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every indexed function/method, in sorted qualname order."""
        for qualname in sorted(self.functions):
            yield self.functions[qualname]
