"""Best-effort static call graph over the program symbol table.

Edges connect *defined* functions: for every function body the builder
resolves each ``Call`` whose callee is a plain dotted name — a module-level
function (``compute_followers(...)``), an imported symbol
(``shm.attach_shared_graph(...)``), a class constructor, or a
``self.method(...)`` call on the enclosing class — to its
:class:`~repro.analysis.flow.symbols.FunctionInfo`.  Calls through
arbitrary objects (``order.candidates(...)``) are recorded as *unresolved*
attribute calls; interprocedural rules must treat them as unknown.

Calls made inside nested ``def``/``lambda`` bodies are attributed to the
enclosing indexed function: for dataflow purposes a closure is part of its
owner's behavior, and none of the rules need closure-level precision.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutils import dotted_name
from repro.analysis.flow.symbols import FunctionInfo, SymbolTable

__all__ = ["CallSite", "CallGraph", "resolve_call"]


@dataclass
class CallSite:
    """One call expression inside an indexed function."""

    caller: str
    #: Qualified callee when resolution succeeded, else ``None``.
    callee: Optional[str]
    #: The callee as written (``"kernel.followers"``), for diagnostics.
    text: str
    node: ast.Call


@dataclass
class CallGraph:
    """Caller → callee edges plus per-function call sites."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    reverse: Dict[str, Set[str]] = field(default_factory=dict)
    sites: Dict[str, List[CallSite]] = field(default_factory=dict)

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        """Resolve every call site of every indexed function."""
        graph = cls()
        for info in table.iter_functions():
            graph.sites[info.qualname] = list(_function_sites(info, table))
            callees = graph.edges.setdefault(info.qualname, set())
            for site in graph.sites[info.qualname]:
                if site.callee is not None:
                    callees.add(site.callee)
                    graph.reverse.setdefault(site.callee,
                                             set()).add(info.qualname)
        return graph

    def callees(self, qualname: str) -> Set[str]:
        """Functions ``qualname`` calls (resolved edges only)."""
        return self.edges.get(qualname, set())

    def callers(self, qualname: str) -> Set[str]:
        """Functions that call ``qualname`` (resolved edges only)."""
        return self.reverse.get(qualname, set())

    def call_sites(self, qualname: str) -> List[CallSite]:
        """Every call expression inside ``qualname``, resolved or not."""
        return self.sites.get(qualname, [])


def resolve_call(node: ast.Call, info: FunctionInfo,
                 table: SymbolTable) -> Tuple[Optional[str], str]:
    """``(qualified callee or None, callee as written)`` for one call.

    Resolution order: ``self.method`` against the enclosing class, then the
    dotted name against the module's alias map.  A resolved name that turns
    out to be a class yields the class's ``__init__`` when defined, else
    the class qualname itself (constructor edge).
    """
    text = dotted_name(node.func)
    if not text:
        return None, ""
    head, _, rest = text.partition(".")
    if head in ("self", "cls") and rest and info.owner_class is not None:
        owner = table.class_of(info.owner_class)
        method = rest.split(".", 1)[0]
        if owner is not None and method in owner.methods:
            return owner.methods[method].qualname, text
        return None, text
    resolved = table.resolve(info.module, text)
    if resolved is None:
        return None, text
    if resolved in table.functions:
        return resolved, text
    cls_info = table.class_of(resolved)
    if cls_info is not None:
        init = cls_info.methods.get("__init__")
        return (init.qualname if init is not None
                else cls_info.qualname), text
    return resolved, text


def _function_sites(info: FunctionInfo,
                    table: SymbolTable) -> Iterator[CallSite]:
    """Call sites in ``info``'s body, nested defs attributed to it."""
    body = info.node.body  # type: ignore[attr-defined]
    for stmt in body:
        for node in ast.walk(stmt):
            # Skip the bodies of *methods of nested classes*; they are
            # indexed separately only at top level, so keep them here too —
            # over-attribution is harmless for the rules built on this.
            if isinstance(node, ast.Call):
                callee, text = resolve_call(node, info, table)
                yield CallSite(caller=info.qualname, callee=callee,
                               text=text, node=node)
