"""``ordering-flow``: unordered values must not reach ordered output.

The byte-identity contract — serial, parallel, memoized, and resumed
campaigns all export identical canonical JSON — only holds while nothing
hash-ordered or filesystem-ordered leaks into anchor selection,
tie-breaking, or the writers.  The per-module ``determinism`` rule catches
*local* bare-set iteration in the algorithm packages; this rule is the
whole-program generalization, a taint analysis over the project call
graph:

* **Sources** — values of arbitrary order: set displays/comprehensions,
  ``set()``/``frozenset()`` calls, set-algebra results, filesystem
  enumeration (``os.listdir``, ``os.scandir``, ``glob.glob``/``iglob``,
  ``Path.iterdir``/``Path.glob``), and the shared-context table accessors
  of the batch substrate (``base_core()``/``seed_tables()``/
  ``freeze_seed()`` — their (α,β)-invariant tables hold *sets* of
  vertices with no defined order, so a per-campaign loop over them must
  sanitize first).  Calls to *producer* functions — any function in the
  program whose return value is unordered, computed to a fixpoint across
  modules — are sources too; that is what makes the analysis
  interprocedural.
* **Sanitizers** — ``sorted()`` first of all, plus order-insensitive
  aggregations (``len``/``min``/``max``/``sum``/``any``/``all``) and the
  registered canonicalizers in :data:`CANONICALIZERS`, which sort or
  reduce internally (e.g. ``canonical_result_dict`` sorts follower sets
  before serializing).
* **Sinks** — a ``for`` loop over a tainted value inside the
  byte-identity-critical packages *when the loop body is
  order-sensitive* (appends to a list, selects/carries a value across
  iterations, returns, or calls anything not known to commute), and
  passing a tainted value into a registered byte-identity sink
  (:data:`SINKS`: the canonical JSON/CSV writers, checkpoint
  construction, ``json.dump(s)``, ``str.join``) anywhere in the tree.

Loops whose bodies only perform commuting work — keyed stores
(``numbers[v] = k``), ``set.add``/``discard``, ``|=``-style accumulation,
``count += 1`` — consume unordered values without observing their order
and are not flagged.  List/generator comprehensions over a tainted
source *propagate* the taint (the list's order is the set's order)
rather than flagging at the build site; ``pool.sort()`` or rebinding
through ``sorted()`` clears it.

Known imprecision (see ``docs/ANALYSIS.md``): parameters and attributes
are assumed clean, methods resolve only through ``self``, and dict
iteration is deliberately *not* a source — dicts preserve insertion order
on every supported Python, so a dict built deterministically iterates
deterministically.  The order-sensitivity classifier assumes keyed
writes hit distinct keys and that ``+=`` of non-constants may reorder
float accumulation (flagged).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.astutils import dotted_name
from repro.analysis.context import ModuleContext
from repro.analysis.flow.callgraph import resolve_call
from repro.analysis.flow.program import FlowRule, ProgramContext
from repro.analysis.flow.symbols import FunctionInfo
from repro.analysis.registry import register
from repro.analysis.violations import Violation

__all__ = ["OrderingFlowRule", "CANONICALIZERS", "SINKS"]

#: Qualified callables that may safely consume unordered values: they sort,
#: hash order-insensitively, or reduce before anything ordered escapes.
CANONICALIZERS = frozenset({
    "repro.experiments.export.result_to_dict",
    "repro.experiments.export.canonical_result_dict",
    "repro.resilience.checkpoint.graph_fingerprint",
    "repro.core.anchor_set.AnchorSetMaintainer.offer",
})

#: Qualified callables whose argument order becomes observable bytes.
SINKS = frozenset({
    "json.dump",
    "json.dumps",
    "repro.experiments.export.write_json",
    "repro.experiments.export.write_csv",
    "repro.resilience.atomic.atomic_write_text",
    "repro.resilience.checkpoint.CampaignCheckpoint.__init__",
})

#: Packages where *iterating* a tainted value is itself a violation (their
#: iteration order feeds deletion orders, reductions, or exports).
_ORDER_CRITICAL_PACKAGES = (
    "repro.abcore", "repro.core", "repro.parallel",
    "repro.experiments", "repro.resilience", "repro.bigraph",
)

#: Filesystem enumeration callables, by resolved name.
_FS_SOURCES = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
#: Unordered-returning method names (matched on any receiver).
_FS_SOURCE_METHODS = frozenset({"iterdir", "glob", "rglob"})
#: Shared-context table accessors (matched on any receiver): the batch
#: substrate's (α,β)-invariant tables — base core, frozen verification
#: seed — are sets/set-valued maps with no defined order.  A campaign
#: iterating one order-sensitively must sort first, exactly like any
#: other set (see ``repro.core.batch``).
_CONTEXT_SOURCE_METHODS = frozenset({"base_core", "seed_tables",
                                     "freeze_seed"})

#: Builtins whose result is a new set regardless of input.
_SET_BUILTINS = frozenset({"set", "frozenset"})
#: Builtins/calls that preserve their argument's (arbitrary) order.
_PROPAGATORS = frozenset({"list", "tuple", "iter", "enumerate", "zip",
                          "reversed", "filter", "map"})
#: Builtins that reduce an iterable order-insensitively.
_REDUCERS = frozenset({"sorted", "len", "min", "max", "sum", "any", "all"})
#: Set methods returning another unordered set.
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference", "copy"})

#: AugAssign operators that commute (safe accumulation from any order).
_COMMUTATIVE_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor)
#: Method calls allowed as bare statements in an order-insensitive loop.
_ACCUMULATOR_METHODS = frozenset({"add", "discard", "remove"})


def _target_names(target: ast.expr) -> set:
    """Plain names bound by an assignment/loop target."""
    names = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _references(node: Optional[ast.AST], names: set) -> bool:
    if node is None:
        return False
    return any(isinstance(sub, ast.Name) and sub.id in names
               for sub in ast.walk(node))


def _order_sensitive_stmt(loop: ast.stmt) -> Optional[ast.stmt]:
    """First statement making ``loop``'s body observe iteration order.

    ``None`` means every statement commutes: keyed stores, set
    accumulation, commutative aug-assignment, per-iteration temps, and
    control flow recursing into the same checks.  Anything else — list
    appends, conditional carries of the loop variable, returns/yields,
    arbitrary calls — makes the element order observable.
    """
    loop_vars = _target_names(loop.target)  # type: ignore[attr-defined]
    body = list(loop.body) + list(loop.orelse)  # type: ignore[attr-defined]
    return _scan_body(body, loop_vars, depth=0)


def _scan_body(stmts: List[ast.stmt], loop_vars: set,
               depth: int) -> Optional[ast.stmt]:
    known = set(loop_vars)
    for stmt in stmts:
        hit = _scan_stmt(stmt, known, depth)
        if hit is not None:
            return hit
    return None


def _scan_stmt(stmt: ast.stmt, loop_vars: set,
               depth: int) -> Optional[ast.stmt]:
    if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Raise,
                         ast.Assert, ast.Global, ast.Nonlocal)):
        return None
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                continue  # keyed/attribute store: commutes over keys
            names = _target_names(target)
            if not names:
                return stmt
            if depth == 0:
                # Re-assigned every iteration: a per-iteration temp.
                loop_vars |= names
            elif _references(getattr(stmt, "value", None), loop_vars):
                return stmt  # conditional carry: selection/tie-breaking
        return None
    if isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, (ast.Subscript, ast.Attribute)):
            return None
        if isinstance(stmt.op, _COMMUTATIVE_OPS):
            return None
        if isinstance(stmt.value, ast.Constant):
            return None  # count += 1
        if not _references(stmt.value, loop_vars):
            return None  # accumulates the same value each round
        return stmt
    if isinstance(stmt, ast.Expr):
        value = stmt.value
        if isinstance(value, ast.Constant):
            return None
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr in _ACCUMULATOR_METHODS:
            return None
        return stmt
    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if not isinstance(target, (ast.Subscript, ast.Name)):
                return stmt
        return None
    if isinstance(stmt, ast.If):
        return _scan_body(list(stmt.body) + list(stmt.orelse), loop_vars,
                          depth + 1)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        inner = loop_vars | _target_names(stmt.target)
        return _scan_body(list(stmt.body) + list(stmt.orelse), inner,
                          depth + 1)
    if isinstance(stmt, ast.While):
        return _scan_body(list(stmt.body) + list(stmt.orelse), loop_vars,
                          depth + 1)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return _scan_body(list(stmt.body), loop_vars, depth)
    if isinstance(stmt, ast.Try):
        hit = _scan_body(list(stmt.body) + list(stmt.finalbody),
                         loop_vars, depth)
        if hit is not None:
            return hit
        handler_body: List[ast.stmt] = list(stmt.orelse)
        for handler in stmt.handlers:
            handler_body.extend(handler.body)
        return _scan_body(handler_body, loop_vars, depth + 1)
    return stmt  # Return/Yield/unknown: order observable


@dataclass
class _Taint:
    """Provenance of one unordered value, for messages."""

    origin: str

    def via(self, producer: str) -> "_Taint":
        return _Taint("%s (via %s)" % (self.origin, producer))


class _FunctionFlow:
    """Local taint evaluation for one function body."""

    def __init__(self, info: FunctionInfo, program: ProgramContext,
                 producers: Dict[str, _Taint]) -> None:
        self.info = info
        self.program = program
        self.producers = producers
        self.returns_taint: Optional[_Taint] = None
        self.violations: List[Tuple[int, int, str]] = []

    # -- expression-level taint ----------------------------------------

    def taint_of(self, node: Optional[ast.expr],
                 env: Dict[str, _Taint]) -> Optional[_Taint]:
        if node is None:
            return None
        if isinstance(node, (ast.Set, ast.SetComp)):
            return _Taint("a set built at line %d" % node.lineno)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # A list/generator/dict built over an unordered source carries
            # the source's arbitrary order; propagate rather than flag.
            for gen in node.generators:
                hit = self.taint_of(gen.iter, env)
                if hit is not None:
                    return hit
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            return self._call_taint(node, env)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self.taint_of(node.left, env)
                    or self.taint_of(node.right, env))
        if isinstance(node, ast.IfExp):
            return (self.taint_of(node.body, env)
                    or self.taint_of(node.orelse, env))
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value, env)
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value, env)
        return None

    def _call_taint(self, node: ast.Call,
                    env: Dict[str, _Taint]) -> Optional[_Taint]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _SET_BUILTINS:
                return _Taint("%s() at line %d" % (func.id, node.lineno))
            if func.id in _REDUCERS:
                return None  # sanitized
            if func.id in _PROPAGATORS:
                for arg in node.args:
                    hit = self.taint_of(arg, env)
                    if hit is not None:
                        return hit
                return None
        if isinstance(func, ast.Attribute):
            # tainted.union(...) etc. stays tainted; x.keys() is NOT a
            # source (dicts iterate in insertion order on py>=3.7).
            if func.attr in _SET_METHODS:
                hit = self.taint_of(func.value, env)
                if hit is not None:
                    return hit
            if func.attr in _FS_SOURCE_METHODS:
                return _Taint("%s() at line %d (filesystem order)"
                              % (func.attr, node.lineno))
            if func.attr in _CONTEXT_SOURCE_METHODS:
                return _Taint("%s() at line %d (shared-context table)"
                              % (func.attr, node.lineno))
        resolved, text = resolve_call(node, self.info,
                                      self.program.symbols)
        qualified = resolved or self._resolved_text(text)
        if qualified in _FS_SOURCES:
            return _Taint("%s() at line %d (filesystem order)"
                          % (qualified, node.lineno))
        if qualified in CANONICALIZERS:
            return None
        if resolved is not None and resolved in self.producers:
            return self.producers[resolved].via(
                "%s()" % text if text else resolved)
        return None

    def _resolved_text(self, text: str) -> str:
        resolved = self.program.symbols.resolve(self.info.module, text)
        return resolved if resolved is not None else text

    # -- statement walk ------------------------------------------------

    def run(self, report: bool) -> None:
        """Walk the body once; collect returns and (optionally) findings."""
        body = self.info.node.body  # type: ignore[attr-defined]
        self._walk(list(body), {}, report)

    def _walk(self, body: List[ast.stmt], env: Dict[str, _Taint],
              report: bool) -> None:
        for stmt in body:
            self._statement(stmt, env, report)

    def _statement(self, stmt: ast.AST, env: Dict[str, _Taint],
                   report: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Closures see the enclosing taint but bind their own scope.
            self._walk(list(stmt.body), dict(env), report)
            return
        if isinstance(stmt, ast.ClassDef):
            self._walk(list(stmt.body), dict(env), report)
            return
        if isinstance(stmt, ast.Assign):
            taint = self.taint_of(stmt.value, env)
            self._check_expr(stmt.value, env, report)
            for target in stmt.targets:
                self._bind(target, taint, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self.taint_of(stmt.value, env)
                self._check_expr(stmt.value, env, report)
                self._bind(stmt.target, taint, env)
            return
        if isinstance(stmt, ast.AugAssign):
            taint = self.taint_of(stmt.value, env)
            self._check_expr(stmt.value, env, report)
            if isinstance(stmt.target, ast.Name) and taint is not None:
                env.setdefault(stmt.target.id, taint)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter, env, report)
            taint = self.taint_of(stmt.iter, env)
            if taint is not None and report and self._order_critical():
                offender = _order_sensitive_stmt(stmt)
                if offender is not None:
                    self._flag(
                        stmt.iter, taint,
                        "iterated by an order-sensitive loop (line %d "
                        "observes element order)" % offender.lineno)
            # Loop variables inherit element-level order, not set-ness.
            self._bind(stmt.target, None, env)
            self._walk(list(stmt.body), env, report)
            self._walk(list(stmt.orelse), env, report)
            return
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Attribute) \
                    and value.func.attr == "sort" \
                    and isinstance(value.func.value, ast.Name):
                # In-place sort canonicalizes the list.
                env.pop(value.func.value.id, None)
            self._check_expr(value, env, report)
            return
        if isinstance(stmt, ast.Return):
            self._check_expr(stmt.value, env, report)
            taint = self.taint_of(stmt.value, env)
            if taint is not None and self.returns_taint is None:
                self.returns_taint = taint
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr, env, report)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars,
                               self.taint_of(item.context_expr, env), env)
            self._walk(list(stmt.body), env, report)
            return
        # Generic statement: recurse into child statements with the same
        # env and check any expressions hanging off this node.  Except
        # handlers are neither stmt nor expr; unwrap them explicitly.
        for field_value in ast.iter_child_nodes(stmt):
            if isinstance(field_value, ast.stmt):
                self._statement(field_value, env, report)
            elif isinstance(field_value, ast.expr):
                self._check_expr(field_value, env, report)
            elif isinstance(field_value, ast.excepthandler):
                self._walk(list(field_value.body), env, report)

    def _bind(self, target: ast.expr, taint: Optional[_Taint],
              env: Dict[str, _Taint]) -> None:
        if isinstance(target, ast.Name):
            if taint is None:
                env.pop(target.id, None)
            else:
                env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, env)

    # -- expression checks (iteration in comprehensions, sink calls) ---

    def _check_expr(self, node: Optional[ast.expr], env: Dict[str, _Taint],
                    report: bool) -> None:
        if node is None or not report:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._check_sink(sub, env)

    def _check_sink(self, node: ast.Call, env: Dict[str, _Taint]) -> None:
        func = node.func
        sink_name: Optional[str] = None
        if isinstance(func, ast.Attribute) and func.attr == "join":
            sink_name = "str.join"
        else:
            resolved, text = resolve_call(node, self.info,
                                          self.program.symbols)
            qualified = resolved or self._resolved_text(text)
            if qualified in SINKS:
                sink_name = text or qualified
        if sink_name is None:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            taint = self.taint_of(arg, env)
            if taint is not None:
                self._flag(arg, taint,
                           "passed into byte-identity sink %s()"
                           % sink_name)

    def _order_critical(self) -> bool:
        return self.info.ctx.in_package(*_ORDER_CRITICAL_PACKAGES)

    def _flag(self, node: ast.expr, taint: _Taint, action: str) -> None:
        self.violations.append((
            node.lineno, node.col_offset,
            "unordered value — %s — %s without sorted() or a registered "
            "canonicalizer; hash/filesystem order would leak into "
            "byte-identical output" % (taint.origin, action)))


@register
class OrderingFlowRule(FlowRule):
    """Interprocedural determinism dataflow over the project call graph."""

    name = "ordering-flow"
    description = ("unordered values (sets, listdir/glob, unordered-"
                   "returning calls) must be sorted before iteration or "
                   "byte-identity sinks")

    def check_program(self,
                      program: ProgramContext) -> Iterator[Violation]:
        producers = self._producer_fixpoint(program)
        out: List[Violation] = []
        for info in program.symbols.iter_functions():
            flow = _FunctionFlow(info, program, producers)
            flow.run(report=True)
            for line, col, message in flow.violations:
                out.append(Violation(path=str(info.ctx.path), line=line,
                                     col=col, rule=self.name,
                                     message=message))
        for v in sorted(set(out)):
            yield v

    @staticmethod
    def _producer_fixpoint(program: ProgramContext) -> Dict[str, _Taint]:
        """Functions whose return value is unordered, to a fixpoint."""
        producers: Dict[str, _Taint] = {}
        changed = True
        while changed:
            changed = False
            for info in program.symbols.iter_functions():
                if info.qualname in producers:
                    continue
                flow = _FunctionFlow(info, program, producers)
                flow.run(report=False)
                if flow.returns_taint is not None:
                    producers[info.qualname] = _Taint(
                        "unordered return of %s" % info.qualname)
                    changed = True
        return producers
