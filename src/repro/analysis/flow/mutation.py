"""``shared-mutation``: no writes to arrays borrowed from the graph.

``adjacency_arrays()`` and ``attach_shared_graph()`` hand out *views* of
the CSR buffers — in the parallel path literally the same ``/dev/shm``
pages every worker reads.  A write through such a view corrupts the graph
for every other consumer, silently and non-deterministically.  Ownership
stays with ``repro.bigraph``; everyone else borrows read-only.

The rule taints locals bound (directly or through the producer fixpoint)
to :data:`SHARED_SOURCES`, follows derivation through value-preserving
operations (``np.asarray``/``np.frombuffer``/``memoryview``, subscripts,
tuple unpacking, attribute access), and flags:

* subscript stores (``arr[i] = v``) and ``del arr[i]``;
* augmented assignment with a tainted target (``arr += x``, in-place);
* calls to mutating methods (:data:`MUTATING_METHODS`);
* ``setflags(write=True)`` — explicitly re-arming a borrowed view.

Copies break the taint: ``.copy()``, ``.astype()``, ``.tolist()``,
``list()``/``bytes()`` conversion, ``sorted()``, and arithmetic (numpy
binary ops allocate fresh output).  ``x.setflags(write=False)`` is the
sanctioned export idiom and is never flagged.

Modules under ``repro.bigraph`` are exempt — they own the buffers and
must write them during construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import resolve_call
from repro.analysis.flow.program import FlowRule, ProgramContext
from repro.analysis.flow.symbols import FunctionInfo
from repro.analysis.registry import register
from repro.analysis.violations import Violation

__all__ = ["SharedMutationRule", "SHARED_SOURCES", "MUTATING_METHODS"]

#: Resolved callables returning views of shared graph storage.
SHARED_SOURCES = frozenset({
    "repro.bigraph.csr.adjacency_arrays",
    "repro.bigraph.adjacency_arrays",
    "repro.bigraph.shm.attach_shared_graph",
    "repro.abcore.accel.CsrCache.get",
})

#: ndarray / array.array / memoryview methods that mutate in place.
MUTATING_METHODS = frozenset({
    "fill", "put", "sort", "partition", "itemset", "setfield", "resize",
    "append", "extend", "insert", "remove", "pop", "clear", "reverse",
    "frombytes", "fromlist", "fromunicode", "byteswap",
})

#: Wrappers that preserve identity with the underlying buffer.
_VIEW_WRAPPERS = frozenset({
    "numpy.asarray", "numpy.frombuffer", "numpy.ascontiguousarray",
    "memoryview", "iter", "enumerate", "reversed", "zip",
})

#: Conversions/copies that detach from the shared buffer.
_COPYING_CALLS = frozenset({
    "numpy.array", "numpy.copy", "list", "tuple", "bytes", "bytearray",
    "sorted", "set", "frozenset", "sum", "min", "max", "len",
})

_COPYING_METHODS = frozenset({"copy", "astype", "tolist", "tobytes"})

_EXEMPT_PREFIX = "repro.bigraph"


class _FunctionMutation:
    """Taint + write detection for one function body."""

    def __init__(self, info: FunctionInfo, program: ProgramContext,
                 producers: Set[str]) -> None:
        self.info = info
        self.program = program
        self.producers = producers
        self.tainted: Set[str] = set()
        self.findings: List[Tuple[int, int, str]] = []
        self.returns_shared = False
        self._run()

    # -- call resolution ------------------------------------------------

    def _qualify(self, node: ast.Call) -> Optional[str]:
        resolved, text = resolve_call(node, self.info,
                                      self.program.symbols)
        if resolved is not None:
            return resolved
        if text:
            return self.program.symbols.resolve(self.info.module,
                                                text) or text
        return None

    def _is_source_call(self, node: ast.Call) -> bool:
        qualified = self._qualify(node)
        if qualified is None:
            return False
        if qualified in SHARED_SOURCES or qualified in self.producers:
            return True
        # ``cache.get(graph)`` on an unresolved receiver: match the
        # ``CsrCache.get`` shape by method name + module import of accel.
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "get" \
                and isinstance(func.value, ast.Name) \
                and "cache" in func.value.id.lower():
            return self._imports_accel()
        return False

    def _imports_accel(self) -> bool:
        aliases = self.program.symbols.aliases.get(self.info.module, {})
        return any(target.startswith("repro.abcore.accel")
                   for target in aliases.values())

    # -- expression taint ----------------------------------------------

    def _is_shared(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Subscript):
            return self._is_shared(node.value)
        if isinstance(node, ast.Attribute):
            return self._is_shared(node.value)
        if isinstance(node, ast.Starred):
            return self._is_shared(node.value)
        if isinstance(node, ast.IfExp):
            return self._is_shared(node.body) or self._is_shared(
                node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._is_shared(e) for e in node.elts)
        if isinstance(node, ast.NamedExpr):
            return self._is_shared(node.value)
        if isinstance(node, ast.Call):
            if self._is_source_call(node):
                return True
            qualified = self._qualify(node)
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _COPYING_METHODS:
                return False
            if qualified in _COPYING_CALLS:
                return False
            if qualified in _VIEW_WRAPPERS:
                return any(self._is_shared(a) for a in node.args)
            return False
        return False

    # -- walk -----------------------------------------------------------

    def _run(self) -> None:
        body = self.info.node.body  # type: ignore[attr-defined]
        for stmt in body:
            self._statement(stmt)

    def _bind(self, target: ast.expr, shared: bool) -> None:
        if isinstance(target, ast.Name):
            if shared:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(
                    element, ast.Starred) else element
                self._bind(inner, shared)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes checked separately when indexed
        if isinstance(stmt, ast.Assign):
            shared = self._is_shared(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._check_store(target, stmt)
                else:
                    self._bind(target, shared)
            self._scan_calls(stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                if isinstance(stmt.target, ast.Subscript):
                    self._check_store(stmt.target, stmt)
                else:
                    self._bind(stmt.target, self._is_shared(stmt.value))
                self._scan_calls(stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if isinstance(target, ast.Subscript):
                self._check_store(target, stmt)
            elif isinstance(target, ast.Name) \
                    and target.id in self.tainted:
                self.findings.append(
                    (stmt.lineno, stmt.col_offset,
                     "in-place operator on '%s', a view of shared graph "
                     "storage; copy it first (.copy()) or compute into "
                     "a fresh array" % target.id))
            self._scan_calls(stmt.value)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) \
                        and self._is_shared(target.value):
                    self.findings.append(
                        (stmt.lineno, stmt.col_offset,
                         "del through a view of shared graph storage"))
                elif isinstance(target, ast.Name):
                    self.tainted.discard(target.id)
            return
        if isinstance(stmt, (ast.Return,)):
            if stmt.value is not None and self._is_shared(stmt.value):
                self.returns_shared = True
            self._scan_calls(stmt.value)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._is_shared(stmt.iter))
            self._scan_calls(stmt.iter)
            for s in stmt.body + stmt.orelse:
                self._statement(s)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_calls(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars,
                               self._is_shared(item.context_expr))
            for s in stmt.body:
                self._statement(s)
            return
        if isinstance(stmt, ast.Try):
            for s in stmt.body:
                self._statement(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self._statement(s)
            for s in stmt.orelse + stmt.finalbody:
                self._statement(s)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_calls(stmt.test)
            for s in stmt.body + stmt.orelse:
                self._statement(s)
            return
        if isinstance(stmt, ast.Expr):
            self._scan_calls(stmt.value)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._statement(child)
            elif isinstance(child, ast.expr):
                self._scan_calls(child)

    # -- write detection ------------------------------------------------

    def _check_store(self, target: ast.Subscript,
                     stmt: ast.stmt) -> None:
        if self._is_shared(target.value):
            name = target.value.id if isinstance(
                target.value, ast.Name) else "a shared view"
            self.findings.append(
                (stmt.lineno, stmt.col_offset,
                 "subscript store into '%s', a view of shared graph "
                 "storage owned by repro.bigraph; borrowed CSR arrays "
                 "are read-only" % name))

    def _scan_calls(self, node: Optional[ast.expr]) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not isinstance(func, ast.Attribute):
                continue
            if not self._is_shared(func.value):
                continue
            if func.attr in MUTATING_METHODS:
                self.findings.append(
                    (sub.lineno, sub.col_offset,
                     ".%s() mutates a view of shared graph storage; "
                     "copy before modifying" % func.attr))
            elif func.attr == "setflags" and self._rearms_write(sub):
                self.findings.append(
                    (sub.lineno, sub.col_offset,
                     "setflags(write=True) re-arms writes on a view of "
                     "shared graph storage"))

    @staticmethod
    def _rearms_write(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "write" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
        if node.args and isinstance(node.args[0], ast.Constant):
            return bool(node.args[0].value)
        return False


@register
class SharedMutationRule(FlowRule):
    """Writes through borrowed CSR/shared-graph views are forbidden."""

    name = "shared-mutation"
    description = ("arrays from adjacency_arrays()/attach_shared_graph "
                   "are borrowed read-only; no in-place writes outside "
                   "repro.bigraph")

    def check_program(self,
                      program: ProgramContext) -> Iterator[Violation]:
        producers = self._producer_fixpoint(program)
        out: List[Violation] = []
        for info in program.symbols.iter_functions():
            if info.module.startswith(_EXEMPT_PREFIX):
                continue
            checker = _FunctionMutation(info, program, producers)
            for line, col, message in checker.findings:
                out.append(Violation(path=str(info.ctx.path), line=line,
                                     col=col, rule=self.name,
                                     message=message))
        for v in sorted(set(out)):
            yield v

    @staticmethod
    def _producer_fixpoint(program: ProgramContext) -> Set[str]:
        """Functions whose return value is a shared-storage view."""
        producers: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for info in program.symbols.iter_functions():
                if info.qualname in producers:
                    continue
                if info.module.startswith(_EXEMPT_PREFIX):
                    continue  # bigraph's own exports are the seed list
                checker = _FunctionMutation(info, program, producers)
                if checker.returns_shared:
                    producers.add(info.qualname)
                    changed = True
        return producers
