"""The whole-program analysis context and the program-scoped rule base.

A :class:`ProgramContext` bundles every parsed module of one analysis run
with the project-wide :class:`~repro.analysis.flow.symbols.SymbolTable`
and :class:`~repro.analysis.flow.callgraph.CallGraph` built over them.
Program-scoped rules (:class:`FlowRule`) receive the whole bundle once per
run instead of one module at a time, which is what lets them follow a
value from ``set()`` in one module to a canonical writer in another.

The runner builds one ``ProgramContext`` per invocation and caches nothing
across runs — at this repo's size a full build is a few hundred
milliseconds, and statelessness keeps ``--rules`` filtering and the test
helpers trivial.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis.context import ModuleContext
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.symbols import SymbolTable
from repro.analysis.registry import AnalysisRule
from repro.analysis.violations import Violation

__all__ = ["ProgramContext", "FlowRule"]


class ProgramContext:
    """Every module of one run, plus symbols and the call graph."""

    def __init__(self, contexts: List[ModuleContext]) -> None:
        self.contexts = list(contexts)
        self.modules: Dict[str, ModuleContext] = {
            ctx.module: ctx for ctx in contexts}
        self.symbols = SymbolTable.build(self.contexts)
        self.callgraph = CallGraph.build(self.symbols)

    @classmethod
    def build(cls, contexts: List[ModuleContext]) -> "ProgramContext":
        """Alias of the constructor, matching :meth:`SymbolTable.build`."""
        return cls(contexts)

    def module(self, name: str) -> Optional[ModuleContext]:
        """The context for dotted module ``name``, if analyzed this run."""
        return self.modules.get(name)


class FlowRule(AnalysisRule):
    """Base class for rules that need the whole program at once.

    Subclasses implement :meth:`check_program`; the per-module
    :meth:`~repro.analysis.registry.AnalysisRule.check` is intentionally a
    no-op so a flow rule accidentally handed to ``analyze_module`` yields
    nothing rather than half-true module-local findings.
    """

    scope = "program"

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Program rules produce nothing from a single module."""
        return iter(())

    def check_program(self, program: ProgramContext) -> Iterator[Violation]:
        """Yield every violation found across ``program``."""
        raise NotImplementedError
