"""Rule base class and the global rule registry.

A rule is a class with a unique ``name``, a one-line ``description``, and a
``check(ctx)`` method yielding :class:`~repro.analysis.violations.Violation`
objects.  Registering is a decorator away::

    @register
    class MyRule(AnalysisRule):
        name = "my-rule"
        description = "what it enforces"

        def check(self, ctx):
            ...

The registry is what the CLI's ``--rules`` filter and ``--list-rules``
output are built from; see ``docs/ANALYSIS.md`` for the how-to-add-a-rule
walkthrough.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.analysis.context import ModuleContext
from repro.analysis.violations import Violation

__all__ = ["AnalysisRule", "register", "all_rules", "get_rule", "rule_names"]

_REGISTRY: Dict[str, Type["AnalysisRule"]] = {}


class AnalysisRule:
    """Base class for repo-specific static-analysis rules."""

    #: Unique kebab-case rule name; used in reports and ignore pragmas.
    name: str = ""
    #: One-line summary shown by ``--list-rules``.
    description: str = ""
    #: ``"module"`` rules get one :class:`ModuleContext` at a time via
    #: :meth:`check`; ``"program"`` rules (:class:`repro.analysis.flow.
    #: FlowRule`) get every module of the run at once via
    #: ``check_program``.
    scope: str = "module"

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Yield every violation of this rule found in ``ctx``."""
        raise NotImplementedError

    def violation(self, ctx: ModuleContext, line: int, col: int,
                  message: str) -> Violation:
        """Build a :class:`Violation` tagged with this rule's name."""
        return Violation(path=str(ctx.path), line=line, col=col,
                         rule=self.name, message=message)


def register(rule_cls: Type[AnalysisRule]) -> Type[AnalysisRule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    if not rule_cls.name:
        raise ValueError("rule %r has no name" % (rule_cls,))
    if rule_cls.name in _REGISTRY and _REGISTRY[rule_cls.name] is not rule_cls:
        raise ValueError("duplicate rule name %r" % (rule_cls.name,))
    _REGISTRY[rule_cls.name] = rule_cls
    return rule_cls


def all_rules() -> List[AnalysisRule]:
    """Fresh instances of every registered rule, sorted by name."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[name]() for name in sorted(_REGISTRY)]


def get_rule(name: str) -> AnalysisRule:
    """Instantiate one registered rule by name (``KeyError`` if unknown)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return _REGISTRY[name]()


def rule_names() -> List[str]:
    """Sorted names of every registered rule."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return sorted(_REGISTRY)
