"""Repo-specific static analysis for the anchored (α,β)-core codebase.

Generic linters cannot check the conventions this library's correctness
rests on: the global vertex-id layout owned by :mod:`repro.bigraph`, the
immutability of the shared adjacency, deterministic peeling order, and the
hand-tuned hygiene of the FILVER hot loops.  This package is an AST-based
framework (rule registry, per-line ``# repro: ignore[rule]`` suppressions,
``# hot-loop`` pragmas, human/JSON/SARIF reporters) with seven
module-scoped rules:

``layer-safety``
    no raw ``n_upper``/``n_vertices`` boundary arithmetic outside
    ``repro.bigraph``;
``encapsulation``
    no access to ``BipartiteGraph`` privates outside ``repro.bigraph``;
``determinism``
    seeded randomness everywhere; no bare-set iteration in the algorithm
    packages;
``hot-path``
    no comprehensions/closures/repeated attribute lookups in loops marked
    ``# hot-loop``;
``exports``
    ``__all__`` complete, every entry bound and docstringed;
``exception-boundaries``
    broad ``except`` only at pragma-sanctioned isolation points;
``recompute``
    no cached-verification bypasses in the engine packages;

and three *program-scoped* rules built on the whole-program symbol
table/call graph in :mod:`repro.analysis.flow`:

``ordering-flow``
    unordered values (sets, ``listdir``/``glob``, unordered-returning
    calls) must be sorted before order-sensitive iteration or
    byte-identity sinks;
``resource-lifecycle``
    ``SharedMemory``/memmap/pool/file acquisitions released on all paths;
``shared-mutation``
    arrays borrowed from ``adjacency_arrays()``/``attach_shared_graph()``
    are read-only outside ``repro.bigraph``.

Run it with ``python -m repro.analysis src/`` (CI gates on it, with
``--strict-pragmas`` so stale suppressions fail the build); the runtime
companion is ``python -m repro.analysis.sanitize`` (``make sanitize``).
See ``docs/ANALYSIS.md`` for rule details and how to add a rule.
"""

from __future__ import annotations

from repro.analysis.context import ModuleContext, module_name_for_path
from repro.analysis.registry import (
    AnalysisRule,
    all_rules,
    get_rule,
    register,
    rule_names,
)
from repro.analysis.reporters import (
    format_human,
    format_json,
    format_sarif,
    report_to_dict,
    report_to_sarif,
)
from repro.analysis.runner import (
    AnalysisReport,
    analyze_module,
    analyze_program,
    collect_files,
    run_analysis,
    stale_pragma_warnings,
)
from repro.analysis.violations import Violation

__all__ = [
    "AnalysisReport",
    "AnalysisRule",
    "ModuleContext",
    "Violation",
    "all_rules",
    "analyze_module",
    "analyze_program",
    "collect_files",
    "format_human",
    "format_json",
    "format_sarif",
    "get_rule",
    "module_name_for_path",
    "register",
    "report_to_dict",
    "report_to_sarif",
    "rule_names",
    "run_analysis",
    "stale_pragma_warnings",
]
