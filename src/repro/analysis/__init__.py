"""Repo-specific static analysis for the anchored (α,β)-core codebase.

Generic linters cannot check the conventions this library's correctness
rests on: the global vertex-id layout owned by :mod:`repro.bigraph`, the
immutability of the shared adjacency, deterministic peeling order, and the
hand-tuned hygiene of the FILVER hot loops.  This package is an AST-based
framework (rule registry, per-line ``# repro: ignore[rule]`` suppressions,
``# hot-loop`` pragmas, human/JSON reporters) with five built-in rules:

``layer-safety``
    no raw ``n_upper``/``n_vertices`` boundary arithmetic outside
    ``repro.bigraph``;
``encapsulation``
    no access to ``BipartiteGraph`` privates outside ``repro.bigraph``;
``determinism``
    seeded randomness everywhere; no bare-set iteration in the algorithm
    packages;
``hot-path``
    no comprehensions/closures/repeated attribute lookups in loops marked
    ``# hot-loop``;
``exports``
    ``__all__`` complete, every entry bound and docstringed.

Run it with ``python -m repro.analysis src/`` (CI gates on it); see
``docs/ANALYSIS.md`` for rule details and how to add a rule.
"""

from __future__ import annotations

from repro.analysis.context import ModuleContext, module_name_for_path
from repro.analysis.registry import (
    AnalysisRule,
    all_rules,
    get_rule,
    register,
    rule_names,
)
from repro.analysis.reporters import format_human, format_json, report_to_dict
from repro.analysis.runner import (
    AnalysisReport,
    analyze_module,
    collect_files,
    run_analysis,
)
from repro.analysis.violations import Violation

__all__ = [
    "AnalysisReport",
    "AnalysisRule",
    "ModuleContext",
    "Violation",
    "all_rules",
    "analyze_module",
    "collect_files",
    "format_human",
    "format_json",
    "get_rule",
    "module_name_for_path",
    "register",
    "report_to_dict",
    "rule_names",
    "run_analysis",
]
