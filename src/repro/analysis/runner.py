"""Drive the rules over files and directories, applying suppressions.

Module-scoped rules run file by file.  Program-scoped rules
(:class:`~repro.analysis.flow.program.FlowRule`) run once over a
:class:`~repro.analysis.flow.program.ProgramContext` built from every
module of the run, and their violations pass through the same per-line
suppression filter via a path → module map.

After all rules run, a stale-pragma pass compares the pragmas each module
declares against the ones that actually fired: an ``# repro:
ignore[rule]`` that suppressed nothing, a ``# repro: boundary`` that
guarded no checked handler, or a ``# hot-loop`` attached to no loop
becomes a *warning* (``rule="stale-pragma"``).  Warnings don't fail the
run unless ``strict_pragmas=True`` promotes them to violations — the CI
gate runs strict so suppressions can't outlive the code they excused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, all_rules, rule_names
from repro.analysis.violations import Violation

__all__ = ["AnalysisReport", "run_analysis", "analyze_module",
           "analyze_program", "collect_files", "stale_pragma_warnings"]

_SKIP_DIR_SUFFIXES = (".egg-info",)
_SKIP_DIR_NAMES = ("__pycache__", ".git", ".hypothesis", ".pytest_cache")



@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    violations: List[Violation] = field(default_factory=list)
    #: ``(path, message)`` pairs for files that could not be analyzed.
    errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Non-fatal findings (stale pragmas); promoted to violations under
    #: ``--strict-pragmas``.
    warnings: List[Violation] = field(default_factory=list)
    checked_files: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations and no errors were recorded."""
        return not self.violations and not self.errors


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if any(p in _SKIP_DIR_NAMES or p.endswith(_SKIP_DIR_SUFFIXES)
                       for p in parts):
                    continue
                found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
        else:
            raise FileNotFoundError("not a .py file or directory: %s" % path)
    return sorted(found)


def analyze_module(ctx: ModuleContext,
                   rules: Optional[Sequence[AnalysisRule]] = None
                   ) -> List[Violation]:
    """Run module-scoped ``rules`` (default: all) over one parsed module.

    Violations on lines carrying a matching ``# repro: ignore[...]`` pragma
    are filtered out here, so rules never need to know about suppressions.
    Program-scoped rules are skipped — they need
    :func:`analyze_program`.
    """
    if rules is None:
        rules = all_rules()
    violations: List[Violation] = []
    for rule in rules:
        if rule.scope == "program":
            continue
        for v in rule.check(ctx):
            if not ctx.is_suppressed(v.rule, v.line):
                violations.append(v)
    return sorted(violations)


def analyze_program(contexts: Sequence[ModuleContext],
                    rules: Optional[Sequence[AnalysisRule]] = None
                    ) -> List[Violation]:
    """Run program-scoped ``rules`` over ``contexts`` as one program.

    The import lives here (not at module top) so :mod:`repro.analysis`
    stays importable even if the flow package is being bisected.
    """
    from repro.analysis.flow.program import ProgramContext

    if rules is None:
        rules = all_rules()
    program_rules = [r for r in rules if r.scope == "program"]
    if not program_rules or not contexts:
        return []
    program = ProgramContext.build(list(contexts))
    by_path = {str(ctx.path): ctx for ctx in contexts}
    violations: List[Violation] = []
    for rule in program_rules:
        for v in rule.check_program(program):
            ctx = by_path.get(v.path)
            if ctx is not None and ctx.is_suppressed(v.rule, v.line):
                continue
            violations.append(v)
    return sorted(violations)


def stale_pragma_warnings(ctx: ModuleContext,
                          ran: Set[str]) -> List[Violation]:
    """Pragmas in ``ctx`` that did nothing during a run of rules ``ran``.

    Staleness is only judged for pragmas whose consuming rules actually
    ran: an ``ignore[determinism]`` is not stale just because the run was
    ``--rules exports``.  Blanket ``# repro: ignore`` pragmas are judged
    only when every registered rule ran, for the same reason.
    """
    known = set(rule_names())
    out: List[Violation] = []

    def warn(line: int, message: str) -> None:
        out.append(Violation(path=str(ctx.path), line=line, col=0,
                             rule="stale-pragma", message=message))

    for line in sorted(ctx.suppressions):
        names = ctx.suppressions[line]
        used = {r for (ln, r) in ctx.used_suppressions if ln == line}
        if "*" in names:
            if known <= ran and not used:
                warn(line, "blanket '# repro: ignore' suppresses nothing "
                           "on this line; remove it")
            continue
        for rule in sorted(names):
            if rule not in known:
                warn(line, "'# repro: ignore[%s]' names an unknown rule "
                           "(known: %s)" % (rule, ", ".join(sorted(known))))
            elif rule in ran and rule not in used:
                warn(line, "'# repro: ignore[%s]' no longer suppresses "
                           "anything on this line; remove it" % rule)

    # Boundary/hot-loop staleness is structural — a pragma attached to no
    # except handler / loop header does nothing no matter which rules run.
    for line in sorted(ctx.boundary_pragma_lines
                       - ctx.matched_boundary_pragma_lines):
        warn(line, "'# repro: boundary' pragma is not attached to an "
                   "except handler; remove or move it")

    for line in sorted(ctx.hot_loop_pragma_lines
                       - ctx.matched_hot_loop_pragma_lines):
        warn(line, "'# hot-loop' pragma is not attached to a "
                   "for/while loop header; remove or move it")

    return out


def run_analysis(paths: Sequence[Path],
                 rules: Optional[Sequence[AnalysisRule]] = None,
                 strict_pragmas: bool = False) -> AnalysisReport:
    """Analyze every ``.py`` file under ``paths`` with ``rules``."""
    if rules is None:
        rules = all_rules()
    report = AnalysisReport(rules=[r.name for r in rules])
    files: List[Path] = []
    for path in paths:
        try:
            files.extend(collect_files([path]))
        except FileNotFoundError:
            report.errors.append((str(path), "not a .py file or directory"))
    contexts: List[ModuleContext] = []
    for path in sorted(set(files)):
        try:
            ctx = ModuleContext.from_file(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.errors.append((str(path), "%s: %s" % (
                type(exc).__name__, exc)))
            continue
        report.checked_files += 1
        contexts.append(ctx)
        report.violations.extend(analyze_module(ctx, rules))
    report.violations.extend(analyze_program(contexts, rules))
    ran = {r.name for r in rules}
    for ctx in contexts:
        report.warnings.extend(stale_pragma_warnings(ctx, ran))
    if strict_pragmas:
        report.violations.extend(report.warnings)
        report.warnings = []
    report.violations.sort()
    report.warnings.sort()
    return report
