"""Drive the rules over files and directories, applying suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, all_rules
from repro.analysis.violations import Violation

__all__ = ["AnalysisReport", "run_analysis", "analyze_module", "collect_files"]

_SKIP_DIR_SUFFIXES = (".egg-info",)
_SKIP_DIR_NAMES = ("__pycache__", ".git", ".hypothesis", ".pytest_cache")


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    violations: List[Violation] = field(default_factory=list)
    #: ``(path, message)`` pairs for files that could not be analyzed.
    errors: List[Tuple[str, str]] = field(default_factory=list)
    checked_files: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations and no errors were recorded."""
        return not self.violations and not self.errors


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if any(p in _SKIP_DIR_NAMES or p.endswith(_SKIP_DIR_SUFFIXES)
                       for p in parts):
                    continue
                found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
        else:
            raise FileNotFoundError("not a .py file or directory: %s" % path)
    return sorted(found)


def analyze_module(ctx: ModuleContext,
                   rules: Optional[Sequence[AnalysisRule]] = None
                   ) -> List[Violation]:
    """Run ``rules`` (default: all registered) over one parsed module.

    Violations on lines carrying a matching ``# repro: ignore[...]`` pragma
    are filtered out here, so rules never need to know about suppressions.
    """
    if rules is None:
        rules = all_rules()
    violations: List[Violation] = []
    for rule in rules:
        for v in rule.check(ctx):
            if not ctx.is_suppressed(v.rule, v.line):
                violations.append(v)
    return sorted(violations)


def run_analysis(paths: Sequence[Path],
                 rules: Optional[Sequence[AnalysisRule]] = None
                 ) -> AnalysisReport:
    """Analyze every ``.py`` file under ``paths`` with ``rules``."""
    if rules is None:
        rules = all_rules()
    report = AnalysisReport(rules=[r.name for r in rules])
    files: List[Path] = []
    for path in paths:
        try:
            files.extend(collect_files([path]))
        except FileNotFoundError:
            report.errors.append((str(path), "not a .py file or directory"))
    for path in sorted(set(files)):
        try:
            ctx = ModuleContext.from_file(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.errors.append((str(path), "%s: %s" % (
                type(exc).__name__, exc)))
            continue
        report.checked_files += 1
        report.violations.extend(analyze_module(ctx, rules))
    report.violations.sort()
    return report
