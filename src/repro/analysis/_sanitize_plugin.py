"""Pytest plugin behind ``make sanitize``: SharedMemory/fd leak tracking.

Injected by :mod:`repro.analysis.sanitize` via ``-p
repro.analysis._sanitize_plugin`` — never enabled in a normal test run.
It instruments ``multiprocessing.shared_memory.SharedMemory`` in the
test process to record every handle opened and every segment created,
and checks at session end (after a full garbage collection, so
refcount-driven ``__del__`` cleanup gets its chance) that

* no handle is still open (``close()`` never ran and the object is still
  referenced), and
* no *created* segment is still linked (``unlink()`` never ran — the
  ``/dev/shm`` file would outlive the suite).

Results are written to stderr as ``repro-sanitize:`` marker lines; the
driver parses them rather than trusting exit codes, because a leak must
fail the gate even when every test passed.  A file-descriptor count
(``/proc/self/fd``) is reported the same way; the driver applies the
tolerance, since libraries legitimately keep a few descriptors open.

Worker-process leaks can't be seen from here — the driver covers those
by diffing ``/dev/shm`` and scanning for the resource tracker's
"leaked shared_memory objects" warning.
"""

from __future__ import annotations

import gc
import os
import sys
from typing import Dict, Optional, Set, Tuple

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - py>=3.8 always has it
    shared_memory = None  # type: ignore[assignment]

__all__ = ["pytest_sessionstart", "pytest_sessionfinish"]

_MARKER = "repro-sanitize:"

#: id(handle) -> (segment name, was created here) for every open handle.
_live: Dict[int, Tuple[str, bool]] = {}
#: Segment names created in this process and not yet unlinked.
_created: Set[str] = set()

_fd_baseline: Optional[int] = None
_patched = False


def _fd_count() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-procfs platform
        return None


def _install() -> None:
    global _patched
    if _patched or shared_memory is None:
        return
    _patched = True
    cls = shared_memory.SharedMemory
    orig_init = cls.__init__
    orig_close = cls.close
    orig_unlink = cls.unlink

    def tracked_init(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        orig_init(self, *args, **kwargs)
        create = bool(kwargs.get("create",
                                 args[1] if len(args) > 1 else False))
        _live[id(self)] = (self.name, create)
        if create:
            _created.add(self.name)

    def tracked_close(self):  # type: ignore[no-untyped-def]
        _live.pop(id(self), None)
        orig_close(self)

    def tracked_unlink(self):  # type: ignore[no-untyped-def]
        _created.discard(self.name)
        orig_unlink(self)

    cls.__init__ = tracked_init  # type: ignore[method-assign]
    cls.close = tracked_close  # type: ignore[method-assign]
    cls.unlink = tracked_unlink  # type: ignore[method-assign]


def _emit(text: str) -> None:
    sys.stderr.write("%s %s\n" % (_MARKER, text))
    sys.stderr.flush()


def pytest_sessionstart(session):  # type: ignore[no-untyped-def]
    """Install the SharedMemory instrumentation and take the fd baseline."""
    global _fd_baseline
    _install()
    _fd_baseline = _fd_count()
    _emit("tracking shm=%s fd-baseline=%s"
          % (shared_memory is not None, _fd_baseline))


def pytest_sessionfinish(session, exitstatus):  # type: ignore[no-untyped-def]
    """Report leaked handles/segments and the final fd count to stderr."""
    # Give refcount/GC cleanup its chance: a handle whose owner was
    # collected closes itself in __del__, which is reclamation, not a leak.
    gc.collect()
    for name, created in sorted(set(_live.values())):
        _emit("leaked-shm-handle name=%s created=%s" % (name, created))
    for name in sorted(_created):
        _emit("leaked-shm-segment name=%s" % name)
    final = _fd_count()
    _emit("fd-baseline=%s fd-final=%s"
          % (_fd_baseline if _fd_baseline is not None else "n/a",
             final if final is not None else "n/a"))
    _emit("done handles=%d segments=%d" % (len(_live), len(_created)))
