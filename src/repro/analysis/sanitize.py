"""Runtime sanitizer gate: ``python -m repro.analysis.sanitize``.

Static rules prove what they can see; this harness checks the two
properties that only show up at runtime:

* **Hash-order independence** — the tier-1 suite runs in a subprocess
  under a *randomized* ``PYTHONHASHSEED`` (per run, printed so failures
  reproduce) with warnings promoted to errors.  Code that accidentally
  depends on set/dict hash order passes CI's pinned seeds and fails
  here.
* **Shared-resource reclamation** — the subprocess loads
  :mod:`repro.analysis._sanitize_plugin`, which instruments
  ``SharedMemory`` and reports unclosed handles, never-unlinked
  segments, and the file-descriptor delta as ``repro-sanitize:`` marker
  lines.  The driver additionally diffs ``/dev/shm`` around the run
  (catching worker-side leaks the in-process tracker can't see) and
  scans for the resource tracker's "leaked shared_memory objects"
  warning.

The gate fails when the suite fails under the randomized seed, any leak
marker appears, a new ``/dev/shm`` segment survives the run, the
tracker warns, or the fd delta exceeds ``--fd-tolerance``.

The seed itself comes from ``random.SystemRandom`` — entropy is the
point here, so this is the sanctioned exception to the repo's
seeded-randomness rule.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from random import SystemRandom
from typing import List, Optional, Sequence, Set

__all__ = ["main", "run_once", "evaluate_run"]

_MARKER = "repro-sanitize:"
_FD_RE = re.compile(r"fd-baseline=(\d+)\s+fd-final=(\d+)")
_TRACKER_WARNING = "leaked shared_memory objects"


def _shm_segments() -> Set[str]:
    """Names of shared-memory segment files currently in ``/dev/shm``."""
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith(("psm_", "wnsm_"))}
    except OSError:  # pragma: no cover - platform without /dev/shm
        return set()


def evaluate_run(returncode: int, stderr: str, before: Set[str],
                 after: Set[str], fd_tolerance: int,
                 seed: int) -> List[str]:
    """Judge one finished run from its observable evidence.

    Pure so the failure taxonomy is unit-testable without spawning a
    suite: exit code, ``repro-sanitize:`` markers, the resource tracker
    warning, and the ``/dev/shm`` before/after sets each map to one
    problem string.
    """
    problems: List[str] = []
    if returncode != 0:
        problems.append("suite failed under PYTHONHASHSEED=%d "
                        "(exit %d)" % (seed, returncode))

    fd_delta: Optional[int] = None
    for line in stderr.splitlines():
        if not line.startswith(_MARKER):
            continue
        body = line[len(_MARKER):].strip()
        if body.startswith(("leaked-shm-handle", "leaked-shm-segment")):
            problems.append(body)
        match = _FD_RE.search(body)
        if match:
            fd_delta = int(match.group(2)) - int(match.group(1))
    if fd_delta is not None and fd_delta > fd_tolerance:
        problems.append("fd delta %+d exceeds tolerance %d"
                        % (fd_delta, fd_tolerance))

    if _TRACKER_WARNING in stderr:
        problems.append("resource_tracker reported leaked shared_memory "
                        "objects (worker-side leak)")

    survivors = after - before
    if survivors:
        problems.append("segments outlived the run in /dev/shm: %s"
                        % ", ".join(sorted(survivors)))
    return problems


def run_once(seed: int, pytest_args: Sequence[str], fd_tolerance: int,
             warnings_filter: str) -> List[str]:
    """One sanitized suite run; returns the list of problems (empty = ok)."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    env["PYTHONWARNINGS"] = warnings_filter
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p)

    before = _shm_segments()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q",
         "-p", "repro.analysis._sanitize_plugin", *pytest_args],
        env=env, capture_output=True, text=True)
    after = _shm_segments()

    problems = evaluate_run(proc.returncode, proc.stderr, before, after,
                            fd_tolerance, seed)
    for name in after - before:  # don't let one leak fail every later run
        try:
            os.unlink(os.path.join("/dev/shm", name))
        except OSError:
            pass

    if problems:
        tail = "\n".join(proc.stdout.splitlines()[-30:])
        if tail:
            print(tail)
        tail_err = "\n".join(proc.stderr.splitlines()[-15:])
        if tail_err:
            print(tail_err, file=sys.stderr)
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code (0 clean, 1 failed)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitize",
        description="tier-1 suite under randomized PYTHONHASHSEED with "
                    "warnings-as-errors and SharedMemory/fd leak tracking")
    parser.add_argument("--runs", type=int, default=2,
                        help="independent randomized runs (default 2)")
    parser.add_argument("--seed", type=int, default=None,
                        help="pin the hash seed (for reproducing a failure)")
    parser.add_argument("--fd-tolerance", type=int, default=8,
                        help="allowed file-descriptor growth (default 8)")
    parser.add_argument("--warnings", default="error",
                        help="PYTHONWARNINGS filter for the run "
                             "(default: error)")
    parser.add_argument("pytest_args", nargs="*", default=[],
                        help="arguments for pytest (default: tests/)")
    args = parser.parse_args(argv)

    pytest_args = args.pytest_args or ["tests/"]
    rng = SystemRandom()
    runs = 1 if args.seed is not None else max(1, args.runs)
    failed = False
    for index in range(runs):
        seed = args.seed if args.seed is not None \
            else rng.randrange(1 << 32)
        problems = run_once(seed, pytest_args, args.fd_tolerance,
                            args.warnings)
        status = "ok" if not problems else "FAIL"
        print("repro.analysis.sanitize: run %d/%d seed=%d %s"
              % (index + 1, runs, seed, status))
        for problem in problems:
            print("  - %s" % problem)
            failed = True
    if failed:
        print("repro.analysis.sanitize: FAILED")
        return 1
    print("repro.analysis.sanitize: clean (%d run(s), 0 leaked segments)"
          % runs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
