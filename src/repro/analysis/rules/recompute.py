"""No per-candidate whole-order recomputation inside ``# hot-loop`` loops.

``reachable_from`` and ``r_scores`` each walk a whole deletion order: the
first runs the order-respecting DFS behind ``rf(x)``, the second fills the
r-score DP table for every shell vertex.  Calling either *per iteration of
a hot loop* multiplies an order-sized cost by the loop's trip count — the
exact pattern the cross-iteration :class:`repro.core.incremental.
VerificationCache` and the per-side r-score table exist to remove.

This rule flags calls to either function (by name, bare or attribute)
whose call site sits inside a loop marked ``# hot-loop``.  Legitimate call
sites — the cache-*miss* fallback that recomputes exactly once and stores
the result, or a loop whose trip count is provably tiny — opt out with
``# repro: ignore[recompute]`` on the call line, which doubles as an
in-source marker that someone thought about the cost.

Like the hot-path rule, this is an opt-in contract: loops without the
pragma are never inspected.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, register
from repro.analysis.violations import Violation

__all__ = ["RecomputeRule"]

#: Whole-order functions: each call costs O(|order|) or worse.
_EXPENSIVE = ("reachable_from", "r_scores")


def _callee_name(node: ast.Call) -> str:
    """Terminal name of the callee: ``f(...)`` -> f, ``m.f(...)`` -> f."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class RecomputeRule(AnalysisRule):
    """Flag whole-order recomputation inside ``# hot-loop`` marked loops."""

    name = "recompute"
    description = ("no reachable_from / r_scores calls inside # hot-loop "
                   "loops; reuse the verification cache or hoist the table")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not ctx.hot_loop_spans:
            return
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callee_name(node)
            if name not in _EXPENSIVE:
                continue
            if not ctx.in_hot_loop(node.lineno):
                continue
            out.append(self.violation(
                ctx, node.lineno, node.col_offset,
                "%s() walks a whole deletion order and is called inside a "
                "# hot-loop; reuse the VerificationCache entry (or a "
                "hoisted table) and mark a sanctioned once-per-miss "
                "fallback with '# repro: ignore[recompute]'" % name))
        for v in sorted(out):
            yield v
