"""Export consistency: ``__all__`` is complete, defined, and documented.

Every module under ``repro`` declares its public surface in ``__all__``;
the API docs and ``from x import *`` behavior are generated from it.  This
rule keeps the declaration honest:

* a module defining public functions/classes must declare ``__all__``;
* every public top-level ``def``/``class`` appears in ``__all__``
  (prefix helpers with ``_`` to keep them private);
* every ``__all__`` entry is actually bound at top level (defined,
  assigned, or imported);
* every ``__all__`` entry defined in the module as a ``def``/``class``
  has a docstring.

Modules named ``__main__`` are exempt (they are entry points, not APIs).
``__all__`` values built dynamically (concatenation, ``+=``) are skipped —
the rule only understands literal lists/tuples of strings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, register
from repro.analysis.violations import Violation

__all__ = ["ExportsRule"]


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module statements, looking through top-level ``if``/``try`` blocks."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


@register
class ExportsRule(AnalysisRule):
    """Cross-check ``__all__`` against the module's top-level bindings."""

    name = "exports"
    description = ("__all__ declared, complete, every entry bound and "
                   "(for defs/classes) docstringed")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.module.rsplit(".", 1)[-1] == "__main__":
            return

        all_entries: Optional[List[Tuple[str, int, int]]] = None
        analyzable = True
        bound: Set[str] = set()
        defs: Dict[str, ast.stmt] = {}
        public_defs: List[ast.stmt] = []

        for stmt in _top_level_statements(ctx.tree):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(stmt.name)
                defs[stmt.name] = stmt
                if not stmt.name.startswith("_"):
                    public_defs.append(stmt)
            elif isinstance(stmt, ast.Assign):
                for name in self._assigned_names(stmt.targets):
                    if name == "__all__":
                        all_entries = self._literal_entries(stmt.value)
                        if all_entries is None:
                            analyzable = False
                    else:
                        bound.add(name)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    bound.add(stmt.target.id)
            elif isinstance(stmt, ast.AugAssign):
                if (isinstance(stmt.target, ast.Name)
                        and stmt.target.id == "__all__"):
                    analyzable = False
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name)

        if not analyzable:
            return
        if all_entries is None:
            if public_defs:
                first = min(public_defs, key=lambda s: s.lineno)
                yield self.violation(
                    ctx, first.lineno, first.col_offset,
                    "module defines public symbols but declares no __all__")
            return

        declared = {name for name, _, _ in all_entries}
        out: List[Violation] = []
        for name, line, col in all_entries:
            if name not in bound:
                out.append(self.violation(
                    ctx, line, col,
                    "__all__ entry %r is not defined in the module" % name))
            elif name in defs and ast.get_docstring(defs[name]) is None:
                d = defs[name]
                out.append(self.violation(
                    ctx, d.lineno, d.col_offset,
                    "exported %r has no docstring" % name))
        for stmt in public_defs:
            name = stmt.name  # type: ignore[attr-defined]
            if name not in declared:
                out.append(self.violation(
                    ctx, stmt.lineno, stmt.col_offset,
                    "public %r missing from __all__ (export it or rename "
                    "it with a leading underscore)" % name))
        for v in sorted(out):
            yield v

    # ------------------------------------------------------------------

    @staticmethod
    def _assigned_names(targets: List[ast.expr]) -> Iterator[str]:
        for target in targets:
            if isinstance(target, ast.Name):
                yield target.id
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        yield elt.id

    @staticmethod
    def _literal_entries(
            value: ast.expr) -> Optional[List[Tuple[str, int, int]]]:
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        entries: List[Tuple[str, int, int]] = []
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                return None
            entries.append((elt.value, elt.lineno, elt.col_offset))
        return entries
