"""Encapsulation: no access to ``BipartiteGraph`` privates outside ``bigraph``.

``BipartiteGraph._adj`` is the single mutable-looking structure the whole
library shares; every algorithm assumes nobody writes to it.  The public
accessors (``neighbors``, ``adjacency``, ``degree``, ``copy_adjacency``) are
the supported surface — code outside :mod:`repro.bigraph` that reaches for
``._adj`` (or the label internals) either mutates shared state or couples
itself to the representation.  ``self._x`` / ``cls._x`` access is fine: a
class touching its *own* privates is not an encapsulation break.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, register
from repro.analysis.violations import Violation

__all__ = ["EncapsulationRule", "PRIVATE_GRAPH_ATTRS"]

#: The private surface of :class:`repro.bigraph.graph.BipartiteGraph`.
PRIVATE_GRAPH_ATTRS = frozenset({
    "_adj",
    "_upper_labels",
    "_lower_labels",
    "_label_index",
    "_check_consistency",
})


@register
class EncapsulationRule(AnalysisRule):
    """Flag access to ``BipartiteGraph`` private attributes."""

    name = "encapsulation"
    description = ("no access to BipartiteGraph privates (_adj, label "
                   "tables) outside repro.bigraph")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.in_package("repro.bigraph"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in PRIVATE_GRAPH_ATTRS:
                continue
            if (isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")):
                continue
            yield self.violation(
                ctx, node.lineno, node.col_offset,
                "access to BipartiteGraph private %r; use the public "
                "accessors (neighbors/adjacency/degree/copy_adjacency, "
                "label_of/vertex_of)" % node.attr)
