"""Hot-path hygiene inside loops marked with a ``# hot-loop`` pragma.

The peeling loops process every edge of the graph, often many times; at a
billion edges, per-iteration constant factors are the whole ballgame in
pure Python.  Marking a loop ``# hot-loop`` (on the ``for``/``while`` line
or the line above) asserts it is one of these, and this rule then enforces
the idioms the fast paths already use:

* **no comprehensions / generator expressions** in the loop body — each one
  allocates a new frame per evaluation; build into a pre-allocated
  structure or use ``map`` with hoisted callables;
* **no closures** (``def``/``lambda``) in the loop body — a function object
  per iteration;
* **no repeated attribute lookups** — the same ``obj.attr`` read twice per
  iteration, or read at all inside a nested loop, must be hoisted to a
  local before the marked loop (``push = queue.append``);
* **no per-vertex ``.neighbors()`` calls** — the method dispatch costs a
  dict lookup per vertex; hoist ``neighbors = graph.neighbors`` (or go
  flat with ``repro.bigraph.adjacency_arrays`` on CSR-backed graphs).

Loops without the pragma are untouched: this is an opt-in contract for the
handful of loops that dominate the profile, not a style rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.astutils import dotted_name
from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, register
from repro.analysis.violations import Violation

__all__ = ["HotPathRule"]

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_CLOSURES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@register
class HotPathRule(AnalysisRule):
    """Enforce allocation/lookup hygiene in ``# hot-loop`` marked loops."""

    name = "hot-path"
    description = ("no comprehensions, closures, repeated attribute "
                   "lookups, or per-vertex .neighbors() calls inside "
                   "loops marked # hot-loop")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        pragmas = ctx.hot_loop_pragma_lines
        if not pragmas:
            return
        marked = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.For, ast.While))
            and (node.lineno in pragmas or node.lineno - 1 in pragmas)
        ]
        # An inner marked loop is already covered by its outer marked loop.
        outermost = [
            loop for loop in marked
            if not any(other is not loop and _contains(other, loop)
                       for other in marked)
        ]
        seen: Set[Tuple[int, int, str]] = set()
        out: List[Violation] = []
        for loop in outermost:
            self._check_loop(ctx, loop, out)
        for v in sorted(out):
            key = (v.line, v.col, v.message)
            if key not in seen:
                seen.add(key)
                yield v

    # ------------------------------------------------------------------

    def _check_loop(self, ctx: ModuleContext, loop: ast.AST,
                    out: List[Violation]) -> None:
        # dotted attr path -> list of (depth, node); depth 0 = marked body.
        lookups: Dict[str, List[Tuple[int, ast.Attribute]]] = {}
        if isinstance(loop, ast.For):
            body = list(loop.body) + list(loop.orelse)
        else:
            body = [loop.test] + list(loop.body) + list(loop.orelse)  # type: ignore[attr-defined]
        for stmt in body:
            self._walk(ctx, stmt, 0, lookups, out)
        for path, hits in sorted(lookups.items()):
            nested = [n for d, n in hits if d >= 1]
            if nested:
                node = min(nested, key=lambda n: (n.lineno, n.col_offset))
                out.append(self.violation(
                    ctx, node.lineno, node.col_offset,
                    "attribute %r looked up inside a loop nested in a "
                    "# hot-loop; hoist it to a local before the loop" % path))
            elif len(hits) >= 2:
                node = min((n for _, n in hits),
                           key=lambda n: (n.lineno, n.col_offset))
                out.append(self.violation(
                    ctx, node.lineno, node.col_offset,
                    "attribute %r looked up %d times per # hot-loop "
                    "iteration; hoist it to a local before the loop"
                    % (path, len(hits))))

    def _walk(self, ctx: ModuleContext, node: ast.AST, depth: int,
              lookups: Dict[str, List[Tuple[int, ast.Attribute]]],
              out: List[Violation]) -> None:
        if isinstance(node, _COMPREHENSIONS):
            out.append(self.violation(
                ctx, node.lineno, node.col_offset,
                "comprehension inside a # hot-loop allocates per "
                "iteration; use an explicit loop or hoist it"))
            return  # its internals are already condemned wholesale
        if isinstance(node, _CLOSURES):
            out.append(self.violation(
                ctx, node.lineno, node.col_offset,
                "closure defined inside a # hot-loop creates a function "
                "object per iteration; define it outside"))
            return
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "neighbors"):
            out.append(self.violation(
                ctx, node.lineno, node.col_offset,
                "per-vertex .neighbors() method call inside a # hot-loop; "
                "hoist 'neighbors = graph.neighbors' before the loop, or "
                "consume the flat CSR buffers via "
                "repro.bigraph.adjacency_arrays"))
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            path = dotted_name(node)
            if path:
                lookups.setdefault(path, []).append((depth, node))
            # still recurse: chains like a.b.c record both a.b.c and a.b
        if isinstance(node, ast.For):
            self._walk(ctx, node.target, depth, lookups, out)
            self._walk(ctx, node.iter, depth, lookups, out)
            for child in list(node.body) + list(node.orelse):
                self._walk(ctx, child, depth + 1, lookups, out)
            return
        if isinstance(node, ast.While):
            for child in [node.test] + list(node.body) + list(node.orelse):
                self._walk(ctx, child, depth + 1, lookups, out)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, child, depth, lookups, out)


def _contains(outer: ast.AST, inner: ast.AST) -> bool:
    return any(inner is node for node in ast.walk(outer))
