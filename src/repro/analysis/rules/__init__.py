"""The built-in repo-specific rules.

Importing this package registers every rule with
:mod:`repro.analysis.registry`; a new rule module only needs to be added to
the import list below (and decorated with ``@register``) to ship.
"""

from __future__ import annotations

from repro.analysis.flow.lifecycle import ResourceLifecycleRule
from repro.analysis.flow.mutation import SharedMutationRule
from repro.analysis.flow.ordering import OrderingFlowRule
from repro.analysis.rules.boundaries import BoundariesRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.encapsulation import EncapsulationRule
from repro.analysis.rules.exports import ExportsRule
from repro.analysis.rules.hot_path import HotPathRule
from repro.analysis.rules.layer_safety import LayerSafetyRule
from repro.analysis.rules.recompute import RecomputeRule

__all__ = [
    "BoundariesRule",
    "DeterminismRule",
    "EncapsulationRule",
    "ExportsRule",
    "HotPathRule",
    "LayerSafetyRule",
    "OrderingFlowRule",
    "RecomputeRule",
    "ResourceLifecycleRule",
    "SharedMutationRule",
]
