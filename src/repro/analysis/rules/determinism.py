"""Determinism: seeded randomness everywhere, ordered iteration in algorithms.

Two families of nondeterminism have bitten bipartite-core implementations
(the deletion orders ``O_U``/``O_L`` of Algorithm 2 must be reproducible for
order-reachability to mean anything across runs):

* **Unseeded randomness** — ``random.Random()`` / ``random.Random(None)``
  seeds from OS entropy, and module-level ``random.*`` calls share the
  process-global RNG.  Both make runs unreproducible.  Use
  :func:`repro.utils.rng.make_rng` with an explicit or default seed.
  Enforced everywhere under ``repro``.
* **Bare set iteration** — ``for v in some_set`` visits vertices in hash
  order, which varies across processes for str-keyed data and across
  versions generally; peeling tie-breaks then differ run to run.  Iterate
  ``sorted(s)`` (or keep a list alongside the set).  Enforced in the
  algorithm packages ``repro.abcore`` and ``repro.core``, where iteration
  order feeds deletion orders and anchor tie-breaking.

The set-iteration check is a local heuristic: it sees set literals, set
comprehensions, ``set(...)``/``frozenset(...)`` calls, and locals assigned
from them — not sets returned by called functions.  It is a tripwire, not a
proof of determinism.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.analysis.astutils import split_scope
from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, register
from repro.analysis.violations import Violation

__all__ = ["DeterminismRule"]

_SET_CALLS = ("set", "frozenset")
_ORDERED_PACKAGES = ("repro.abcore", "repro.core")


def _is_setish(node: ast.expr, aliases: Dict[str, bool]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _SET_CALLS):
        return True
    if isinstance(node, ast.Name) and aliases.get(node.id, False):
        return True
    return False


@register
class DeterminismRule(AnalysisRule):
    """Flag unseeded RNGs and hash-ordered set iteration."""

    name = "determinism"
    description = ("no unseeded/global random and no bare-set iteration in "
                   "repro.abcore / repro.core")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        out: List[Violation] = []
        self._check_random(ctx, out)
        if ctx.in_package(*_ORDERED_PACKAGES):
            self._visit_scope(ctx, list(ctx.tree.body), {}, out)
        for v in sorted(out):
            yield v

    # ------------------------------------------------------------------
    # Unseeded / process-global randomness (whole tree; no scoping needed)
    # ------------------------------------------------------------------

    def _check_random(self, ctx: ModuleContext, out: List[Violation]) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                # Random is fine (callers must seed it); SystemRandom is
                # OS entropy by design — the sanctioned source when
                # non-determinism is the point (the sanitizer's seeds).
                bad = [a.name for a in node.names
                       if a.name not in ("Random", "SystemRandom")]
                if bad:
                    out.append(self.violation(
                        ctx, node.lineno, node.col_offset,
                        "import of process-global random function(s) %s; "
                        "use repro.utils.rng.make_rng" % ", ".join(bad)))
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"):
                continue
            if func.attr == "Random":
                unseeded = not node.args or (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None)
                if unseeded:
                    out.append(self.violation(
                        ctx, node.lineno, node.col_offset,
                        "unseeded random.Random() draws from OS entropy; "
                        "use repro.utils.rng.make_rng with a seed"))
            elif func.attr != "SystemRandom":
                out.append(self.violation(
                    ctx, node.lineno, node.col_offset,
                    "module-level random.%s() uses the shared global RNG; "
                    "thread an explicit random.Random through "
                    "repro.utils.rng.make_rng" % func.attr))

    # ------------------------------------------------------------------
    # Bare set iteration (algorithm packages only; needs alias scoping)
    # ------------------------------------------------------------------

    def _visit_scope(self, ctx: ModuleContext, body: List[ast.AST],
                     aliases: Dict[str, bool], out: List[Violation]) -> None:
        aliases = dict(aliases)
        nodes, nested = split_scope(body)
        for node in nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[target.id] = _is_setish(node.value, aliases)
            elif isinstance(node, ast.For):
                self._check_iter(ctx, node.iter, aliases, out)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_iter(ctx, gen.iter, aliases, out)
        for nested_body in nested:
            self._visit_scope(ctx, nested_body, aliases, out)

    def _check_iter(self, ctx: ModuleContext, iter_node: ast.expr,
                    aliases: Dict[str, bool], out: List[Violation]) -> None:
        target = iter_node
        if (isinstance(target, ast.Call) and isinstance(target.func, ast.Name)
                and target.func.id == "enumerate" and target.args):
            target = target.args[0]
        if _is_setish(target, aliases):
            out.append(self.violation(
                ctx, iter_node.lineno, iter_node.col_offset,
                "iteration over a bare set visits vertices in hash order; "
                "iterate sorted(...) so peeling/tie-break order is "
                "deterministic"))
