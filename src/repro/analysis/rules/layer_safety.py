"""Layer-safety: no raw vertex-id boundary arithmetic outside ``bigraph``.

The global id layout (upper vertices ``0..n_upper-1``, lower vertices
``n_upper..n_vertices-1``) is an implementation detail of
:mod:`repro.bigraph.graph`.  Code elsewhere must go through the layer API —
``is_upper``/``is_lower``/``layer``/``lower_index`` or
:func:`repro.bigraph.validation.check_vertex` — so a future id-layout change
(e.g. interleaved ids for cache locality) stays a one-module change.

Flagged outside ``repro.bigraph``:

* ordering comparisons whose operand is an ``n_upper``/``n_vertices``
  attribute (``v < graph.n_upper``, ``0 <= a < graph.n_vertices``), or a
  local that aliases one (``n_upper = graph.n_upper; ... v < n_upper``) —
  equality tests (``graph.n_vertices == 0``) are size checks and stay
  legal;
* ``+``/``-`` arithmetic on an ``n_upper`` attribute or alias — the
  id ↔ per-layer-index conversion (``v - graph.n_upper``).

Exception: *alias* comparisons/arithmetic inside a loop marked
``# hot-loop`` are allowed — hoisting the boundary into a local and
branching on it is the sanctioned fast-path idiom, and the hot-path rule
polices those loops instead.  Attribute-form access is flagged even there
(hoist it; that is also faster).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.astutils import split_scope
from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, register
from repro.analysis.violations import Violation

__all__ = ["LayerSafetyRule"]

_BOUNDARY_ATTRS = ("n_upper", "n_vertices")
#: Only ``n_upper`` participates in id ↔ layer-index offset arithmetic;
#: sums/differences with ``n_vertices`` are ordinary size accounting.
_OFFSET_ATTRS = ("n_upper",)


@register
class LayerSafetyRule(AnalysisRule):
    """Flag raw ``n_upper``/``n_vertices`` boundary arithmetic."""

    name = "layer-safety"
    description = ("no raw n_upper/n_vertices boundary comparisons or offset "
                   "arithmetic outside repro.bigraph")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.in_package("repro.bigraph"):
            return
        out: List[Violation] = []
        self._visit_scope(ctx, list(ctx.tree.body), {}, out)
        for v in sorted(out):
            yield v

    # ------------------------------------------------------------------

    def _visit_scope(self, ctx: ModuleContext, body: List[ast.AST],
                     aliases: Dict[str, str], out: List[Violation]) -> None:
        aliases = dict(aliases)  # nested scopes see, but never mutate, ours
        nodes, nested = split_scope(body)
        for node in nodes:
            if isinstance(node, ast.Assign):
                self._record_aliases(node, aliases)
            elif isinstance(node, ast.Compare):
                self._check_compare(ctx, node, aliases, out)
            elif isinstance(node, ast.BinOp):
                self._check_binop(ctx, node, aliases, out)
        for nested_body in nested:
            self._visit_scope(ctx, nested_body, aliases, out)

    @staticmethod
    def _record_aliases(node: ast.Assign, aliases: Dict[str, str]) -> None:
        pairs: List[Tuple[ast.expr, ast.expr]] = []
        for target in node.targets:
            if isinstance(target, ast.Name):
                pairs.append((target, node.value))
            elif (isinstance(target, ast.Tuple)
                  and isinstance(node.value, ast.Tuple)
                  and len(target.elts) == len(node.value.elts)):
                pairs.extend(zip(target.elts, node.value.elts))
        for tgt, val in pairs:
            if not isinstance(tgt, ast.Name):
                continue
            if isinstance(val, ast.Attribute) and val.attr in _BOUNDARY_ATTRS:
                aliases[tgt.id] = val.attr
            elif tgt.id in aliases:
                del aliases[tgt.id]  # rebound to something else

    @staticmethod
    def _boundary_name(node: ast.expr, aliases: Dict[str, str],
                       attrs: Tuple[str, ...]) -> Optional[Tuple[str, bool]]:
        """``(display_name, is_alias)`` when ``node`` is a boundary operand."""
        if isinstance(node, ast.Attribute) and node.attr in attrs:
            return node.attr, False
        if isinstance(node, ast.Name) and aliases.get(node.id) in attrs:
            return node.id, True
        return None

    def _check_compare(self, ctx: ModuleContext, node: ast.Compare,
                       aliases: Dict[str, str], out: List[Violation]) -> None:
        # Only ordering comparisons are boundary checks; ``== 0`` style
        # size/emptiness tests against n_vertices are legitimate anywhere.
        if not any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                   for op in node.ops):
            return
        for operand in [node.left] + list(node.comparators):
            hit = self._boundary_name(operand, aliases, _BOUNDARY_ATTRS)
            if hit is None:
                continue
            name, is_alias = hit
            if is_alias and ctx.in_hot_loop(node.lineno):
                continue  # hoisted boundary local inside a # hot-loop
            out.append(self.violation(
                ctx, node.lineno, node.col_offset,
                "raw layer-boundary comparison against %r; use "
                "BipartiteGraph.is_upper/is_lower or "
                "bigraph.validation.check_vertex" % name))
            return  # one report per comparison chain

    def _check_binop(self, ctx: ModuleContext, node: ast.BinOp,
                     aliases: Dict[str, str], out: List[Violation]) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        for operand in (node.left, node.right):
            hit = self._boundary_name(operand, aliases, _OFFSET_ATTRS)
            if hit is None:
                continue
            name, is_alias = hit
            if is_alias and ctx.in_hot_loop(node.lineno):
                continue
            out.append(self.violation(
                ctx, node.lineno, node.col_offset,
                "raw id-offset arithmetic with %r; use "
                "BipartiteGraph.lower_index (or move the conversion into "
                "repro.bigraph)" % name))
            return
