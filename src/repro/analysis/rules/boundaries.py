"""Exception boundaries: no silent catch-everything outside sanctioned sites.

A ``try``/``except Exception`` (or worse, a bare ``except:`` /
``except BaseException``) swallows programming errors — ``KeyError`` from a
typo, ``AttributeError`` from a refactor — and turns them into silently
wrong results.  In a reproduction pipeline that is the most dangerous
failure mode there is: the run *completes* and the numbers are garbage.

Catch-everything handlers are legitimate in exactly two places:

* the :mod:`repro.resilience` package, whose whole job is isolating and
  reporting failures (fault injection, crash-safe writers, checkpointing);
* explicitly sanctioned *boundary sites* — the experiment-suite section
  guards and per-method crash isolation — marked with a
  ``# repro: boundary`` pragma on the ``except`` header line (or the line
  directly above it).  The pragma is an audited opt-in: every such handler
  must re-raise, record the traceback, or otherwise surface the failure.

Everything else must catch specific exception types.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import ModuleContext
from repro.analysis.registry import AnalysisRule, register
from repro.analysis.violations import Violation

__all__ = ["BoundariesRule"]

_BROAD = ("Exception", "BaseException")


def _broad_names(handler: ast.ExceptHandler) -> List[str]:
    """The over-broad classes this handler catches (empty = handler is ok)."""
    node = handler.type
    if node is None:
        return ["<bare except>"]
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in _BROAD:
            names.append(expr.id)
    return names


@register
class BoundariesRule(AnalysisRule):
    """Flag bare/over-broad except handlers outside sanctioned boundaries."""

    name = "exception-boundaries"
    description = ("no bare except / except Exception outside "
                   "repro.resilience or '# repro: boundary' sites")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.in_package("repro.resilience"):
            return
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _broad_names(node)
            if not names or ctx.has_boundary_pragma(node.lineno):
                continue
            out.append(self.violation(
                ctx, node.lineno, node.col_offset,
                "%s swallows programming errors; catch specific types, or "
                "mark a deliberate isolation point with '# repro: boundary'"
                % " / ".join("except %s" % n if n != "<bare except>" else n
                             for n in names)))
        for v in sorted(out):
            yield v
