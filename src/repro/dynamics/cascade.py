"""Departure-cascade (unraveling) simulation — the paper's motivating dynamic.

Section I motivates reinforcement with the *snowball effect*: when vertices
whose engagement falls below a threshold leave the network, their departure
drags neighbors below threshold too, sometimes collapsing the network
entirely (the Friendster post-mortems cited by the paper).  This module makes
that dynamic executable so the examples can show, quantitatively, how
anchoring protects a network:

* :func:`simulate_cascade` removes an initial set of vertices and lets the
  (α,β) engagement thresholds cascade, returning the timeline of departures;
* :func:`resilience_gain` compares the surviving population with and without
  a set of anchored (sponsored) vertices.

The fixed point of the cascade from an empty initial shock is exactly the
(α,β)-core, which ties the simulation back to the model (and is tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Dict, List, Sequence, Set

from repro.abcore.decomposition import validate_degree_constraints
from repro.bigraph.csr import adjacency_arrays
from repro.bigraph.graph import BipartiteGraph

__all__ = ["CascadeResult", "simulate_cascade", "resilience_gain"]


@dataclass
class CascadeResult:
    """Outcome of one departure cascade.

    ``rounds[i]`` holds the vertices that left in wave ``i`` (wave 0 is the
    initial shock, restricted to vertices actually present).
    """

    survivors: Set[int]
    rounds: List[List[int]] = field(default_factory=list)

    @property
    def departed(self) -> int:
        """Total number of vertices that left the network."""
        return sum(len(r) for r in self.rounds)

    @property
    def n_rounds(self) -> int:
        """Number of cascade waves, including the initial shock."""
        return len(self.rounds)


def simulate_cascade(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    initial_departures: Collection[int],
    anchors: Collection[int] = (),
) -> CascadeResult:
    """Remove ``initial_departures`` and cascade the engagement thresholds.

    A non-anchor vertex leaves as soon as its surviving degree falls below
    its layer's threshold (α for upper, β for lower).  Anchors never leave —
    even if named in the initial shock (a sponsored user is retained by
    definition).  Waves are synchronous: all vertices violating after wave
    ``i`` leave together in wave ``i+1``.
    """
    validate_degree_constraints(alpha, beta)
    adjacency = graph.adjacency
    n_upper = graph.n_upper
    anchor_set = set(anchors)

    alive = bytearray(b"\x01") * graph.n_vertices
    arrays = adjacency_arrays(graph)
    if arrays is not None:
        deg = arrays[2].tolist()  # CSR: cached degrees, no row scan
    else:
        deg = [len(row) for row in adjacency]

    shock = [v for v in set(initial_departures)
             if v not in anchor_set and alive[v]]
    rounds: List[List[int]] = []
    wave = shock
    while wave:
        rounds.append(sorted(wave))
        next_wave: Set[int] = set()
        for v in wave:
            alive[v] = 0
        departs = next_wave.add
        for v in wave:  # hot-loop
            for w in adjacency[v]:
                if not alive[w]:
                    continue
                deg[w] -= 1
                if w in anchor_set:
                    continue
                threshold = alpha if w < n_upper else beta
                if deg[w] < threshold:
                    departs(w)
        wave = [w for w in next_wave if alive[w]]
    survivors = {v for v in graph.vertices() if alive[v]}
    return CascadeResult(survivors=survivors, rounds=rounds)


def resilience_gain(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    initial_departures: Collection[int],
    anchors: Collection[int],
) -> Dict[str, int]:
    """Survivor counts for the same shock with and without anchors.

    Returns a dict with ``unprotected``, ``protected`` and ``gain`` (how many
    additional vertices the anchors kept in the network, anchors themselves
    excluded from the count so sponsoring is not double-counted).
    """
    without = simulate_cascade(graph, alpha, beta, initial_departures)
    with_anchors = simulate_cascade(graph, alpha, beta, initial_departures,
                                    anchors)
    anchor_set = set(anchors)
    unprotected = len(without.survivors - anchor_set)
    protected = len(with_anchors.survivors - anchor_set)
    return {
        "unprotected": unprotected,
        "protected": protected,
        "gain": protected - unprotected,
    }
