"""Engagement dynamics: cascades and heterogeneous-threshold equilibria."""

from repro.dynamics.cascade import CascadeResult, resilience_gain, simulate_cascade
from repro.dynamics.engagement import ThresholdProfile, anchored_gain, equilibrium

__all__ = [
    "CascadeResult",
    "ThresholdProfile",
    "anchored_gain",
    "equilibrium",
    "resilience_gain",
    "simulate_cascade",
]
