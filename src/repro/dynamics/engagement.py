"""Engagement equilibria with heterogeneous thresholds.

The anchored-core literature the paper builds on (Bhawalkar & Kleinberg's
unraveling model; Malliaros & Vazirgiannis' engagement dynamics) frames core
membership as a game: each participant stays while at least *their own*
number of neighbors stays.  The (α,β)-core is the special case where every
upper vertex shares one threshold and every lower vertex another.

This module implements the general model:

* :class:`ThresholdProfile` — per-vertex engagement requirements;
* :func:`equilibrium` — the maximal stable set (every member has enough
  members among its neighbors), with optional anchors;
* :func:`anchored_gain` — followers of an anchor set under heterogeneous
  thresholds, generalizing Definition 3.

The maximal stable set is again unique (same fixed-point argument as the
core) and computed by the same peel; uniform profiles reduce *exactly* to
the (α,β)-core, which is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Dict, List, Mapping, Optional, Set, Union

from repro.abcore.decomposition import abcore
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = ["ThresholdProfile", "equilibrium", "anchored_gain"]


@dataclass(frozen=True)
class ThresholdProfile:
    """Per-vertex engagement thresholds.

    ``default_upper`` / ``default_lower`` apply to every vertex of the layer
    unless ``overrides`` names it explicitly.  Thresholds must be ≥ 0
    (0 = the vertex never leaves on its own).
    """

    default_upper: int
    default_lower: int
    overrides: Mapping[int, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.default_upper < 0 or self.default_lower < 0:
            raise InvalidParameterError("default thresholds must be >= 0")
        object.__setattr__(self, "overrides",
                           dict(self.overrides or {}))
        for v, t in self.overrides.items():
            if t < 0:
                raise InvalidParameterError(
                    "threshold of vertex %d must be >= 0, got %d" % (v, t))

    @classmethod
    def uniform(cls, alpha: int, beta: int) -> "ThresholdProfile":
        """The (α,β)-core profile."""
        return cls(default_upper=alpha, default_lower=beta)

    def threshold(self, graph: BipartiteGraph, v: int) -> int:
        override = self.overrides.get(v)
        if override is not None:
            return override
        return self.default_upper if graph.is_upper(v) else self.default_lower


def equilibrium(
    graph: BipartiteGraph,
    profile: ThresholdProfile,
    anchors: Collection[int] = (),
) -> Set[int]:
    """The maximal engagement-stable set under the profile.

    Every member has at least its own threshold of members among its
    neighbors; anchors are unconditionally stable.  Uniform profiles give
    exactly the (anchored) (α,β)-core.
    """
    adjacency = graph.adjacency
    n = graph.n_vertices
    anchor_set = frozenset(anchors)
    thresholds = [profile.threshold(graph, v) for v in range(n)]

    alive = bytearray(b"\x01") * n
    deg = [len(adjacency[v]) for v in range(n)]
    queue: List[int] = []
    for v in range(n):
        if v not in anchor_set and deg[v] < thresholds[v]:
            queue.append(v)
            alive[v] = 0
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        for w in adjacency[v]:
            if not alive[w]:
                continue
            deg[w] -= 1
            if w not in anchor_set and deg[w] < thresholds[w]:
                alive[w] = 0
                queue.append(w)
    return {v for v in range(n) if alive[v]}


def anchored_gain(
    graph: BipartiteGraph,
    profile: ThresholdProfile,
    anchors: Collection[int],
) -> Set[int]:
    """Vertices stabilized by the anchors beyond the plain equilibrium.

    ``equilibrium(G, profile, A) \\ (equilibrium(G, profile) ∪ A)`` —
    Definition 3's followers, generalized to heterogeneous thresholds.
    """
    base = equilibrium(graph, profile)
    anchored = equilibrium(graph, profile, anchors)
    return anchored - base - set(anchors)
