"""Reinforcement-as-a-service: a supervised, fault-tolerant campaign server.

Load a graph once, serve many ``reinforce`` jobs against it — with
priority/deadline queueing, byte-budget admission control, per-job
checkpointed retries, poison-job quarantine, request coalescing over the
byte-identity result cache (with a checksummed on-disk tier that survives
restarts), batched dispatch of same-``(α, β)`` jobs onto a shared warm
substrate, and graceful SIGTERM drain with restart recovery.  Pure
stdlib (``threading`` + a condition-variable queue); no
web framework.  See ``docs/SERVICE.md`` for the architecture and the
failure-mode table, and ``tests/test_service_faults.py`` for the
deterministic chaos suite that exercises every degradation path.

In-process use::

    from repro.service import CampaignService, JobSpec

    with CampaignService(graph, workers=2) as service:
        handle = service.submit(JobSpec(alpha=2, beta=2, b1=3, b2=3))
        result = handle.result()

Command line: ``python -m repro.service --input graph.txt --jobs jobs.json``.
"""

from __future__ import annotations

from repro.service.batching import BatchScheduler
from repro.service.cache import DiskCacheTier, ResultCache
from repro.service.jobs import (
    FailureRecord,
    Job,
    JobHandle,
    JobSpec,
    JobState,
    cache_key,
)
from repro.service.queue import AdmissionController, JobQueue
from repro.service.server import CampaignService
from repro.service.supervisor import JobSupervisor

__all__ = [
    "AdmissionController",
    "BatchScheduler",
    "CampaignService",
    "DiskCacheTier",
    "FailureRecord",
    "Job",
    "JobHandle",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobSupervisor",
    "ResultCache",
    "cache_key",
]
