"""Result cache with request coalescing for the campaign service.

The byte-identity invariant makes caching trivially sound: two jobs whose
:func:`~repro.service.jobs.cache_key` match are *guaranteed* the same
canonical result, whatever execution strategy (workers, shards, resume
path) either would have used.  The cache therefore has two layers:

* **completed** — key → finished :class:`AnchoredCoreResult`.  Only clean
  results are stored: anything ``interrupted`` or ``timed_out`` is a
  partial answer and must not shadow a future full run.
* **in-flight** — key → the queued/running :class:`Job`.  A second
  submission of an identical spec gets a handle onto the *existing* job
  instead of a duplicate campaign (request coalescing); the entry is
  released when the job reaches a terminal state.

Thread safety: one lock around both indexes; every method is a short
critical section and never calls back into service code.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.core.result import AnchoredCoreResult
from repro.service.jobs import Job

__all__ = ["ResultCache"]


class ResultCache:
    """Completed-result memo plus in-flight coalescing index."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._completed: Dict[Tuple[object, ...], AnchoredCoreResult] = {}
        self._inflight: Dict[Tuple[object, ...], Job] = {}
        self._hits = 0
        self._coalesced = 0

    def lookup(self, key: Tuple[object, ...]) -> Optional[AnchoredCoreResult]:
        """A previously completed clean result for ``key``, if any."""
        with self._lock:
            result = self._completed.get(key)
            if result is not None:
                self._hits += 1
            return result

    def claim_inflight(self, key: Tuple[object, ...],
                       job: Job) -> Optional[Job]:
        """Register ``job`` as the runner for ``key``, or coalesce.

        Returns the already-registered job when one exists (the caller
        should hand out a handle to *that* job and discard ``job``), else
        registers ``job`` and returns None.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._coalesced += 1
                return existing
            self._inflight[key] = job
            return None

    def release(self, key: Tuple[object, ...], job: Job) -> None:
        """Drop the in-flight entry for ``key`` if ``job`` still owns it."""
        with self._lock:
            if self._inflight.get(key) is job:
                del self._inflight[key]

    def store(self, key: Tuple[object, ...],
              result: AnchoredCoreResult) -> None:
        """Memoize a finished result; partial answers are refused here.

        The caller filters, but this guards the invariant anyway: an
        ``interrupted`` or ``timed_out`` result is silently not cached.
        """
        if result.interrupted or result.timed_out:
            return
        with self._lock:
            self._completed[key] = result

    def stats(self) -> Dict[str, int]:
        """Counters for ``CampaignService.stats()``."""
        with self._lock:
            return {"completed": len(self._completed),
                    "inflight": len(self._inflight),
                    "hits": self._hits,
                    "coalesced": self._coalesced}
