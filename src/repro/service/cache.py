"""Result cache with request coalescing and an optional persistent tier.

The byte-identity invariant makes caching trivially sound: two jobs whose
:func:`~repro.service.jobs.cache_key` match are *guaranteed* the same
canonical result, whatever execution strategy (workers, shards, resume
path) either would have used.  The cache therefore has three layers:

* **completed** — key → finished :class:`AnchoredCoreResult`.  Only clean
  results are stored: anything ``interrupted`` or ``timed_out`` is a
  partial answer and must not shadow a future full run.
* **in-flight** — key → the queued/running :class:`Job`.  A second
  submission of an identical spec gets a handle onto the *existing* job
  instead of a duplicate campaign (request coalescing); the entry is
  released when the job reaches a terminal state.
* **disk** (optional) — a :class:`DiskCacheTier` under the service state
  directory.  Results (and the batch scheduler's warm verification seeds)
  are written through as checksummed JSON envelopes so cache hits survive
  a service restart.  Every read validates schema, key, and checksum; any
  mismatch — a torn write, a flipped bit, a stale schema — degrades to a
  cache *miss*, never a wrong result.  Writes go through the atomic
  writer from :mod:`repro.resilience` with bounded retry, and carry the
  ``service.cache_persist`` fault site for chaos coverage; a failed write
  leaves the in-memory cache authoritative (the tier is best-effort).

Thread safety: one lock around the in-memory indexes; the disk tier keeps
its own lock for its counters.  No method calls back into service code.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.core.result import AnchoredCoreResult
from repro.resilience.atomic import atomic_write_text
from repro.resilience.faults import fault_site
from repro.resilience.checkpoint import CHECKPOINT_WRITE_BACKOFF
from repro.resilience.retry import retry
from repro.service.jobs import Job

__all__ = ["ResultCache", "DiskCacheTier", "CACHE_SCHEMA"]

#: Envelope schema tag; bump on any incompatible layout change so stale
#: files from older builds read as cold-cache misses, not decode errors.
CACHE_SCHEMA = "service-cache-1"


def _canonical(payload: object) -> str:
    """Deterministic JSON serialization (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DiskCacheTier:
    """Checksummed on-disk key/value store for cache entries.

    Entries live under ``root`` as ``<kind>-<sha256(key)>.json`` files,
    each a ``{schema, checksum, payload}`` envelope whose payload embeds
    the full key.  The filename hash routes lookups; the embedded key is
    what is *trusted* — a hash collision or a file copied between state
    directories reads as a miss, never as another key's value.
    """

    def __init__(self, root: str,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.root = root
        self._sleep = sleep
        self._lock = threading.Lock()
        self._stores = 0
        self._loads = 0
        self._corrupt = 0
        self._write_errors = 0
        os.makedirs(root, exist_ok=True)

    # -- paths -----------------------------------------------------------

    def _path(self, kind: str, key: object) -> str:
        digest = _checksum(_canonical(key))
        return os.path.join(self.root, "%s-%s.json" % (kind, digest))

    # -- write path ------------------------------------------------------

    def store(self, kind: str, key: object, payload: object) -> bool:
        """Persist ``payload`` under ``(kind, key)``; best-effort.

        Returns False (and counts the error) when the write fails for any
        reason — the caller's in-memory copy stays authoritative and the
        service keeps running on a memory-only cache.
        """
        envelope_payload = {"kind": kind, "key": key, "value": payload}
        body = _canonical(envelope_payload)
        envelope = _canonical({"schema": CACHE_SCHEMA,
                               "checksum": _checksum(body),
                               "payload": envelope_payload})
        path = self._path(kind, key)

        def _write() -> None:
            fault_site("service.cache_persist")
            atomic_write_text(path, envelope + "\n")

        try:
            retry(_write, CHECKPOINT_WRITE_BACKOFF, retry_on=(OSError,),
                  sleep=self._sleep)
        # repro: boundary — FaultInjected, exhausted OSError retries, unserializable payloads all degrade to "not persisted"
        except Exception:
            with self._lock:
                self._write_errors += 1
            return False
        with self._lock:
            self._stores += 1
        return True

    # -- read path -------------------------------------------------------

    def load(self, kind: str, key: object) -> Optional[object]:
        """The persisted payload for ``(kind, key)``, or None.

        Any validation failure — unreadable file, wrong schema, checksum
        mismatch (torn write), embedded-key mismatch — counts as corrupt
        and returns None: cold cache, never a wrong result.
        """
        path = self._path(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            with self._lock:
                self._corrupt += 1
            return None
        try:
            if envelope["schema"] != CACHE_SCHEMA:
                raise ValueError("schema mismatch")
            payload = envelope["payload"]
            if envelope["checksum"] != _checksum(_canonical(payload)):
                raise ValueError("checksum mismatch")
            if payload["kind"] != kind or payload["key"] != _round_trip(key):
                raise ValueError("key mismatch")
            value = payload["value"]
        except (KeyError, TypeError, ValueError):
            with self._lock:
                self._corrupt += 1
            return None
        with self._lock:
            self._loads += 1
        return value

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"stores": self._stores,
                    "loads": self._loads,
                    "corrupt": self._corrupt,
                    "write_errors": self._write_errors}


def _round_trip(key: object) -> object:
    """``key`` as JSON would give it back (tuples become lists)."""
    return json.loads(_canonical(key))


class ResultCache:
    """Completed-result memo plus in-flight coalescing index.

    With ``persist`` set, clean results are written through to the disk
    tier and ``lookup`` falls back to it on an in-memory miss, so the hit
    rate survives restarts.  Persisted results that fail to reconstruct
    (or are flagged partial) are treated as misses.
    """

    def __init__(self, persist: Optional[DiskCacheTier] = None) -> None:
        self._lock = threading.Lock()
        self._completed: Dict[Tuple[object, ...], AnchoredCoreResult] = {}
        self._inflight: Dict[Tuple[object, ...], Job] = {}
        self._persist = persist
        self._hits = 0
        self._disk_hits = 0
        self._coalesced = 0

    def lookup(self, key: Tuple[object, ...]) -> Optional[AnchoredCoreResult]:
        """A previously completed clean result for ``key``, if any."""
        with self._lock:
            result = self._completed.get(key)
            if result is not None:
                self._hits += 1
                return result
        if self._persist is None:
            return None
        payload = self._persist.load("result", list(key))
        if payload is None:
            return None
        from repro.experiments.export import result_from_dict

        try:
            result = result_from_dict(payload)  # type: ignore[arg-type]
        # repro: boundary — a persisted result that cannot be rebuilt is a cache miss, never an error
        except Exception:
            return None
        if result.interrupted or result.timed_out:
            return None
        with self._lock:
            self._completed.setdefault(key, result)
            self._hits += 1
            self._disk_hits += 1
        return result

    def claim_inflight(self, key: Tuple[object, ...],
                       job: Job) -> Optional[Job]:
        """Register ``job`` as the runner for ``key``, or coalesce.

        Returns the already-registered job when one exists (the caller
        should hand out a handle to *that* job and discard ``job``), else
        registers ``job`` and returns None.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._coalesced += 1
                return existing
            self._inflight[key] = job
            return None

    def release(self, key: Tuple[object, ...], job: Job) -> None:
        """Drop the in-flight entry for ``key`` if ``job`` still owns it."""
        with self._lock:
            if self._inflight.get(key) is job:
                del self._inflight[key]

    def store(self, key: Tuple[object, ...],
              result: AnchoredCoreResult) -> None:
        """Memoize a finished result; partial answers are refused here.

        The caller filters, but this guards the invariant anyway: an
        ``interrupted`` or ``timed_out`` result is silently not cached.
        """
        if result.interrupted or result.timed_out:
            return
        with self._lock:
            self._completed[key] = result
        if self._persist is not None:
            from repro.experiments.export import result_to_dict

            self._persist.store("result", list(key), result_to_dict(result))

    def stats(self) -> Dict[str, int]:
        """Counters for ``CampaignService.stats()``."""
        with self._lock:
            stats = {"completed": len(self._completed),
                     "inflight": len(self._inflight),
                     "hits": self._hits,
                     "disk_hits": self._disk_hits,
                     "coalesced": self._coalesced}
        if self._persist is not None:
            for name, value in self._persist.stats().items():
                stats["disk_" + name] = value
        return stats
