"""Batch scheduling: group compatible queued jobs onto shared contexts.

The campaign service runs every job against the *same* graph, so any two
queued engine-family jobs with the same ``(α, β)`` can share the whole
(α, β)-invariant substrate — deletion-order seed, base core, CSR follower
kernel, warm verification tables — through one
:class:`repro.core.batch.SharedCampaignContext`.  :class:`BatchScheduler`
is the service-side registry of those contexts:

* **acquire/release** — refcounted checkout of the context for a job's
  ``(α, β)``; contexts are built lazily on first use and kept in an LRU
  registry (refcount-0 entries beyond ``max_contexts`` are closed).
* **choose** — the queue's dispatch hook.  Among the pending jobs *of the
  head job's priority class* it prefers one whose context is already warm
  or checked out, so same-``(α, β)`` jobs run back-to-back and reuse the
  seed while it is hot.  Priority order is untouched: a lower-priority
  job is never chosen over a higher-priority one; within a class the
  regrouping only changes FIFO order among jobs that were already equally
  eligible.
* **persistence** — warm seeds are written through the service's
  :class:`~repro.service.cache.DiskCacheTier` on release/close and
  restored on the next build, so a restarted service starts with warm
  verification tables (validated by checksum; corruption degrades to a
  cold context).

Soundness: sharing is *transparent* — the context serves only values an
engine run would have computed identically itself (see
``docs/PERF.md``), so batching never changes result bytes, and admission
control / quarantine semantics are untouched (a job whose context
acquisition fails simply runs cold).  Jobs outside the engine family, or
sharded jobs (per-shard state), are ineligible and run exactly as before.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bigraph.graph import BipartiteGraph
from repro.core.api import CHECKPOINTABLE_METHODS
from repro.core.batch import SharedCampaignContext
from repro.service.cache import DiskCacheTier
from repro.service.jobs import Job, JobSpec

__all__ = ["BatchScheduler", "DEFAULT_MAX_CONTEXTS"]

#: How many idle (refcount-0) contexts the registry keeps warm at once.
DEFAULT_MAX_CONTEXTS = 4


class _Entry:
    """One registered context plus its checkout bookkeeping."""

    __slots__ = ("context", "refs", "persisted")

    def __init__(self, context: SharedCampaignContext) -> None:
        self.context = context
        self.refs = 0
        self.persisted = False


class BatchScheduler:
    """Refcounted ``(α, β)`` → shared-context registry for one service."""

    def __init__(self, graph: BipartiteGraph, fingerprint: str,
                 persist: Optional[DiskCacheTier] = None,
                 max_contexts: int = DEFAULT_MAX_CONTEXTS) -> None:
        self._graph = graph
        self._fingerprint = fingerprint
        self._persist = persist
        self._max_contexts = max(1, max_contexts)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, int], _Entry]" = OrderedDict()
        self._closed = False
        self._hits = 0
        self._builds = 0
        self._evictions = 0
        self._seed_restores = 0
        self._grouped = 0

    # ------------------------------------------------------------------
    # Eligibility and checkout
    # ------------------------------------------------------------------

    @staticmethod
    def eligible(spec: JobSpec) -> bool:
        """Whether a spec can run against a shared context.

        Engine-family methods only (the baselines have no substrate to
        share), and unsharded only (the sharded substrate builds
        per-shard state and ignores contexts).
        """
        return spec.method in CHECKPOINTABLE_METHODS and spec.shards is None

    def acquire(self, spec: JobSpec) -> Optional[SharedCampaignContext]:
        """Check out the shared context for ``spec``, or None if ineligible.

        Builds the context on first use for its ``(α, β)`` — restoring a
        persisted seed when the disk tier has a valid one — and bumps its
        refcount; the caller must :meth:`release` it in a ``finally``.
        """
        if not self.eligible(spec):
            return None
        key = (spec.alpha, spec.beta)
        with self._lock:
            if self._closed:
                return None
            entry = self._entries.get(key)
            if entry is None:
                context = SharedCampaignContext(
                    self._graph, spec.alpha, spec.beta)
                if self._restore_seed(context):
                    self._seed_restores += 1
                entry = _Entry(context)
                self._entries[key] = entry
                self._builds += 1
                self._evict_idle()
            else:
                self._hits += 1
            entry.refs += 1
            self._entries.move_to_end(key)
            return entry.context

    def release(self, spec: JobSpec,
                context: Optional[SharedCampaignContext]) -> None:
        """Return a checked-out context; persists its seed once warm."""
        if context is None:
            return
        key = (spec.alpha, spec.beta)
        persist_entry: Optional[_Entry] = None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.context is not context:
                # Evicted while checked out (registry pressure): the
                # borrower was the last user; close it now.
                context.close()
                return
            entry.refs = max(0, entry.refs - 1)
            if not entry.persisted and self._persist is not None:
                persist_entry = entry
        if persist_entry is not None:
            self._persist_seed(persist_entry)

    # ------------------------------------------------------------------
    # Dispatch grouping
    # ------------------------------------------------------------------

    def choose(self, jobs: Sequence[Job]) -> Optional[Job]:
        """Pick the next job to dispatch from the pending list.

        ``jobs`` arrive in strict dispatch order (priority, then FIFO).
        Only the head job's priority class is considered, so a warm
        context never promotes a job over a higher-priority one.  Within
        that class, the first job whose ``(α, β)`` context is already
        registered wins; otherwise the head runs (and its context becomes
        the warm one for the jobs behind it).
        """
        if not jobs:
            return None
        head = jobs[0]
        with self._lock:
            if self._closed or not self._entries:
                return head
            for job in jobs:
                if job.spec.priority != head.spec.priority:
                    break
                if self.eligible(job.spec) \
                        and (job.spec.alpha, job.spec.beta) in self._entries:
                    if job is not head:
                        self._grouped += 1
                    return job
        return head

    # ------------------------------------------------------------------
    # Seed persistence
    # ------------------------------------------------------------------

    def _seed_key(self, alpha: int, beta: int) -> List[object]:
        return [self._fingerprint, alpha, beta]

    def _restore_seed(self, context: SharedCampaignContext) -> bool:
        """Install a persisted seed into a freshly built context."""
        if self._persist is None:
            return False
        payload = self._persist.load(
            "seed", self._seed_key(context.alpha, context.beta))
        if payload is None:
            return False
        try:
            return context.install_seed_payload(payload)  # type: ignore[arg-type]
        # repro: boundary — a malformed persisted seed degrades to a cold context, never an error
        except Exception:
            return False

    def _persist_seed(self, entry: _Entry) -> None:
        """Write-through a warm seed; no-op while the context is cold."""
        if self._persist is None or entry.persisted:
            return
        payload = entry.context.seed_payload()
        if payload is None:
            return
        key = self._seed_key(entry.context.alpha, entry.context.beta)
        if self._persist.store("seed", key, payload):
            entry.persisted = True

    # ------------------------------------------------------------------
    # Lifecycle / diagnostics
    # ------------------------------------------------------------------

    def _evict_idle(self) -> None:
        """Close oldest refcount-0 contexts beyond the cap (lock held)."""
        while len(self._entries) > self._max_contexts:
            victim_key = None
            for key, entry in self._entries.items():
                if entry.refs == 0:
                    victim_key = key
                    break
            if victim_key is None:
                return
            entry = self._entries.pop(victim_key)
            self._evictions += 1
            # Persist outside the lock is nicer, but eviction only
            # happens under registry pressure and the payload build is
            # pure in-memory work; keep the invariant simple.
            self._persist_seed(entry)
            entry.context.close()

    def close(self) -> None:
        """Persist every warm seed and close all registered contexts."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            self._persist_seed(entry)
            entry.context.close()

    def stats(self) -> Dict[str, object]:
        """Counters for ``CampaignService.stats()``."""
        with self._lock:
            return {
                "contexts": len(self._entries),
                "hits": self._hits,
                "builds": self._builds,
                "evictions": self._evictions,
                "seed_restores": self._seed_restores,
                "grouped": self._grouped,
                "warm": sorted(key for key, entry in self._entries.items()
                               if entry.context.seed_payload() is not None),
            }
