"""Admission control and the persistent priority queue of pending jobs.

Two cooperating pieces:

* :class:`AdmissionController` — decides, from the graph's measured
  :func:`~repro.bigraph.stats.memory_footprint` and a configurable byte
  budget, how many jobs may *enter* the queue (``admit``) and how many may
  *run* at once (``dispatch_allowed``).  The resident/mapped split is the
  whole point: a memmap-backed graph charges only a fraction of its bytes
  against the budget (the OS can evict those pages under pressure), so an
  out-of-core service admits far more concurrency than a resident one on
  the same budget.  The controller throttles by refusing admissions and
  delaying dispatch — it never kills in-flight work.
* :class:`JobQueue` — a heap ordered by (priority desc, submission order),
  with a condition variable for worker threads and crash-safe checksummed
  JSON persistence (:func:`save_queue_state` / :func:`load_queue_state`)
  so a drained service restarts with its backlog intact.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import AdmissionError, InvalidParameterError, ServiceError
from repro.resilience.atomic import atomic_write_text
from repro.resilience.retry import Backoff, retry
from repro.service.jobs import Job, JobState

__all__ = ["AdmissionController", "JobQueue", "QUEUE_SCHEMA",
           "DEFAULT_JOB_COST_BYTES", "DEFAULT_MAPPED_FRACTION",
           "save_queue_state", "load_queue_state"]

#: Schema marker of the persisted queue file; loaders reject others.
QUEUE_SCHEMA = "service-queue-1"

#: Default per-job working-set estimate: order state, candidate pools,
#: memoization cache for a mid-sized campaign.  Deliberately conservative;
#: override per service for tiny test graphs or huge campaigns.
DEFAULT_JOB_COST_BYTES = 32 << 20

#: Fraction of mapped (pageable) graph bytes charged against the budget.
DEFAULT_MAPPED_FRACTION = 0.25


class AdmissionController:
    """Byte-budgeted gatekeeper for the campaign service.

    ``budget_bytes=None`` disables memory gating (admission still enforces
    ``max_pending``).  With a budget, the graph's charged cost is
    ``resident_bytes + mapped_fraction * mapped_bytes`` and each running
    job charges ``job_cost_bytes`` of headroom; :meth:`max_concurrent`
    never reports less than 1, so a budget smaller than the graph itself
    degrades to strictly serial execution instead of wedging the queue.
    """

    def __init__(self, footprint: Dict[str, object],
                 budget_bytes: Optional[int] = None,
                 max_pending: int = 64,
                 job_cost_bytes: int = DEFAULT_JOB_COST_BYTES,
                 mapped_fraction: float = DEFAULT_MAPPED_FRACTION) -> None:
        if max_pending < 1:
            raise InvalidParameterError(
                "max_pending must be >= 1, got %d" % max_pending)
        if job_cost_bytes < 1:
            raise InvalidParameterError(
                "job_cost_bytes must be >= 1, got %d" % job_cost_bytes)
        if not 0.0 <= mapped_fraction <= 1.0:
            raise InvalidParameterError(
                "mapped_fraction must be in [0, 1], got %r" % mapped_fraction)
        if budget_bytes is not None and budget_bytes < 1:
            raise InvalidParameterError(
                "budget_bytes must be >= 1 or None, got %d" % budget_bytes)
        self.resident_bytes = int(footprint["resident_bytes"])  # type: ignore[arg-type]
        self.mapped_bytes = int(footprint["mapped_bytes"])  # type: ignore[arg-type]
        self.budget_bytes = budget_bytes
        self.max_pending = max_pending
        self.job_cost_bytes = job_cost_bytes
        self.mapped_fraction = mapped_fraction

    def graph_cost(self) -> int:
        """Bytes the loaded graph charges against the budget."""
        return self.resident_bytes + int(
            self.mapped_bytes * self.mapped_fraction)

    def max_concurrent(self) -> int:
        """How many jobs may run at once under the budget (always >= 1)."""
        if self.budget_bytes is None:
            return 1 << 30
        headroom = self.budget_bytes - self.graph_cost()
        return max(1, headroom // self.job_cost_bytes)

    def admit(self, n_pending: int) -> None:
        """Gate a submission; raises :class:`AdmissionError` when full."""
        if n_pending >= self.max_pending:
            raise AdmissionError(
                "pending queue is full (%d jobs, limit %d); resubmit after "
                "the backlog drains" % (n_pending, self.max_pending))

    def dispatch_allowed(self, n_running: int) -> bool:
        """Whether one more job may start with ``n_running`` in flight."""
        return n_running < self.max_concurrent()

    def describe(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``CampaignService.stats()``."""
        return {
            "budget_bytes": self.budget_bytes,
            "graph_cost_bytes": self.graph_cost(),
            "resident_bytes": self.resident_bytes,
            "mapped_bytes": self.mapped_bytes,
            "mapped_fraction": self.mapped_fraction,
            "job_cost_bytes": self.job_cost_bytes,
            "max_pending": self.max_pending,
            "max_concurrent": min(self.max_concurrent(), 1 << 30),
        }


class JobQueue:
    """Priority-ordered pending jobs with worker wakeup.

    Ordering is ``(-priority, submission sequence)`` — strict priority,
    FIFO within a class — which keeps dispatch deterministic for the
    chaos suite.  Cancelled jobs are lazily discarded at claim time.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Job]] = []
        self._cond = threading.Condition()
        self._seq = 0

    def __len__(self) -> int:
        with self._cond:
            return sum(1 for _, _, job in self._heap
                       if job.state == JobState.PENDING)

    def push(self, job: Job) -> None:
        """Enqueue a pending job and wake one waiting worker."""
        with self._cond:
            heapq.heappush(self._heap, (-job.spec.priority, self._seq, job))
            self._seq += 1
            self._cond.notify_all()

    def claim(self, can_dispatch: Callable[[], bool],
              stop: "threading.Event",
              timeout: Optional[float] = None,
              choose: Optional[Callable[[List[Job]], Optional[Job]]] = None,
              ) -> Optional[Job]:
        """Pop the highest-priority pending job, or None.

        Returns None immediately when ``stop`` is set (drain), when the
        queue is empty and ``timeout`` is 0, or after ``timeout`` seconds
        of waiting.  ``can_dispatch`` re-evaluates under the lock each
        wakeup, so admission-control dispatch gating composes with the
        wait loop without a race.

        ``choose``, when given, is offered the pending jobs in dispatch
        order and may return any of them instead of the head — the batch
        scheduler uses this to group same-``(α, β)`` jobs.  A None or
        foreign return falls back to the head, so a buggy chooser can
        reorder dispatch but never lose or invent a job.
        """
        deadline = (time.monotonic() + timeout) if timeout else None
        with self._cond:
            while True:
                if stop.is_set():
                    return None
                while self._heap and \
                        self._heap[0][2].state != JobState.PENDING:
                    heapq.heappop(self._heap)
                if self._heap and can_dispatch():
                    if choose is not None:
                        picked = self._pick(choose)
                        if picked is not None:
                            return picked
                    return heapq.heappop(self._heap)[2]
                if timeout is not None and timeout <= 0:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._cond.wait(remaining)

    def _pick(self, choose: Callable[[List[Job]], Optional[Job]]
              ) -> Optional[Job]:
        """Apply a dispatch chooser under the lock; None means use the head.

        The chosen job is removed by identity and the heap re-established,
        so the remaining jobs keep their exact dispatch order.
        """
        entries = sorted(e for e in self._heap
                         if e[2].state == JobState.PENDING)
        chosen = choose([job for _, _, job in entries])
        if chosen is None or all(job is not chosen for _, _, job in entries):
            return None
        self._heap = [e for e in self._heap if e[2] is not chosen]
        heapq.heapify(self._heap)
        return chosen

    def notify(self) -> None:
        """Wake every waiting worker (drain requested / a job finished)."""
        with self._cond:
            self._cond.notify_all()

    def pending(self) -> List[Job]:
        """Snapshot of pending jobs in dispatch order."""
        with self._cond:
            entries = sorted(e for e in self._heap
                             if e[2].state == JobState.PENDING)
            return [job for _, _, job in entries]


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict[str, object]) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def save_queue_state(path: str, fingerprint: str, next_job_id: int,
                     jobs: List[Job],
                     backoff: Optional[Backoff] = None,
                     sleep: Callable[[float], None] = time.sleep) -> None:
    """Persist the pending backlog for restart recovery.

    Same envelope discipline as campaign checkpoints: checksummed sorted
    JSON, atomic replace, transient ``OSError`` retried with deterministic
    backoff.  ``jobs`` should be the pending queue plus any
    drain-interrupted running jobs (their checkpoints make them resumable).
    """
    payload: Dict[str, object] = {
        "graph_fingerprint": fingerprint,
        "next_job_id": next_job_id,
        "pending": [job.to_payload() for job in jobs],
    }
    envelope = {
        "schema": QUEUE_SCHEMA,
        "checksum": _checksum(payload),
        "payload": payload,
    }
    text = json.dumps(envelope, indent=2, sort_keys=True) + "\n"

    def _write() -> None:
        atomic_write_text(path, text)

    from repro.resilience.checkpoint import CHECKPOINT_WRITE_BACKOFF

    retry(_write, backoff=backoff or CHECKPOINT_WRITE_BACKOFF,
          retry_on=(OSError,), sleep=sleep)


def load_queue_state(
        path: str) -> Tuple[str, int, List[Dict[str, object]]]:
    """Read a persisted queue file; returns (fingerprint, next id, jobs).

    Raises :class:`ServiceError` for unreadable, corrupt, or
    wrong-schema files — a service refuses to guess at its backlog.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except OSError as error:
        raise ServiceError(
            "cannot read service queue state %s: %s" % (path, error)
        ) from error
    except json.JSONDecodeError as error:
        raise ServiceError(
            "service queue state %s is not valid JSON (truncated write?): %s"
            % (path, error)) from error
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise ServiceError(
            "service queue state %s has no payload envelope" % path)
    if envelope.get("schema") != QUEUE_SCHEMA:
        raise ServiceError(
            "service queue state %s has schema %r; this build reads %r"
            % (path, envelope.get("schema"), QUEUE_SCHEMA))
    payload = envelope["payload"]
    if envelope.get("checksum") != _checksum(payload):
        raise ServiceError(
            "service queue state %s failed its checksum; the file is corrupt"
            % path)
    try:
        return (str(payload["graph_fingerprint"]),
                int(payload["next_job_id"]),
                list(payload["pending"]))
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(
            "malformed service queue payload: %s" % error) from error
