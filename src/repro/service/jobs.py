"""Job model for the campaign service: specs, states, handles, failures.

A *job* is one ``reinforce`` request flowing through
:class:`repro.service.CampaignService`.  The split mirrors the rest of the
repository's persistence design:

* :class:`JobSpec` — the immutable problem statement (parameters plus
  queueing metadata: priority and a relative deadline).  JSON-safe via
  ``to_payload``/``from_payload`` so the pending queue survives restarts.
* :class:`Job` — the service-owned mutable record: state machine, attempt
  counter, per-attempt :class:`FailureRecord` log, checkpoint path, and a
  ``threading.Event`` that fires exactly once when the job reaches a
  terminal state.
* :class:`JobHandle` — the caller's read-only view.  ``result()`` blocks
  until terminal and either returns the
  :class:`~repro.core.result.AnchoredCoreResult` or raises
  :class:`~repro.exceptions.QuarantinedJobError` carrying the full
  failure log.

State machine (terminal states underlined)::

    pending -> running -> completed
       |          |-----> quarantined      (attempts exhausted / poison)
       |          '-----> pending          (worker died; requeued)
       '--------> cancelled                (caller withdrew a pending job)

Timestamps (``submitted_at``, ``last_beat``, ``FailureRecord.at``) are on
the *service clock* — injectable, monotonic by default — so they order
events within one service lifetime; they are not wall-clock times.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.api import METHODS, PARALLEL_METHODS
from repro.core.result import AnchoredCoreResult
from repro.exceptions import (
    InvalidParameterError,
    QuarantinedJobError,
    ServiceError,
)

__all__ = ["JobSpec", "JobState", "FailureRecord", "Job", "JobHandle",
           "cache_key"]


class JobState:
    """String constants for the job lifecycle (see the module diagram)."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    QUARANTINED = "quarantined"
    CANCELLED = "cancelled"

    #: States from which a job never moves again.
    TERMINAL = (COMPLETED, QUARANTINED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One immutable ``reinforce`` request plus its queueing metadata.

    ``priority`` orders the pending queue (higher first, FIFO within a
    priority).  ``deadline`` is *relative*: seconds from submission on the
    service clock; a job still pending when it expires is quarantined at
    dispatch instead of running late.  After a service restart the
    deadline restarts from the restore time — relative deadlines are the
    only kind that survive a monotonic-clock epoch change.
    """

    alpha: int
    beta: int
    b1: int
    b2: int
    method: str = "filver++"
    t: int = 5
    seed: Optional[int] = None
    time_limit: Optional[float] = None
    workers: int = 1
    shards: Optional[int] = None
    priority: int = 0
    deadline: Optional[float] = None

    def validate(self) -> None:
        """Reject specs that could never be dispatched.

        Full problem validation against the graph
        (:func:`repro.bigraph.validation.validate_problem`) happens at
        submission; this checks only graph-independent fields.
        """
        if self.method not in METHODS:
            raise InvalidParameterError(
                "unknown method %r; expected one of %s"
                % (self.method, ", ".join(METHODS)))
        if self.workers < 1:
            raise InvalidParameterError(
                "workers must be >= 1, got %d" % self.workers)
        if self.workers > 1 and self.method not in PARALLEL_METHODS:
            raise InvalidParameterError(
                "workers > 1 is only supported by %s, not %r"
                % (", ".join(PARALLEL_METHODS), self.method))
        if self.deadline is not None and self.deadline <= 0:
            raise InvalidParameterError(
                "deadline must be positive seconds, got %r" % self.deadline)
        if self.time_limit is not None and self.time_limit <= 0:
            raise InvalidParameterError(
                "time_limit must be positive seconds, got %r"
                % self.time_limit)

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict for queue persistence."""
        return {
            "alpha": self.alpha, "beta": self.beta,
            "b1": self.b1, "b2": self.b2,
            "method": self.method, "t": self.t, "seed": self.seed,
            "time_limit": self.time_limit, "workers": self.workers,
            "shards": self.shards, "priority": self.priority,
            "deadline": self.deadline,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "JobSpec":
        """Rebuild a spec from a parsed payload dict (extra keys rejected)."""
        try:
            known = {f: payload[f] for f in ("alpha", "beta", "b1", "b2")}
            optional = {f: payload[f] for f in (
                "method", "t", "seed", "time_limit", "workers", "shards",
                "priority", "deadline") if f in payload}
            unknown = set(payload) - set(known) - set(optional)
            if unknown:
                raise ServiceError(
                    "unknown job spec fields: %s" % ", ".join(sorted(unknown)))
            return cls(**dict(known, **optional))  # type: ignore[arg-type]
        except KeyError as error:
            raise ServiceError(
                "job spec payload is missing field %s" % error) from error


def cache_key(fingerprint: str, spec: JobSpec) -> Tuple[object, ...]:
    """The result-cache identity of a job.

    Everything that can change the canonical result bytes is in the key:
    the graph fingerprint, the problem parameters, the method and its
    ``t``/``seed`` knobs, and ``time_limit`` (a timed-out partial result
    differs from a full one).  Deliberately *excluded* are ``workers``,
    ``shards``, ``priority``, and ``deadline`` — the byte-identity
    invariant guarantees execution strategy never changes the answer, so
    a serial and an 8-worker request for the same problem coalesce.
    """
    return (fingerprint, spec.alpha, spec.beta, spec.b1, spec.b2,
            spec.method, spec.t, spec.seed, spec.time_limit)


@dataclass
class FailureRecord:
    """One failed attempt (or supervision event) of one job.

    ``stage`` names where the failure struck: ``"dispatch"`` (before the
    engine started), ``"execute"`` (inside the engine), ``"result"``
    (posting the finished result), ``"worker"`` (the worker thread died),
    or ``"deadline"`` (the job expired while queued).
    """

    attempt: int
    stage: str
    error: str
    traceback: str = ""
    at: float = 0.0

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict for queue/quarantine persistence."""
        return {"attempt": self.attempt, "stage": self.stage,
                "error": self.error, "traceback": self.traceback,
                "at": self.at}

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FailureRecord":
        """Rebuild a record from a parsed payload dict."""
        try:
            return cls(attempt=int(payload["attempt"]),  # type: ignore[arg-type]
                       stage=str(payload["stage"]),
                       error=str(payload.get("error", "")),
                       traceback=str(payload.get("traceback", "")),
                       at=float(payload.get("at", 0.0)))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(
                "malformed failure record payload: %s" % error) from error


class Job:
    """Service-internal mutable record of one submitted job.

    Owned by the :class:`~repro.service.CampaignService`; callers only see
    it through :class:`JobHandle`.  All mutation happens on the thread
    currently running the job (or the submitting thread, pre-dispatch);
    the ``done`` event is the cross-thread publication point.
    """

    def __init__(self, job_id: int, spec: JobSpec, submitted_at: float = 0.0,
                 deadline_at: Optional[float] = None,
                 checkpoint_path: Optional[str] = None) -> None:
        self.job_id = job_id
        self.spec = spec
        self.state = JobState.PENDING
        self.attempts = 0
        self.failures: List[FailureRecord] = []
        self.checkpoint_path = checkpoint_path
        self.submitted_at = submitted_at
        self.deadline_at = deadline_at
        self.last_beat = submitted_at
        self.result: Optional[AnchoredCoreResult] = None
        self.done = threading.Event()

    def beat(self, now: float) -> None:
        """Record liveness; the supervisor flags jobs whose beat goes stale."""
        self.last_beat = now

    def finish(self, result: AnchoredCoreResult) -> None:
        """Terminal transition to ``completed`` (result may be interrupted)."""
        self.result = result
        self.state = JobState.COMPLETED
        self.done.set()

    def quarantine(self) -> None:
        """Terminal transition to ``quarantined`` (poison job)."""
        self.state = JobState.QUARANTINED
        self.done.set()

    def cancel(self) -> bool:
        """Cancel a still-pending job; returns whether it took effect."""
        if self.state != JobState.PENDING:
            return False
        self.state = JobState.CANCELLED
        self.done.set()
        return True

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict for queue persistence (restart recovery)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_payload(),
            "attempts": self.attempts,
            "failures": [record.to_payload() for record in self.failures],
            "checkpoint": self.checkpoint_path,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object],
                     restored_at: float = 0.0) -> "Job":
        """Rebuild a pending job from a persisted queue entry.

        Attempt count and failure log survive the restart — a job that
        burned two attempts before the crash has only its remaining
        budget afterwards.  The relative deadline restarts from
        ``restored_at`` (see :class:`JobSpec`).
        """
        try:
            spec = JobSpec.from_payload(payload["spec"])  # type: ignore[arg-type]
            job = cls(int(payload["job_id"]), spec,  # type: ignore[arg-type]
                      submitted_at=restored_at,
                      deadline_at=(restored_at + spec.deadline
                                   if spec.deadline is not None else None),
                      checkpoint_path=payload.get("checkpoint"))  # type: ignore[arg-type]
            job.attempts = int(payload.get("attempts", 0))  # type: ignore[arg-type]
            job.failures = [FailureRecord.from_payload(p)
                            for p in payload.get("failures", [])]  # type: ignore[union-attr]
            return job
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(
                "malformed persisted job payload: %s" % error) from error


class JobHandle:
    """Caller-facing view of one submitted job.

    Multiple handles may share one underlying job — that is how request
    coalescing works: a second submission of an identical spec returns a
    new handle onto the already-queued job.
    """

    def __init__(self, job: Job) -> None:
        self._job = job

    @property
    def job_id(self) -> int:
        """The service-assigned id (unique per service state directory)."""
        return self._job.job_id

    @property
    def spec(self) -> JobSpec:
        """The immutable spec this job runs."""
        return self._job.spec

    @property
    def state(self) -> str:
        """Current :class:`JobState` constant."""
        return self._job.state

    @property
    def failures(self) -> Tuple[FailureRecord, ...]:
        """The per-attempt failure log so far (snapshot)."""
        return tuple(self._job.failures)

    def cancel(self) -> bool:
        """Withdraw the job if it is still pending; returns success."""
        return self._job.cancel()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; returns False on timeout."""
        return self._job.done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> AnchoredCoreResult:
        """The job's result, blocking until it is terminal.

        Raises :class:`~repro.exceptions.QuarantinedJobError` (carrying
        the failure log) for a poison job, :class:`ServiceError` for a
        cancelled one, and :class:`TimeoutError` if ``timeout`` elapses
        first.
        """
        if not self._job.done.wait(timeout):
            raise TimeoutError(
                "job %d still %s after %.3fs"
                % (self._job.job_id, self._job.state, timeout or 0.0))
        if self._job.state == JobState.QUARANTINED:
            raise QuarantinedJobError(
                "job %d was quarantined after %d attempt(s): %s"
                % (self._job.job_id, self._job.attempts,
                   self._job.failures[-1].error if self._job.failures
                   else "no failure recorded"),
                failures=self._job.failures)
        if self._job.state == JobState.CANCELLED:
            raise ServiceError("job %d was cancelled" % self._job.job_id)
        assert self._job.result is not None
        return self._job.result
