"""Per-job supervision: run, heartbeat, retry from checkpoint, quarantine.

:class:`JobSupervisor` owns the attempt loop of one job at a time.  Each
attempt runs the ordinary :func:`repro.core.api.reinforce` — the same code
path as a one-shot CLI run, which is what makes service results
byte-identical to batch results — with two service hooks threaded in:

* a per-job **campaign checkpoint** (engine-family methods), so a failed
  attempt resumes from the last completed iteration instead of restarting
  the campaign;
* an ``on_iteration`` observer that **heartbeats** the job and raises
  :class:`~repro.exceptions.AbortCampaign` when the service is draining,
  which the engine converts into a verified best-so-far result with
  ``interrupted=True`` at the next iteration boundary.

Failure classification (the poison-job policy):

* :class:`InvalidParameterError` / :class:`CheckpointError` — structural;
  no retry can help.  Immediate quarantine.
* any other ``Exception`` — recorded as a :class:`FailureRecord`, retried
  with deterministic backoff (injectable sleep) from the checkpoint, and
  quarantined once the attempt budget is exhausted.
* ``BaseException`` (worker thread dying: injected ``SystemExit``,
  ``KeyboardInterrupt``) — recorded, the job is requeued (or quarantined
  if out of attempts), and the exception re-raised so the worker actually
  dies and the service's :meth:`supervise` sweep respawns it.

Fault sites: ``service.dispatch`` fires at the top of every attempt,
``service.result`` after the engine returns but before the result is
posted — a fault there exercises the retry-after-success path, which must
replay from the checkpoint and still produce identical bytes.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import TYPE_CHECKING, Callable, Optional

from repro.bigraph.graph import BipartiteGraph
from repro.core.api import CHECKPOINTABLE_METHODS, reinforce
from repro.core.result import AnchoredCoreResult, IterationRecord
from repro.exceptions import (
    AbortCampaign,
    CheckpointError,
    InvalidParameterError,
    ServiceError,
)
from repro.resilience.faults import fault_site
from repro.resilience.retry import Backoff
from repro.service.jobs import FailureRecord, Job, JobState

if TYPE_CHECKING:
    from repro.core.batch import SharedCampaignContext

__all__ = ["JobSupervisor", "SUPERVISOR_BACKOFF"]

#: Default between-attempt backoff; ``base`` is small because the real
#: cost of a retry is the (checkpoint-bounded) replay, not the sleep.
SUPERVISOR_BACKOFF = Backoff(attempts=8, base=0.05, max_delay=1.0)


class JobSupervisor:
    """Runs jobs through the engine with retries, one job per call.

    Stateless across jobs (every attempt counter lives on the
    :class:`Job`), so one supervisor instance is shared by every worker
    thread.  ``clock`` and ``sleep`` are injectable: the chaos suite runs
    entirely on a fake clock with zero real sleeping.  ``on_iteration``
    (called as ``hook(job, record)`` after each heartbeat) is the
    observability tap the drain tests and service metrics hang off.
    """

    def __init__(self, graph: BipartiteGraph, max_retries: int = 2,
                 backoff: Backoff = SUPERVISOR_BACKOFF,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 on_iteration: Optional[
                     Callable[[Job, IterationRecord], None]] = None) -> None:
        if max_retries < 0:
            raise InvalidParameterError(
                "max_retries must be >= 0, got %d" % max_retries)
        self._graph = graph
        self._max_attempts = max_retries + 1
        self._backoff = backoff
        self._clock = clock
        self._sleep = sleep
        self._on_iteration = on_iteration

    def run(self, job: Job, drain: Optional[threading.Event] = None,
            requeue: Optional[Callable[[Job], None]] = None,
            context: Optional["SharedCampaignContext"] = None) -> str:
        """Drive ``job`` to a terminal state; returns the final state.

        ``drain`` is an event-like object (``is_set()``); when it fires,
        the in-flight attempt stops at the next iteration boundary and the
        job completes with its verified best-so-far (``interrupted=True``).
        ``requeue`` is called instead of quarantining when a
        ``BaseException`` kills the attempt with budget remaining.
        ``context`` is the batch scheduler's shared (α, β) substrate for
        this job, threaded into every attempt (the engine ignores the warm
        seed on checkpoint resume, so retry-from-checkpoint stays sound);
        results are byte-identical with or without it.
        """
        job.state = JobState.RUNNING
        delays = self._backoff.delays()
        while True:
            now = self._clock()
            job.beat(now)
            if job.deadline_at is not None and now > job.deadline_at:
                self._record(job, "deadline", ServiceError(
                    "deadline expired %.3fs before attempt %d could start"
                    % (now - job.deadline_at, job.attempts + 1)))
                job.quarantine()
                return job.state
            job.attempts += 1
            stage = "dispatch"
            try:
                fault_site("service.dispatch")
                stage = "execute"
                result = self._attempt(job, drain, context)
                stage = "result"
                fault_site("service.result")
            except (InvalidParameterError, CheckpointError) as error:
                # Structural: the same spec will fail the same way on
                # every retry.  Straight to quarantine.
                self._record(job, stage, error)
                job.quarantine()
                return job.state
            except AbortCampaign:
                # Only reachable when drain fires between the engine
                # returning and the result posting; treat as a worker
                # shutdown request, requeue for the restarted service.
                if requeue is not None:
                    job.state = JobState.PENDING
                    requeue(job)
                return job.state
            except Exception as error:  # repro: boundary — recorded on the job, then retried or quarantined
                self._record(job, stage, error)
                if job.attempts >= self._max_attempts:
                    job.quarantine()
                    return job.state
                try:
                    self._sleep(next(delays))
                except StopIteration:
                    self._sleep(self._backoff.max_delay)
                continue
            # repro: boundary — the death is recorded on the job and re-raised
            except BaseException as error:
                # The worker thread is dying (SIGKILL simulation, real
                # KeyboardInterrupt).  Record, hand the job back, die.
                self._record(job, "worker", error)
                if job.attempts >= self._max_attempts:
                    job.quarantine()
                elif requeue is not None:
                    job.state = JobState.PENDING
                    requeue(job)
                raise
            job.finish(result)
            return job.state

    def _attempt(self, job: Job, drain: Optional[threading.Event],
                 context: Optional["SharedCampaignContext"] = None,
                 ) -> AnchoredCoreResult:
        """One engine run: resume from the job checkpoint when it exists."""
        spec = job.spec
        checkpointable = spec.method in CHECKPOINTABLE_METHODS
        checkpoint = job.checkpoint_path if checkpointable else None
        resume = (checkpoint if checkpoint is not None
                  and os.path.exists(checkpoint) else None)

        def observer(record: IterationRecord) -> None:
            """Heartbeat + cooperative drain, once per engine iteration."""
            job.beat(self._clock())
            if self._on_iteration is not None:
                self._on_iteration(job, record)
            if drain is not None and drain.is_set():
                raise AbortCampaign(
                    "service drain: job %d stopping at iteration boundary"
                    % job.job_id)

        return reinforce(
            self._graph, spec.alpha, spec.beta, spec.b1, spec.b2,
            method=spec.method, t=spec.t, seed=spec.seed,
            time_limit=spec.time_limit, checkpoint=checkpoint,
            resume_from=resume, workers=spec.workers, shards=spec.shards,
            on_iteration=observer, context=context)

    def _record(self, job: Job, stage: str, error: BaseException) -> None:
        """Append a structured failure record for the current attempt."""
        job.failures.append(FailureRecord(
            attempt=max(job.attempts, 1), stage=stage,
            error="%s: %s" % (type(error).__name__, error),
            traceback=traceback.format_exc(),
            at=self._clock()))
