"""CLI for the campaign service: ``python -m repro.service``.

Loads one graph, submits a batch of jobs from a JSON file, serves them on
a worker pool with graceful SIGTERM/SIGINT drain, and writes one sorted
JSON report of every job's outcome.  A killed run can be restarted with
the same ``--state-dir`` and resumes its backlog from checkpoints (and,
with batching enabled, from the persisted result/seed cache).

Same-``(α, β)`` engine-family jobs of equal priority are grouped at
dispatch onto one shared warm substrate (the default; disable with
``--no-batching`` to force cold FIFO dispatch).  Batching never changes
result bytes or the exit-code contract, which is:

* ``0`` — every job reached a clean terminal state;
* ``2`` — a :class:`~repro.exceptions.ReproError` (bad arguments, bad
  jobs file, graph/state-dir mismatch) stopped the run;
* ``3`` — the run finished but at least one job was quarantined.

Jobs file format — a JSON list of job specs::

    [{"alpha": 2, "beta": 2, "b1": 3, "b2": 3,
      "method": "filver++", "priority": 1},
     {"alpha": 3, "beta": 2, "b1": 2, "b2": 2}]

Example::

    python -m repro.service --input graph.txt --jobs jobs.json \
        --workers 2 --state-dir /tmp/svc --json report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.exceptions import QuarantinedJobError, ReproError, ServiceError
from repro.experiments.export import canonical_result_dict
from repro.service.jobs import JobSpec, JobState
from repro.service.server import CampaignService
from repro.__main__ import _add_graph_source, _load_graph


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve reinforcement jobs against one loaded graph")
    _add_graph_source(parser)
    parser.add_argument("--jobs", required=True, metavar="PATH",
                        help="JSON file: list of job specs (alpha, beta, "
                             "b1, b2, and optional method/t/seed/priority/"
                             "deadline/workers/shards/time_limit)")
    parser.add_argument("--workers", type=int, default=1,
                        help="service worker threads (0 = run jobs inline "
                             "on the main thread)")
    parser.add_argument("--memory-budget", type=int, default=None,
                        metavar="BYTES",
                        help="admission-control byte budget (default: "
                             "unlimited); over-budget throttles dispatch, "
                             "never kills running jobs")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="attempts per job beyond the first before "
                             "quarantine")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="pending-queue admission limit")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="directory for checkpoints, quarantine "
                             "records, and the persisted queue; reuse it "
                             "to resume a killed service")
    parser.add_argument("--supervise-interval", type=float, default=1.0,
                        help="seconds between supervision sweeps")
    parser.add_argument("--no-batching", action="store_true",
                        help="disable grouped dispatch of same-(alpha,beta) "
                             "jobs onto a shared warm context; results are "
                             "byte-identical either way")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the per-job report as JSON")
    return parser


def _load_specs(path: str) -> List[JobSpec]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entries = json.load(handle)
    except OSError as error:
        raise ServiceError("cannot read jobs file %s: %s"
                           % (path, error)) from error
    except json.JSONDecodeError as error:
        raise ServiceError("jobs file %s is not valid JSON: %s"
                           % (path, error)) from error
    if not isinstance(entries, list):
        raise ServiceError("jobs file %s must hold a JSON list" % path)
    return [JobSpec.from_payload(entry) for entry in entries]


def _job_report(service: CampaignService) -> List[dict]:
    rows = []
    for job_id in service.job_ids():
        handle = service.handle(job_id)
        row: dict = {
            "job_id": job_id,
            "state": handle.state,
            "failures": [record.to_payload()
                         for record in handle.failures],
            "result": None,
        }
        if handle.state == JobState.COMPLETED:
            try:
                row["result"] = canonical_result_dict(handle.result(0))
            except (QuarantinedJobError, ServiceError, TimeoutError):
                row["result"] = None
        rows.append(row)
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; 0 = clean, 2 = ``ReproError``, 3 = quarantined job(s)."""
    args = _parser().parse_args(argv)
    try:
        specs = _load_specs(args.jobs)
        graph = _load_graph(args)
        service = CampaignService(
            graph, workers=args.workers,
            budget_bytes=args.memory_budget,
            max_pending=args.max_pending,
            max_retries=args.max_retries,
            state_dir=args.state_dir,
            supervise_interval=(args.supervise_interval
                                if args.workers else None),
            batching=not args.no_batching)
        installed = service.install_signal_handlers()
        if installed:
            print("drain on SIGTERM/SIGINT: enabled")
        handles = [service.submit(spec) for spec in specs]
        print("submitted %d job(s); %d restored from state dir"
              % (len(handles), len(service.job_ids()) - len(handles)))
        if args.workers == 0:
            while service.run_until_idle():
                pass
        else:
            remaining = list(service.job_ids())
            while remaining and not service.draining:
                remaining = [job_id for job_id in remaining
                             if not service.handle(job_id).wait(0.1)]
        report = _job_report(service)
        service.shutdown()
        states = {}
        for row in report:
            states[row["state"]] = states.get(row["state"], 0) + 1
        print("jobs:", json.dumps(states, sort_keys=True))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote report to", args.json)
        if states.get(JobState.QUARANTINED):
            return 3
        return 0
    except ReproError as error:
        print("error:", error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
