"""The campaign server: admission, dispatch, supervision, drain, restart.

:class:`CampaignService` loads a graph once and serves many ``reinforce``
jobs against it.  Two execution modes share every code path except thread
creation:

* ``workers=0`` (inline) — jobs run on the caller's thread via
  :meth:`run_until_idle`.  This is the chaos-testing mode: fully
  deterministic, no thread scheduling in sight.
* ``workers>=1`` (threaded) — a fixed pool of worker threads claims jobs
  from the queue; :meth:`supervise` (optionally on a monitor thread)
  respawns workers that died and flags jobs whose heartbeat went stale.

Lifecycle guarantees (each has a dedicated chaos test):

* **admission** — ``submit`` validates the spec *and* the problem against
  the graph before queueing (poison screening at the door), consults the
  result cache, coalesces duplicate in-flight requests, and applies the
  byte-budget admission policy.  Over-budget means rejection or delayed
  dispatch — never killing in-flight work.
* **drain** — :meth:`request_drain` (wired to SIGTERM/SIGINT by
  :meth:`install_signal_handlers`) stops admissions; running jobs stop at
  their next iteration boundary with verified best-so-far results
  (``interrupted=True``); pending and interrupted jobs are persisted to
  the state directory by :meth:`shutdown` for restart recovery.
* **restart** — constructing a service with the same ``state_dir``
  restores the persisted backlog (same job ids, surviving attempt
  budgets) after verifying the graph fingerprint, and resumes each job
  from its per-job checkpoint.
* **quarantine** — jobs the supervisor gives up on are recorded as
  structured JSON under ``<state_dir>/quarantine/`` with their full
  failure log and last checkpoint, and never block the queue.
"""

from __future__ import annotations

import json
import os
import shutil
import signal as signal_module
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.stats import memory_footprint
from repro.bigraph.validation import validate_problem
from repro.exceptions import AdmissionError, ServiceError
from repro.resilience.atomic import atomic_write_text
from repro.resilience.checkpoint import graph_fingerprint
from repro.resilience.faults import fault_site
from repro.service.batching import BatchScheduler
from repro.service.cache import DiskCacheTier, ResultCache
from repro.service.jobs import (
    Job,
    JobHandle,
    JobSpec,
    JobState,
    cache_key,
)
from repro.service.queue import (
    AdmissionController,
    DEFAULT_JOB_COST_BYTES,
    JobQueue,
    load_queue_state,
    save_queue_state,
)
from repro.service.supervisor import JobSupervisor

__all__ = ["CampaignService", "DEFAULT_HEARTBEAT_TIMEOUT"]

#: A running job whose last heartbeat is older than this (service-clock
#: seconds) is flagged as stalled by :meth:`CampaignService.supervise`.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


class CampaignService:
    """Long-lived, fault-tolerant executor of reinforcement jobs.

    Usable as a context manager (``with CampaignService(graph) as svc:``);
    exit performs a graceful :meth:`shutdown`.  All knobs with timing
    semantics (``clock``, ``sleep``) are injectable so the chaos suite
    runs sleep-free on a fake clock.  ``on_iteration`` — called as
    ``hook(job, record)`` after every engine iteration of every job — is
    the per-iteration observability tap (metrics, deterministic drain
    triggering in tests).

    ``batching`` (default on) routes compatible queued jobs through a
    :class:`~repro.service.batching.BatchScheduler`: same-``(α, β)``
    engine-family jobs of equal priority are grouped at dispatch and share
    one warm :class:`~repro.core.batch.SharedCampaignContext` — results
    stay byte-identical to cold runs (``docs/SERVICE.md``).
    ``persistent_cache`` (default on) backs the result cache and the batch
    seeds with a checksummed on-disk tier under ``<state_dir>/cache`` so
    hits survive restarts; corruption degrades to a cold cache.
    """

    def __init__(self, graph: BipartiteGraph, workers: int = 0,
                 budget_bytes: Optional[int] = None,
                 max_pending: int = 64, max_retries: int = 2,
                 job_cost_bytes: int = DEFAULT_JOB_COST_BYTES,
                 state_dir: Optional[str] = None,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 supervise_interval: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None,
                 sleep: Optional[Callable[[float], None]] = None,
                 on_iteration: Optional[Callable[..., None]] = None,
                 batching: bool = True,
                 persistent_cache: bool = True) -> None:
        if workers < 0:
            raise ServiceError("workers must be >= 0, got %d" % workers)
        self._graph = graph
        self._fingerprint = graph_fingerprint(graph)
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else time.sleep
        self._admission = AdmissionController(
            memory_footprint(graph), budget_bytes=budget_bytes,
            max_pending=max_pending, job_cost_bytes=job_cost_bytes)
        self._queue = JobQueue()
        self._supervisor = JobSupervisor(
            graph, max_retries=max_retries,
            clock=self._clock, sleep=self._sleep,
            on_iteration=on_iteration)
        self._heartbeat_timeout = heartbeat_timeout
        self._lock = threading.Lock()
        self._drain = threading.Event()
        self._stopping = False
        self._jobs: Dict[int, Job] = {}
        self._next_id = 1
        self._n_running = 0
        self._interrupted: List[Job] = []
        self._events: List[Dict[str, object]] = []
        self._own_state_dir = state_dir is None
        self._state_dir = (tempfile.mkdtemp(prefix="repro-service-")
                           if state_dir is None else os.fspath(state_dir))
        os.makedirs(os.path.join(self._state_dir, "checkpoints"),
                    exist_ok=True)
        os.makedirs(os.path.join(self._state_dir, "quarantine"),
                    exist_ok=True)
        self._disk_cache = (DiskCacheTier(
            os.path.join(self._state_dir, "cache"), sleep=self._sleep)
            if persistent_cache else None)
        self._cache = ResultCache(persist=self._disk_cache)
        self._scheduler = (BatchScheduler(
            graph, self._fingerprint, persist=self._disk_cache)
            if batching else None)
        self._restore_backlog()
        self._workers = workers
        self._threads: List[Optional[threading.Thread]] = []
        for index in range(workers):
            self._threads.append(self._spawn_worker(index))
        self._supervise_interval = supervise_interval
        self._monitor_wake = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        if supervise_interval is not None and workers > 0:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-service-monitor",
                daemon=True)
            self._monitor.start()

    # ------------------------------------------------------------------
    # Submission and admission
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobHandle:
        """Admit one job; returns a handle (possibly onto an existing job).

        Order of the gauntlet: the ``service.admit`` fault site, the
        drain gate, spec + problem validation (so structurally poison
        requests are rejected *here*, synchronously, instead of burning
        retries), the completed-result cache, in-flight coalescing, and
        finally the byte-budget admission check.
        """
        fault_site("service.admit")
        if self._drain.is_set():
            raise AdmissionError(
                "service is draining; new jobs are not accepted")
        spec.validate()
        validate_problem(self._graph, spec.alpha, spec.beta,
                         spec.b1, spec.b2)
        key = cache_key(self._fingerprint, spec)
        cached = self._cache.lookup(key)
        with self._lock:
            now = self._clock()
            job = Job(self._next_id, spec, submitted_at=now,
                      deadline_at=(now + spec.deadline
                                   if spec.deadline is not None else None),
                      checkpoint_path=self._checkpoint_path(self._next_id))
            if cached is not None:
                self._next_id += 1
                self._jobs[job.job_id] = job
                job.finish(cached)
                return JobHandle(job)
            existing = self._cache.claim_inflight(key, job)
            if existing is not None:
                return JobHandle(existing)
            try:
                self._admission.admit(len(self._queue))
            except AdmissionError:
                self._cache.release(key, job)
                raise
            self._next_id += 1
            self._jobs[job.job_id] = job
        self._queue.push(job)
        return JobHandle(job)

    def handle(self, job_id: int) -> JobHandle:
        """A fresh handle onto a previously submitted (or restored) job."""
        with self._lock:
            try:
                return JobHandle(self._jobs[job_id])
            except KeyError as error:
                raise ServiceError("unknown job id %d" % job_id) from error

    def job_ids(self) -> List[int]:
        """Ids of every job this service instance knows, in submit order."""
        with self._lock:
            return list(self._jobs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_until_idle(self) -> int:
        """Run queued jobs on the calling thread until none are claimable.

        Inline-mode (``workers=0``) pump, and the heart of the
        deterministic chaos suite.  Returns the number of jobs that
        reached a terminal state.  If an injected ``BaseException`` kills
        a "worker" (this thread), the exception propagates after the
        bookkeeping that keeps the job safe — call ``run_until_idle``
        again to converge, exactly like :meth:`supervise` respawning a
        dead worker thread.
        """
        if self._workers:
            raise ServiceError(
                "run_until_idle is the workers=0 pump; this service has "
                "%d worker threads" % self._workers)
        finished = 0
        while True:
            job = self._queue.claim(self._dispatch_allowed, self._drain,
                                    timeout=0, choose=self._choose)
            if job is None:
                return finished
            self._execute(job)
            finished += 1

    def _dispatch_allowed(self) -> bool:
        return self._admission.dispatch_allowed(self._n_running)

    @property
    def _choose(self) -> Optional[Callable[[List[Job]], Optional[Job]]]:
        """The queue's dispatch chooser: batch grouping, when enabled."""
        return self._scheduler.choose if self._scheduler is not None else None

    def _execute(self, job: Job) -> None:
        """Run one claimed job through the supervisor and publish the result.

        With batching enabled, the job borrows its ``(α, β)``'s shared
        context for the duration of the run; any failure to *acquire* one
        degrades to a cold (context-free) run — admission and quarantine
        semantics are untouched either way.
        """
        key = cache_key(self._fingerprint, job.spec)
        context = None
        if self._scheduler is not None:
            try:
                context = self._scheduler.acquire(job.spec)
            # repro: boundary — context acquisition is an optimization; on any failure the job runs cold
            except Exception:
                context = None
        with self._lock:
            self._n_running += 1
        try:
            self._supervisor.run(job, drain=self._drain,
                                 requeue=self._queue.push, context=context)
        finally:
            if self._scheduler is not None:
                self._scheduler.release(job.spec, context)
            with self._lock:
                self._n_running -= 1
                if job.state == JobState.COMPLETED \
                        and job.result is not None \
                        and job.result.interrupted:
                    self._interrupted.append(job)
            if job.state in JobState.TERMINAL:
                if job.state == JobState.COMPLETED \
                        and job.result is not None:
                    self._cache.store(key, job.result)
                self._cache.release(key, job)
                if job.state == JobState.QUARANTINED:
                    self._write_quarantine_record(job)
            self._queue.notify()

    def _worker_loop(self, index: int) -> None:
        """Claim-execute loop of worker thread ``index``."""
        while not self._stopping:
            job = self._queue.claim(self._dispatch_allowed, self._drain,
                                    timeout=0.05, choose=self._choose)
            if job is None:
                if self._drain.is_set():
                    return
                continue
            try:
                self._execute(job)
            # repro: boundary — death logged, re-raised for supervise() to respawn
            except BaseException as error:
                with self._lock:
                    self._events.append({
                        "event": "worker-death", "worker": index,
                        "job_id": job.job_id,
                        "error": "%s: %s" % (type(error).__name__, error),
                        "at": self._clock()})
                raise

    def _spawn_worker(self, index: int) -> threading.Thread:
        thread = threading.Thread(target=self._worker_loop, args=(index,),
                                  name="repro-service-worker-%d" % index,
                                  daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def supervise(self) -> Dict[str, object]:
        """One supervision sweep: respawn dead workers, flag stale jobs.

        Returns ``{"respawned": n, "stalled": [job ids]}``.  Safe to call
        from any thread at any time; the optional monitor thread just
        calls this on a timer.  The ``service.heartbeat`` fault site
        fires first, so the chaos suite can fail the sweep itself and
        assert the service survives.
        """
        fault_site("service.heartbeat")
        now = self._clock()
        respawned = 0
        stalled: List[int] = []
        with self._lock:
            if not self._stopping and not self._drain.is_set():
                for index, thread in enumerate(self._threads):
                    if thread is not None and not thread.is_alive():
                        self._threads[index] = self._spawn_worker(index)
                        respawned += 1
            for job in self._jobs.values():
                if job.state == JobState.RUNNING and \
                        now - job.last_beat > self._heartbeat_timeout:
                    stalled.append(job.job_id)
            if respawned or stalled:
                self._events.append({
                    "event": "supervise", "respawned": respawned,
                    "stalled": list(stalled), "at": now})
        return {"respawned": respawned, "stalled": stalled}

    def _monitor_loop(self) -> None:
        """Timer-driven supervision; sweep failures never kill the monitor."""
        while not self._stopping:
            try:
                self.supervise()
            # repro: boundary — a failed sweep is recorded; supervision outlives its faults
            except Exception as error:
                with self._lock:
                    self._events.append({
                        "event": "supervise-error",
                        "error": "%s: %s" % (type(error).__name__, error),
                        "at": self._clock()})
            if self._monitor_wake.wait(self._supervise_interval):
                return

    def events(self) -> List[Dict[str, object]]:
        """Supervision event log (worker deaths, respawns, stalls)."""
        with self._lock:
            return [dict(event) for event in self._events]

    # ------------------------------------------------------------------
    # Drain, shutdown, restart recovery
    # ------------------------------------------------------------------

    def request_drain(self) -> None:
        """Stop admissions; running jobs stop at iteration boundaries.

        Async-signal-safe in the way that matters for a Python handler:
        it only sets events and notifies a condition, so it is wired
        directly to SIGTERM/SIGINT by :meth:`install_signal_handlers`.
        """
        self._drain.set()
        self._queue.notify()

    @property
    def draining(self) -> bool:
        """Whether a drain has been requested."""
        return self._drain.is_set()

    def install_signal_handlers(
            self, signals: Sequence[int] = (signal_module.SIGTERM,
                                            signal_module.SIGINT)) -> bool:
        """Route ``signals`` to :meth:`request_drain`; main thread only.

        Returns False (without installing anything) off the main thread,
        where CPython forbids ``signal.signal``.
        """
        if threading.current_thread() is not threading.main_thread():
            return False

        def _handler(signum: int, frame: object) -> None:
            self.request_drain()

        try:
            for signum in signals:
                signal_module.signal(signum, _handler)
        except ValueError:
            return False
        return True

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful stop: drain, join workers, persist the backlog.

        Pending jobs and drain-interrupted running jobs (which hold
        checkpoints) are written to ``<state_dir>/queue.json`` so a
        service restarted on the same directory resumes them.  Safe to
        call twice.
        """
        self.request_drain()
        if self._stopping:
            return
        self._stopping = True
        self._monitor_wake.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
        for thread in self._threads:
            if thread is not None:
                thread.join(timeout)
        if self._scheduler is not None:
            self._scheduler.close()
        self._persist_backlog()
        if self._own_state_dir:
            shutil.rmtree(self._state_dir, ignore_errors=True)

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _persist_backlog(self) -> None:
        with self._lock:
            backlog = self._queue.pending() + [
                job for job in self._interrupted
                if job.checkpoint_path is not None]
            seen = set()
            unique: List[Job] = []
            for job in backlog:
                if job.job_id not in seen:
                    seen.add(job.job_id)
                    unique.append(job)
            save_queue_state(os.path.join(self._state_dir, "queue.json"),
                             self._fingerprint, self._next_id, unique,
                             sleep=self._sleep)

    def _restore_backlog(self) -> None:
        path = os.path.join(self._state_dir, "queue.json")
        if not os.path.exists(path):
            return
        fingerprint, next_id, payloads = load_queue_state(path)
        if fingerprint != self._fingerprint:
            raise ServiceError(
                "state directory %s belongs to a different graph "
                "(fingerprint %s != %s)"
                % (self._state_dir, fingerprint, self._fingerprint))
        now = self._clock()
        for payload in payloads:
            job = Job.from_payload(payload, restored_at=now)
            self._jobs[job.job_id] = job
            self._cache.claim_inflight(
                cache_key(self._fingerprint, job.spec), job)
            self._queue.push(job)
            self._next_id = max(self._next_id, job.job_id + 1)
        self._next_id = max(self._next_id, next_id)

    # ------------------------------------------------------------------
    # Quarantine and observability
    # ------------------------------------------------------------------

    def _checkpoint_path(self, job_id: int) -> str:
        return os.path.join(self._state_dir, "checkpoints",
                            "job-%d.json" % job_id)

    def _write_quarantine_record(self, job: Job) -> None:
        """Structured poison-job record: spec, failures, last checkpoint."""
        record = {
            "job_id": job.job_id,
            "spec": job.spec.to_payload(),
            "attempts": job.attempts,
            "failures": [f.to_payload() for f in job.failures],
            "checkpoint": (job.checkpoint_path
                           if job.checkpoint_path is not None
                           and os.path.exists(job.checkpoint_path)
                           else None),
            "quarantined_at": self._clock(),
        }
        path = os.path.join(self._state_dir, "quarantine",
                            "job-%d.json" % job.job_id)
        atomic_write_text(path, json.dumps(record, indent=2,
                                           sort_keys=True) + "\n")

    def quarantined(self) -> List[int]:
        """Ids of quarantined jobs, in submission order."""
        with self._lock:
            return [job_id for job_id, job in self._jobs.items()
                    if job.state == JobState.QUARANTINED]

    def stats(self) -> Dict[str, object]:
        """Operational snapshot: states, admission, cache, drain flag."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "jobs": dict(sorted(states.items())),
                "pending": len(self._queue),
                "running": self._n_running,
                "draining": self._drain.is_set(),
                "admission": self._admission.describe(),
                "cache": self._cache.stats(),
                "batch": (self._scheduler.stats()
                          if self._scheduler is not None else None),
                "state_dir": self._state_dir,
                "workers": self._workers,
            }
