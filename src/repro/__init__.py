"""repro — reinforcement of bipartite networks via anchored (α,β)-core maximization.

A from-scratch Python reproduction of *"Efficient Reinforcement of Bipartite
Networks at Billion Scale"* (He, Wang, Zhang, Lin, Zhang — ICDE 2022).

Quickstart::

    from repro import GraphBuilder, reinforce

    b = GraphBuilder()
    b.add_edges([("alice", "bread"), ("alice", "milk"), ("bob", "milk")])
    g = b.build()
    result = reinforce(g, alpha=2, beta=2, b1=1, b2=1, method="filver++")
    print(result.summary())

See :mod:`repro.core` for the algorithm family (Exact, Naive, FILVER,
FILVER+, FILVER++ and baselines), :mod:`repro.bigraph` and
:mod:`repro.abcore` for the substrates, :mod:`repro.generators` for workload
synthesis, and :mod:`repro.experiments` for the harness reproducing every
table and figure of the paper's evaluation.
"""

from repro.bigraph import (
    BipartiteGraph,
    GraphBuilder,
    from_biadjacency,
    from_edge_list,
    read_edge_list,
    write_edge_list,
)
from repro.abcore import abcore, anchored_abcore, delta, followers
from repro.core import (
    AnchoredCoreResult,
    METHODS,
    reinforce,
    run_exact,
    run_filver,
    run_filver_plus,
    run_filver_plus_plus,
    run_naive,
    verify_result,
)
from repro.exceptions import (
    DatasetError,
    GraphConstructionError,
    InvalidParameterError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "METHODS",
    "AnchoredCoreResult",
    "BipartiteGraph",
    "DatasetError",
    "GraphBuilder",
    "GraphConstructionError",
    "InvalidParameterError",
    "ReproError",
    "abcore",
    "anchored_abcore",
    "delta",
    "followers",
    "from_biadjacency",
    "from_edge_list",
    "read_edge_list",
    "reinforce",
    "run_exact",
    "run_filver",
    "run_filver_plus",
    "run_filver_plus_plus",
    "run_naive",
    "verify_result",
    "write_edge_list",
    "__version__",
]
