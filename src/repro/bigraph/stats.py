"""Dataset statistics matching Table II of the paper.

For each dataset the paper reports ``|E|``, ``|U|``, ``|L|``, ``d_max`` (the
maximum degree) and ``δ`` (the largest k such that the (k,k)-core exists).
:func:`summarize` computes all five plus a few extras used by the surrogate
calibration in :mod:`repro.generators.datasets`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List

from repro.bigraph.csr import CSRAdjacency
from repro.bigraph.graph import BipartiteGraph

__all__ = ["GraphSummary", "summarize", "degree_histogram", "average_degrees",
           "memory_footprint"]


@dataclass(frozen=True)
class GraphSummary:
    """The Table-II statistics of one bipartite graph."""

    n_edges: int
    n_upper: int
    n_lower: int
    max_degree: int
    delta: int
    avg_upper_degree: float
    avg_lower_degree: float

    def as_row(self) -> Dict[str, object]:
        """Dict form used by the Table-II harness renderer."""
        return {
            "|E|": self.n_edges,
            "|U|": self.n_upper,
            "|L|": self.n_lower,
            "d_max": self.max_degree,
            "delta": self.delta,
        }


def summarize(graph: BipartiteGraph) -> GraphSummary:
    """Compute the full statistics row for ``graph``.

    δ requires a core-decomposition sweep; the import is deferred so the
    graph substrate has no static dependency on :mod:`repro.abcore`.
    """
    from repro.abcore.decomposition import delta as compute_delta

    n1, n2 = graph.n_upper, graph.n_lower
    m = graph.n_edges
    return GraphSummary(
        n_edges=m,
        n_upper=n1,
        n_lower=n2,
        max_degree=graph.max_degree(),
        delta=compute_delta(graph),
        avg_upper_degree=(m / n1) if n1 else 0.0,
        avg_lower_degree=(m / n2) if n2 else 0.0,
    )


def degree_histogram(graph: BipartiteGraph, layer: str = "upper") -> Dict[int, int]:
    """Degree → count histogram for one layer (``"upper"`` or ``"lower"``)."""
    vertices = graph.upper_vertices() if layer == "upper" else graph.lower_vertices()
    histogram: Dict[int, int] = {}
    for v in vertices:
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def memory_footprint(graph: BipartiteGraph,
                     per_component: bool = False) -> Dict[str, object]:
    """Bytes held by the adjacency representation, per backend.

    Returns ``{"backend", "adjacency_bytes", "resident_bytes",
    "mapped_bytes", "bytes_per_edge"}``.  For CSR this is the exact size of
    the three flat buffers; for the list backend it is ``sys.getsizeof``
    over the outer list, every row, and one boxed ``int`` per stored
    endpoint (small ints are interned by CPython, so the list estimate is an
    upper bound for tiny graphs and accurate at scale).

    ``resident_bytes`` vs ``mapped_bytes`` is what makes the out-of-core
    claim measurable: a ``backend="memmap"`` graph reports its adjacency
    entirely as mapped (the OS pages it in on demand and may evict it under
    pressure), every other backend entirely as resident.

    With ``per_component=True`` the result also carries ``"components"`` —
    a list of ``{"n_upper", "n_lower", "n_edges", "adjacency_bytes"}`` rows,
    one per connected component (CSR cost model: 4 bytes per endpoint on
    both sides + 8-byte offset and 4-byte degree per vertex), which is the
    per-shard size breakdown the sharded campaign substrate plans with.
    """
    adj = graph.adjacency
    if isinstance(adj, CSRAdjacency):
        total = adj.nbytes
    else:
        total = sys.getsizeof(adj)
        int_size = sys.getsizeof(1 << 20)
        for row in adj:
            total += sys.getsizeof(row) + int_size * len(row)
    backend = graph.backend
    mapped = total if backend == "memmap" else 0
    m = graph.n_edges
    footprint: Dict[str, object] = {
        "backend": backend,
        "adjacency_bytes": total,
        "resident_bytes": total - mapped,
        "mapped_bytes": mapped,
        "bytes_per_edge": (total / m) if m else 0.0,
    }
    if per_component:
        from repro.bigraph.components import component_sizes

        rows: List[Dict[str, int]] = []
        for n_upper, n_lower, n_edges in component_sizes(graph):
            n_vertices = n_upper + n_lower
            rows.append({
                "n_upper": n_upper,
                "n_lower": n_lower,
                "n_edges": n_edges,
                "adjacency_bytes": 8 * n_edges + 12 * n_vertices,
            })
        footprint["components"] = rows
    return footprint


def average_degrees(graph: BipartiteGraph) -> Dict[str, float]:
    """Average degree of each layer (0.0 for an empty layer)."""
    m = graph.n_edges
    return {
        "upper": m / graph.n_upper if graph.n_upper else 0.0,
        "lower": m / graph.n_lower if graph.n_lower else 0.0,
    }
