"""Flat-array follower/reachability kernel over a CSR-backed graph.

The verification stage's inner loops — the order-respecting DFS behind
``rf(x)`` and the local support peel behind ``F(x)`` — are pure functions of
(positions, core, adjacency, x).  The generic implementations in
:mod:`repro.core` walk Python dicts and sets and allocate a ``(vertex,
position)`` tuple per DFS push and a fresh support dict per candidate.  At
thousands of candidates per iteration those constant factors dominate the
campaign profile.

:class:`FollowerKernel` replaces the per-candidate churn with flat
``array`` buffers sized once per graph and *epoch-stamped* instead of
cleared:

* per-side position values (maintained orders renumber regions with
  ever-growing fresh positions) plus an iteration-stamp buffer — a position
  entry is valid iff its stamp equals the current iteration epoch, so
  loading a new iteration's order is one pass over the position dict and
  never a buffer clear;
* an iteration-stamped core-membership buffer;
* call-stamped ``visited`` / candidate-membership / support buffers shared
  by every DFS and peel — a new call bumps the stamp, implicitly resetting
  ``O(n)`` state in ``O(1)``;
* a preallocated ``int32`` vertex stack, so the DFS pushes plain ids
  (positions are re-read from the flat buffer on pop) and never allocates
  a tuple;
* neighbor rows iterated as ``memoryview`` slices of the CSR neighbor
  buffer — C-level iteration, no index arithmetic per edge.

The stamp/position/support buffers are dense Python lists rather than
``array`` objects: CPython re-boxes an ``array`` element on every read,
while a list slot hands back its cached int object — measured ~35% faster
on the DFS inner loop, at 8 bytes per vertex per buffer.  The stack stays
``array('i')``: it is written/read once per visited vertex, not once per
edge.

The kernel lives in :mod:`repro.bigraph` because it is pure graph
machinery: it knows nothing about deletion orders or engines — callers feed
it plain position dicts and vertex sets.  Results are *set-identical* to
``repro.core.followers.compute_followers`` / ``reachable_from`` (property
checked by ``tests/test_incremental.py``); the engine selects it
automatically on CSR-backed graphs.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Set

from repro.bigraph.csr import adjacency_arrays
from repro.exceptions import GraphConstructionError

__all__ = ["FollowerKernel", "kernel_for"]

_STACK_TYPECODE = "i"  # vertex ids fit the CSR neighbor width


class FollowerKernel:
    """Reusable scratch buffers for ``rf(x)`` / ``F(x)`` on one CSR graph.

    A kernel instance is bound to one graph and is **not** thread-safe:
    every method reuses the same scratch arrays.  The engine owns one per
    campaign (workers build their own from the shared-memory graph).

    Usage per engine iteration::

        kernel.begin_iteration(upper_position, lower_position, core)
        rf = kernel.reachable("upper", x)
        followers = kernel.followers("upper", x, alpha, beta, candidates=rf)
    """

    def __init__(self, graph: object) -> None:
        arrays = adjacency_arrays(graph)
        if arrays is None:
            raise GraphConstructionError(
                "FollowerKernel requires a CSR-backed graph; call "
                "graph.to_csr() first")
        offsets, neighbors, _degrees = arrays
        self._offsets = offsets
        self._rows = memoryview(neighbors)
        self._n_upper = graph.n_upper  # type: ignore[attr-defined]
        n = len(offsets) - 1
        self._pos: Dict[str, List[int]] = {"upper": [0] * n,
                                           "lower": [0] * n}
        self._pos_stamp: Dict[str, List[int]] = {"upper": [0] * n,
                                                 "lower": [0] * n}
        self._core_stamp: List[int] = [0] * n
        self._visited: List[int] = [0] * n
        self._cand: List[int] = [0] * n
        self._support: List[int] = [0] * n
        self._stack = array(_STACK_TYPECODE, [0]) * n if n else array(
            _STACK_TYPECODE)
        self._epoch = 0
        self._call = 0

    def release(self) -> None:
        """Drop the CSR buffer references; the kernel is unusable after.

        Required where the buffers live in shared memory (pool workers): a
        surviving ``memoryview`` would pin the segment mapping past
        ``AttachedGraph.close()`` and the interpreter would complain about
        exported pointers at shutdown.  Idempotent.
        """
        rows = self._rows
        self._rows = memoryview(b"")
        rows.release()
        self._offsets = array("q")

    # ------------------------------------------------------------------
    # Per-iteration state load
    # ------------------------------------------------------------------

    def begin_iteration(self, upper_position: Dict[int, int],
                        lower_position: Dict[int, int],
                        core: Iterable[int]) -> None:
        """Stamp this iteration's order positions and core membership.

        Costs one pass over both position dicts and the core — paid once
        per engine iteration, after which every candidate evaluation reads
        flat buffers only.
        """
        self._epoch += 1
        epoch = self._epoch
        for side, entries in (("upper", upper_position),
                              ("lower", lower_position)):
            pos = self._pos[side]
            stamp = self._pos_stamp[side]
            for v, p in entries.items():
                pos[v] = p
                stamp[v] = epoch
        core_stamp = self._core_stamp
        for v in core:
            core_stamp[v] = epoch

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def reachable(self, side: str, x: int) -> Set[int]:
        """``rf(x)`` under the stamped order — set-identical to
        :func:`repro.core.deletion_order.reachable_from`."""
        pos = self._pos[side]
        stamp = self._pos_stamp[side]
        epoch = self._epoch
        if stamp[x] != epoch:
            raise KeyError(x)
        self._call += 1
        call = self._call
        offsets = self._offsets
        rows = self._rows
        visited = self._visited
        stack = self._stack
        reached: Set[int] = set()
        mark = reached.add
        visited[x] = call  # x can never re-qualify (pw == px <= pv)
        stack[0] = x
        top = 1
        while top:  # hot-loop
            top -= 1
            v = stack[top]
            pv = pos[v]
            for w in rows[offsets[v]:offsets[v + 1]]:
                if visited[w] == call or stamp[w] != epoch or pos[w] <= pv:
                    continue
                visited[w] = call
                mark(w)
                stack[top] = w
                top += 1
        return reached

    def followers(self, side: str, x: int, alpha: int, beta: int,
                  candidates: Optional[Set[int]] = None) -> Set[int]:
        """``F(x)`` under the stamped order — set-identical to
        :func:`repro.core.followers.compute_followers`.

        ``candidates`` is a precomputed ``rf(x)`` when the caller already
        has it (the filter stage does); otherwise it is derived here with
        the same DFS as :meth:`reachable`.
        """
        offsets = self._offsets
        rows = self._rows
        cand = self._cand
        self._call += 1
        call = self._call
        cand_list: List[int]
        if candidates is None:
            cand_list = self._collect_candidates(side, x, call)
        else:
            cand_list = []
            push_cand = cand_list.append
            for u in candidates:
                cand[u] = call
                push_cand(u)
        if not cand_list:
            return set()

        # Support pass: count neighbors in {x} ∪ core ∪ candidates.  The
        # candidate stamps are still all live here; they only start dropping
        # in the peel below.
        support = self._support
        core_stamp = self._core_stamp
        epoch = self._epoch
        n_upper = self._n_upper
        for u in cand_list:  # hot-loop
            count = 0
            for w in rows[offsets[u]:offsets[u + 1]]:
                if w == x or core_stamp[w] == epoch or cand[w] == call:
                    count += 1
            support[u] = count

        # Local peel.  A zeroed stamp marks death; the final survivor set is
        # the unique maximal subset meeting the thresholds, so the peel
        # order cannot affect the returned set.
        dead: List[int] = []
        push = dead.append
        for u in cand_list:  # hot-loop
            threshold = alpha if u < n_upper else beta
            if support[u] < threshold:
                cand[u] = 0
                push(u)
        head = 0
        while head < len(dead):  # hot-loop
            u = dead[head]
            head += 1
            for w in rows[offsets[u]:offsets[u + 1]]:
                if cand[w] != call:
                    continue
                remaining = support[w] - 1
                support[w] = remaining
                if remaining < (alpha if w < n_upper else beta):
                    cand[w] = 0
                    push(w)
        return {u for u in cand_list if cand[u] == call}

    # ------------------------------------------------------------------

    def _collect_candidates(self, side: str, x: int, call: int) -> List[int]:
        """The ``rf(x)`` DFS, stamping ``cand`` instead of building a set."""
        pos = self._pos[side]
        stamp = self._pos_stamp[side]
        epoch = self._epoch
        if stamp[x] != epoch:
            raise KeyError(x)
        offsets = self._offsets
        rows = self._rows
        cand = self._cand
        stack = self._stack
        out: List[int] = []
        push_out = out.append
        visited = self._visited
        visited[x] = call
        stack[0] = x
        top = 1
        while top:  # hot-loop
            top -= 1
            v = stack[top]
            pv = pos[v]
            for w in rows[offsets[v]:offsets[v + 1]]:
                if visited[w] == call or stamp[w] != epoch or pos[w] <= pv:
                    continue
                visited[w] = call
                cand[w] = call
                push_out(w)
                stack[top] = w
                top += 1
        return out


def kernel_for(graph: object) -> Optional[FollowerKernel]:
    """A :class:`FollowerKernel` for CSR-backed graphs, else ``None``.

    The auto-selection hook: callers that want "flat kernel when the
    backend supports it, generic path otherwise" use this instead of
    handling :class:`~repro.exceptions.GraphConstructionError` themselves.
    """
    if adjacency_arrays(graph) is None:
        return None
    return FollowerKernel(graph)
