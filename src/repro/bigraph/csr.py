"""Compressed-sparse-row (CSR) adjacency backend for :class:`BipartiteGraph`.

The list-of-lists adjacency keeps one Python ``list`` object per vertex and
one boxed ``int`` per edge endpoint — roughly 40–80 bytes per edge once
object headers and pointers are counted.  At the scales the paper targets
(billions of edges) that layout is the bottleneck before any algorithm runs.

:class:`CSRAdjacency` stores the same structure in three flat buffers:

* ``offsets`` — ``array('q')`` of length ``n_vertices + 1``; row ``v`` spans
  ``neighbors[offsets[v]:offsets[v + 1]]``.  64-bit so edge counts past
  2\\ :sup:`31` stay addressable.
* ``neighbors`` — ``array('i')`` holding every (sorted) neighbor id, upper
  rows first; 4 bytes per entry, two entries per undirected edge.
* ``degrees`` — ``array('i')`` cache of row lengths, so degree lookups and
  peeling initialisation never re-derive ``offsets[v + 1] - offsets[v]``.

Rows are exposed as ``memoryview`` slices, which support ``len``, indexing,
iteration, ``in`` and ``bisect`` — everything the algorithm layers do with a
neighbor list.  The buffers also speak the buffer protocol, so the optional
numpy acceleration layer (:mod:`repro.abcore.accel`) wraps them zero-copy.

Code outside :mod:`repro.bigraph` should not poke at the buffers directly;
use :func:`adjacency_arrays` to get them (or ``None`` for a list-backed
graph) so both backends keep working through one call site.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphConstructionError

__all__ = ["CSRAdjacency", "adjacency_arrays", "csr_from_indexed_edges"]

_OFFSET_TYPECODE = "q"   # 64-bit: safe past 2**31 total edge endpoints
_NEIGHBOR_TYPECODE = "i"  # 32-bit vertex ids: 4 bytes per endpoint


class CSRAdjacency:
    """Flat-array adjacency table, row-compatible with ``List[List[int]]``.

    Instances behave like a read-only sequence of sorted neighbor rows:
    ``adj[v]`` returns a ``memoryview`` slice over the shared ``neighbors``
    buffer, ``len(adj)`` is the vertex count and iteration yields the rows in
    id order.  Equality is structural and also accepts a list-of-lists table,
    so cross-backend ``BipartiteGraph`` comparisons keep working.
    """

    __slots__ = ("offsets", "neighbors", "degrees", "_view")

    #: Reported through :attr:`BipartiteGraph.backend`; subclasses with a
    #: different storage substrate (e.g. the memory-mapped variant) override.
    backend_name = "csr"

    def __init__(
        self,
        offsets: array,
        neighbors: array,
        degrees: Optional[array] = None,
    ) -> None:
        if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(neighbors):
            raise GraphConstructionError(
                "CSR offsets must start at 0 and end at len(neighbors)")
        if degrees is None:
            degrees = array(_NEIGHBOR_TYPECODE,
                            (offsets[i + 1] - offsets[i]
                             for i in range(len(offsets) - 1)))
        elif len(degrees) != len(offsets) - 1:
            raise GraphConstructionError(
                "CSR degrees length %d does not match %d rows"
                % (len(degrees), len(offsets) - 1))
        self.offsets = offsets
        self.neighbors = neighbors
        self.degrees = degrees
        self._view = memoryview(neighbors)

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]]) -> "CSRAdjacency":
        """Pack already-canonical (sorted, unique) neighbor rows into CSR."""
        offsets = array(_OFFSET_TYPECODE, [0]) * (len(rows) + 1)
        total = 0
        for v, row in enumerate(rows):
            total += len(row)
            offsets[v + 1] = total
        neighbors = array(_NEIGHBOR_TYPECODE, [0]) * total
        degrees = array(_NEIGHBOR_TYPECODE, [0]) * len(rows)
        pos = 0
        for v, row in enumerate(rows):
            degrees[v] = len(row)
            for w in row:
                neighbors[pos] = w
                pos += 1
        return cls(offsets, neighbors, degrees)

    # ------------------------------------------------------------------
    # Sequence-of-rows protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __getitem__(self, v: int) -> memoryview:
        if v < 0:
            v += len(self.offsets) - 1
        return self._view[self.offsets[v]:self.offsets[v + 1]]

    def __iter__(self) -> Iterator[memoryview]:
        view = self._view
        offsets = self.offsets
        start = 0
        for i in range(1, len(offsets)):
            end = offsets[i]
            yield view[start:end]
            start = end

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CSRAdjacency):
            return (self.offsets == other.offsets
                    and self.neighbors == other.neighbors)
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            for row, other_row in zip(self, other):
                if len(row) != len(other_row):
                    return False
                for a, b in zip(row, other_row):
                    if a != b:
                        return False
            return True
        return NotImplemented

    # Defining __eq__ clears the inherited __hash__; the buffers are mutable
    # so staying unhashable is correct.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return "CSRAdjacency(n_vertices=%d, n_entries=%d)" % (
            len(self), len(self.neighbors))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Bytes held by the three flat buffers (excludes object headers)."""
        return (self.offsets.itemsize * len(self.offsets)
                + self.neighbors.itemsize * len(self.neighbors)
                + self.degrees.itemsize * len(self.degrees))

    def to_rows(self) -> List[List[int]]:
        """Materialize a list-of-lists copy (for the list backend)."""
        return [list(row) for row in self]


def adjacency_arrays(
    graph: object,
) -> Optional[Tuple[array, array, array]]:
    """Return ``(offsets, neighbors, degrees)`` for a CSR-backed graph.

    Returns ``None`` when ``graph`` uses the list backend, so callers can
    keep their list code path unchanged::

        arrays = adjacency_arrays(graph)
        if arrays is not None:
            offsets, neighbors, degrees = arrays
            ...  # flat-buffer fast path
        else:
            ...  # per-row list path

    This is the only sanctioned way for code outside :mod:`repro.bigraph`
    to reach the flat buffers.
    """
    adj = getattr(graph, "adjacency", None)
    if isinstance(adj, CSRAdjacency):
        return adj.offsets, adj.neighbors, adj.degrees
    return None


def csr_from_indexed_edges(
    pairs: Callable[[], Iterable[Tuple[int, int]]],
    n_upper: int,
    n_lower: int,
    dedupe: bool = True,
) -> CSRAdjacency:
    """Build a :class:`CSRAdjacency` from per-layer index pairs in two passes.

    ``pairs`` is a zero-argument callable returning a fresh iterator over
    ``(upper_index, lower_index)`` edges; it is invoked twice — once for the
    counts pass (degree histogram → offsets) and once for the fill pass that
    scatters neighbor ids into their final slots.  No per-vertex Python list
    is ever created; the only transient state besides the output buffers is a
    cursor array and one sorted row at a time during canonicalisation.

    Duplicate edges are dropped when ``dedupe`` is true and raise
    :class:`GraphConstructionError` otherwise, matching
    :func:`repro.bigraph.builder.from_edge_list`.
    """
    if n_upper < 0 or n_lower < 0:
        raise GraphConstructionError("layer sizes must be non-negative")
    n = n_upper + n_lower

    # Pass 1: count per-vertex degrees (and validate index ranges).
    degrees = array(_NEIGHBOR_TYPECODE, [0]) * n
    for u, v in pairs():
        if not 0 <= u < n_upper or not 0 <= v < n_lower:
            raise GraphConstructionError(
                "edge index out of range: (%d, %d) with layers (%d, %d)"
                % (u, v, n_upper, n_lower))
        degrees[u] += 1
        degrees[n_upper + v] += 1

    offsets = array(_OFFSET_TYPECODE, [0]) * (n + 1)
    total = 0
    for i in range(n):
        total += degrees[i]
        offsets[i + 1] = total

    # Pass 2: scatter neighbor ids into their rows.
    neighbors = array(_NEIGHBOR_TYPECODE, [0]) * total
    cursor = array(_OFFSET_TYPECODE, offsets)
    for u, v in pairs():
        gv = n_upper + v
        slot = cursor[u]
        neighbors[slot] = gv
        cursor[u] = slot + 1
        slot = cursor[gv]
        neighbors[slot] = u
        cursor[gv] = slot + 1

    # Canonicalise: sort each row in place, drop (or reject) duplicates.
    write = 0
    for v in range(n):
        start = offsets[v]
        end = offsets[v + 1]
        row = sorted(neighbors[start:end])
        row_start = write
        prev = -1
        for w in row:
            if w == prev:
                if not dedupe:
                    raise GraphConstructionError(
                        "duplicate edge with dedupe=False")
                continue
            neighbors[write] = w
            write += 1
            prev = w
        offsets[v] = row_start
        degrees[v] = write - row_start
    offsets[n] = write
    if write < len(neighbors):
        del neighbors[write:]
    return CSRAdjacency(offsets, neighbors, degrees)
