"""Constructors that turn edge collections into :class:`BipartiteGraph`.

Two entry points cover the common cases:

* :class:`GraphBuilder` — incremental, label-based construction.  Labels from
  each layer live in separate namespaces, so the same label may appear on both
  layers (as in user-item datasets where ids overlap).
* :func:`from_edge_list` — fast path for integer edges that are already in
  per-layer index spaces ``0..n_upper-1`` and ``0..n_lower-1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bigraph.csr import csr_from_indexed_edges
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import GraphConstructionError

__all__ = ["GraphBuilder", "from_edge_list", "from_biadjacency"]


class GraphBuilder:
    """Incrementally assemble a bipartite graph from labeled edges.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.add_edge("alice", "bread")
    >>> b.add_edge("alice", "milk")
    >>> g = b.build()
    >>> g.n_upper, g.n_lower, g.n_edges
    (1, 2, 2)
    """

    def __init__(self) -> None:
        self._upper_index: Dict[object, int] = {}
        self._lower_index: Dict[object, int] = {}
        self._upper_labels: List[object] = []
        self._lower_labels: List[object] = []
        self._edges: List[Tuple[int, int]] = []

    def add_upper(self, label: object) -> int:
        """Register an upper vertex (idempotent); return its layer index."""
        idx = self._upper_index.get(label)
        if idx is None:
            idx = len(self._upper_labels)
            self._upper_index[label] = idx
            self._upper_labels.append(label)
        return idx

    def add_lower(self, label: object) -> int:
        """Register a lower vertex (idempotent); return its layer index."""
        idx = self._lower_index.get(label)
        if idx is None:
            idx = len(self._lower_labels)
            self._lower_index[label] = idx
            self._lower_labels.append(label)
        return idx

    def add_edge(self, upper_label: object, lower_label: object) -> None:
        """Add an edge between two labeled vertices, creating them if new."""
        self._edges.append((self.add_upper(upper_label),
                            self.add_lower(lower_label)))

    def add_edges(self, pairs: Iterable[Tuple[object, object]]) -> None:
        """Add many labeled edges at once."""
        for upper_label, lower_label in pairs:
            self.add_edge(upper_label, lower_label)

    @property
    def n_edges_staged(self) -> int:
        """Number of edge records staged so far (duplicates included)."""
        return len(self._edges)

    def build(self, dedupe: bool = True, backend: str = "list") -> BipartiteGraph:
        """Materialize the graph.

        Parameters
        ----------
        dedupe:
            Silently drop duplicate edges when ``True`` (the default, matching
            how multi-interaction datasets such as Taobao are usually
            collapsed to simple graphs).  When ``False`` a duplicate edge
            raises :class:`GraphConstructionError`.
        backend:
            Adjacency backend: ``"list"`` (default), ``"csr"`` for the
            flat-array layout built directly from the staged edges without
            intermediate per-vertex lists, or ``"memmap"`` for the same
            layout file-backed in a temporary directory.
        """
        return from_edge_list(
            self._edges,
            n_upper=len(self._upper_labels),
            n_lower=len(self._lower_labels),
            upper_labels=self._upper_labels,
            lower_labels=self._lower_labels,
            dedupe=dedupe,
            backend=backend,
        )


def from_edge_list(
    edges: Iterable[Tuple[int, int]],
    n_upper: Optional[int] = None,
    n_lower: Optional[int] = None,
    upper_labels: Optional[Sequence[object]] = None,
    lower_labels: Optional[Sequence[object]] = None,
    dedupe: bool = True,
    backend: str = "list",
    memmap_dir: Optional[str] = None,
) -> BipartiteGraph:
    """Build a graph from ``(upper_index, lower_index)`` pairs.

    Indices are per-layer (both zero-based); layer sizes default to one plus
    the largest index seen.  Isolated vertices beyond the largest index can be
    forced by passing explicit ``n_upper`` / ``n_lower``.  ``backend="csr"``
    packs the adjacency into flat arrays instead of per-vertex lists;
    ``backend="memmap"`` builds the same flat arrays file-backed under
    ``memmap_dir`` (a fresh temporary directory when ``None``, removed when
    the graph is collected) so the adjacency never has to be resident.
    """
    if backend not in ("list", "csr", "memmap"):
        raise GraphConstructionError(
            "unknown adjacency backend %r (expected 'list', 'csr' or"
            " 'memmap')" % (backend,))
    if memmap_dir is not None and backend != "memmap":
        raise GraphConstructionError(
            "memmap_dir only applies to backend='memmap'")
    edge_list = list(edges)
    max_u = max((e[0] for e in edge_list), default=-1)
    max_v = max((e[1] for e in edge_list), default=-1)
    if n_upper is None:
        n_upper = max_u + 1
    if n_lower is None:
        n_lower = max_v + 1
    if max_u >= n_upper or max_v >= n_lower:
        raise GraphConstructionError(
            "edge index out of range: max (%d, %d) with layers (%d, %d)"
            % (max_u, max_v, n_upper, n_lower))
    for u, v in edge_list:
        if u < 0 or v < 0:
            raise GraphConstructionError("negative vertex index in edge (%d, %d)" % (u, v))

    if backend == "csr":
        csr = csr_from_indexed_edges(
            lambda: iter(edge_list), n_upper, n_lower, dedupe=dedupe)
        return BipartiteGraph(n_upper, n_lower, csr,
                              upper_labels=upper_labels,
                              lower_labels=lower_labels,
                              _validate=False)

    if backend == "memmap":
        # Local import: keeps the numpy dependency out of list/csr builds.
        from repro.bigraph.memmap import memmap_graph_from_indexed_edges

        return memmap_graph_from_indexed_edges(
            lambda: iter(edge_list), n_upper, n_lower, path=memmap_dir,
            dedupe=dedupe, upper_labels=upper_labels,
            lower_labels=lower_labels)

    adjacency: List[List[int]] = [[] for _ in range(n_upper + n_lower)]
    for u, v in edge_list:
        gv = n_upper + v
        adjacency[u].append(gv)
        adjacency[gv].append(u)

    seen_duplicate = False
    for row in adjacency:
        row.sort()
        if dedupe:
            if len(row) > 1:
                deduped = [row[0]]
                for w in row[1:]:
                    if w != deduped[-1]:
                        deduped.append(w)
                if len(deduped) != len(row):
                    row[:] = deduped
        else:
            for i in range(1, len(row)):
                if row[i] == row[i - 1]:
                    seen_duplicate = True
                    break
    if seen_duplicate:
        raise GraphConstructionError("duplicate edge with dedupe=False")

    return BipartiteGraph(n_upper, n_lower, adjacency,
                          upper_labels=upper_labels,
                          lower_labels=lower_labels,
                          _validate=False)


def from_biadjacency(rows: Sequence[Sequence[int]]) -> BipartiteGraph:
    """Build a graph from a 0/1 biadjacency matrix (rows = upper layer).

    Convenient for spelling out small worked examples in tests::

        g = from_biadjacency([[1, 1, 0],
                              [0, 1, 1]])
    """
    edges = []
    width = len(rows[0]) if rows else 0
    for i, row in enumerate(rows):
        if len(row) != width:
            raise GraphConstructionError("ragged biadjacency matrix")
        for j, cell in enumerate(row):
            if cell:
                edges.append((i, j))
    return from_edge_list(edges, n_upper=len(rows), n_lower=width)
