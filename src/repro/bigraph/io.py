"""Edge-list persistence in the KONECT-style text format.

The paper's 15 KONECT datasets ship as whitespace-separated edge lists with
``%`` comment headers; the Taobao dataset uses a CSV-like layout.  This module
reads and writes a compatible format so that a user with the real files can
feed them straight into the library:

* lines starting with ``%`` or ``#`` are comments;
* each data line is ``<upper id> <lower id>`` (extra columns such as weights
  or timestamps are ignored);
* ids are arbitrary tokens — they are treated as labels per layer, so datasets
  whose two layers share an id space are handled correctly.
"""

from __future__ import annotations

import gzip
import io
import os
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.bigraph.builder import GraphBuilder
from repro.bigraph.csr import csr_from_indexed_edges
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import GraphConstructionError, InvalidParameterError
from repro.resilience.atomic import atomic_writer
from repro.resilience.faults import fault_site

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_lines",
           "loads", "dumps", "LoadStats"]

PathOrFile = Union[str, os.PathLike, TextIO]


@dataclass
class LoadStats:
    """Counters filled in by the loaders when an instance is passed in.

    ``edges`` counts well-formed data lines (before dedup); ``skipped``
    counts malformed lines dropped under ``on_error="skip"``.
    """

    edges: int = 0
    skipped: int = 0


def parse_edge_lines(lines: Iterable[str], on_error: str = "raise",
                     stats: Optional[LoadStats] = None,
                     ) -> Iterable[Tuple[str, str]]:
    """Yield ``(upper_token, lower_token)`` pairs from edge-list lines.

    ``on_error="raise"`` (the default) raises
    :class:`GraphConstructionError` on malformed data lines;
    ``on_error="skip"`` drops them, counting each drop in
    ``stats.skipped`` when a :class:`LoadStats` is supplied.
    """
    if on_error not in ("raise", "skip"):
        raise InvalidParameterError(
            "on_error must be 'raise' or 'skip', got %r" % (on_error,))
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            if on_error == "skip":
                if stats is not None:
                    stats.skipped += 1
                continue
            raise GraphConstructionError(
                "line %d: expected at least two columns, got %r" % (lineno, raw))
        if stats is not None:
            stats.edges += 1
        yield parts[0], parts[1]


def _open_text(path, mode: str):
    """Open a text file, transparently gzip-compressed for ``.gz`` paths.

    KONECT distributes large edge lists compressed; accepting ``.gz``
    directly avoids a 100M-line decompress-to-disk step.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_edge_list(source: PathOrFile, dedupe: bool = True,
                   backend: str = "list", on_error: str = "raise",
                   stats: Optional[LoadStats] = None,
                   memmap_dir: Optional[str] = None) -> BipartiteGraph:
    """Read a bipartite graph from a path (optionally ``.gz``) or open file.

    Tokens in the first column become upper-layer labels and tokens in the
    second column lower-layer labels; duplicate edges are collapsed unless
    ``dedupe=False``.

    ``backend="csr"`` streams the file once and builds the flat-array
    adjacency directly (counts pass → fill pass) without materializing
    per-vertex Python lists — the loader to use for large datasets.
    ``backend="memmap"`` goes one step further and writes those flat arrays
    file-backed under ``memmap_dir`` (a temporary directory when ``None``,
    removed when the graph is collected), so the neighbor table itself
    never has to be resident.  Label ids are assigned in first-seen order
    in every backend, so all three produce identical vertex numbering.

    ``on_error="skip"`` tolerates malformed data lines instead of raising,
    recording how many were dropped in ``stats`` (see
    :func:`parse_edge_lines`); all backends honour it identically.
    """
    fault_site("io.read_edge_list")
    if backend in ("csr", "memmap"):
        return _read_edge_list_csr(source, dedupe, on_error, stats,
                                   backend=backend, memmap_dir=memmap_dir)
    if backend != "list":
        raise GraphConstructionError(
            "unknown adjacency backend %r (expected 'list', 'csr' or"
            " 'memmap')" % (backend,))
    if memmap_dir is not None:
        raise GraphConstructionError(
            "memmap_dir only applies to backend='memmap'")
    builder = GraphBuilder()
    if isinstance(source, (str, os.PathLike)):
        with _open_text(source, "r") as handle:
            builder.add_edges(parse_edge_lines(handle, on_error, stats))
    else:
        builder.add_edges(parse_edge_lines(source, on_error, stats))
    return builder.build(dedupe=dedupe)


def _read_edge_list_csr(source: PathOrFile, dedupe: bool,
                        on_error: str = "raise",
                        stats: Optional[LoadStats] = None,
                        backend: str = "csr",
                        memmap_dir: Optional[str] = None) -> BipartiteGraph:
    """Streaming CSR loader: one parse of the input, two passes over flat
    index buffers (degree counts, then neighbor fill).

    The only per-edge state kept between the parse and the CSR build is a
    pair of flat ``array('i')`` index buffers (8 bytes per edge) — never a
    Python list per vertex.  Re-reading the source is deliberately avoided:
    for ``.gz`` inputs a second pass would decompress the whole file again,
    and arbitrary file objects may not be seekable.

    With ``backend="memmap"`` the output buffers are file-backed from the
    start, so peak resident memory is the index buffers plus label tables —
    never the neighbor table.
    """
    upper_index: Dict[str, int] = {}
    lower_index: Dict[str, int] = {}
    upper_labels: List[str] = []
    lower_labels: List[str] = []
    us = array("i")
    vs = array("i")

    def _consume(lines: Iterable[str]) -> None:
        for tok_u, tok_v in parse_edge_lines(lines, on_error, stats):
            ui = upper_index.get(tok_u)
            if ui is None:
                ui = len(upper_labels)
                upper_index[tok_u] = ui
                upper_labels.append(tok_u)
            vi = lower_index.get(tok_v)
            if vi is None:
                vi = len(lower_labels)
                lower_index[tok_v] = vi
                lower_labels.append(tok_v)
            us.append(ui)
            vs.append(vi)

    if isinstance(source, (str, os.PathLike)):
        with _open_text(source, "r") as handle:
            _consume(handle)
    else:
        _consume(source)

    n_upper = len(upper_labels)
    n_lower = len(lower_labels)
    if backend == "memmap":
        from repro.bigraph.memmap import memmap_graph_from_indexed_edges

        return memmap_graph_from_indexed_edges(
            lambda: zip(us, vs), n_upper, n_lower, path=memmap_dir,
            dedupe=dedupe, upper_labels=upper_labels,
            lower_labels=lower_labels)
    csr = csr_from_indexed_edges(
        lambda: zip(us, vs), n_upper, n_lower, dedupe=dedupe)
    return BipartiteGraph(n_upper, n_lower, csr,
                          upper_labels=upper_labels,
                          lower_labels=lower_labels,
                          _validate=False)


def write_edge_list(graph: BipartiteGraph, target: PathOrFile,
                    header: str = "") -> None:
    """Write ``graph`` as a KONECT-style edge list.

    Labels are emitted when present; otherwise per-layer integer indices are
    used (so round-tripping an unlabeled graph preserves structure).

    Path targets (including ``.gz``) are written crash-safely: the edge list
    appears atomically or not at all, never truncated mid-stream.
    """
    def _emit(handle: TextIO) -> None:
        if header:
            for line in header.splitlines():
                handle.write("%% %s\n" % line)
        handle.write("%% bip n_upper=%d n_lower=%d n_edges=%d\n"
                     % (graph.n_upper, graph.n_lower, graph.n_edges))
        for u, v in graph.edges():
            handle.write("%s %s\n" % (graph.label_of(u), graph.label_of(v)))

    if isinstance(target, (str, os.PathLike)):
        # The temp file has a ``.tmp`` suffix, so compression must key off
        # the *target* name, not the temp path.
        opener = ((lambda tmp: gzip.open(tmp, "wt", encoding="utf-8"))
                  if str(target).endswith(".gz") else None)
        with atomic_writer(target, opener=opener) as handle:
            _emit(handle)
    else:
        _emit(target)


def loads(text: str, dedupe: bool = True, backend: str = "list",
          on_error: str = "raise",
          stats: Optional[LoadStats] = None) -> BipartiteGraph:
    """Parse a graph from an in-memory edge-list string (tests, docs)."""
    return read_edge_list(io.StringIO(text), dedupe=dedupe, backend=backend,
                          on_error=on_error, stats=stats)


def dumps(graph: BipartiteGraph, header: str = "") -> str:
    """Serialize ``graph`` to an edge-list string."""
    buffer = io.StringIO()
    write_edge_list(graph, buffer, header=header)
    return buffer.getvalue()
