"""One-mode projections of bipartite graphs.

Projecting onto one layer (users connected when they share an item, items
when they share a user) is the standard bridge between bipartite analysis
and the unipartite k-core literature the paper builds on: the projection's
k-core machinery (`repro.abcore.kcore`) gives a comparison point for the
(α,β)-core, and weighted projections expose co-engagement strength.

Projections are returned as plain adjacency structures (dicts), matching
:mod:`repro.abcore.kcore`'s graph representation.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = ["project", "weighted_project", "co_engagement"]


def project(graph: BipartiteGraph, layer: str = "upper") -> Dict[int, Set[int]]:
    """Unweighted projection: same-layer vertices sharing ≥ 1 neighbor.

    Vertices with no projection edges still appear (with empty neighbor
    sets) so downstream k-core code sees the full layer.
    """
    vertices = _layer_vertices(graph, layer)
    adjacency: Dict[int, Set[int]] = {v: set() for v in vertices}
    neighbors = graph.neighbors  # hoisted: one row lookup per visit, both backends
    for v in vertices:
        for mid in neighbors(v):
            for w in neighbors(mid):
                if w != v:
                    adjacency[v].add(w)
    return adjacency


def weighted_project(graph: BipartiteGraph,
                     layer: str = "upper") -> Dict[Tuple[int, int], int]:
    """Weighted projection: ``{(v, w): #shared neighbors}`` with ``v < w``."""
    vertices = _layer_vertices(graph, layer)
    weights: Dict[Tuple[int, int], int] = {}
    neighbors = graph.neighbors
    for v in vertices:
        for mid in neighbors(v):
            for w in neighbors(mid):
                if w > v:
                    key = (v, w)
                    weights[key] = weights.get(key, 0) + 1
    return weights


def co_engagement(graph: BipartiteGraph, v: int, w: int) -> int:
    """Number of shared neighbors of two same-layer vertices."""
    if graph.is_upper(v) != graph.is_upper(w):
        raise InvalidParameterError(
            "co-engagement is defined within one layer; got %d and %d"
            % (v, w))
    a = graph.neighbors(v)
    b = set(graph.neighbors(w))
    return sum(1 for x in a if x in b)


def _layer_vertices(graph: BipartiteGraph, layer: str):
    if layer == "upper":
        return graph.upper_vertices()
    if layer == "lower":
        return graph.lower_vertices()
    raise InvalidParameterError("layer must be 'upper' or 'lower', got %r"
                                % (layer,))
