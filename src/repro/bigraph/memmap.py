"""Memory-mapped CSR adjacency: the out-of-core graph backend.

``backend="memmap"`` keeps the three CSR buffers
(``offsets``/``neighbors``/``degrees``, see :mod:`repro.bigraph.csr`) in
files under one directory and exposes them through ``np.memmap`` views, so
a campaign touches graph pages on demand instead of holding the whole
adjacency resident.  The buffers reach :class:`CSRAdjacency` as
``memoryview`` wrappers — the same buffer-protocol route the shared-memory
attach path uses — so every algorithm layer works unchanged.

On-disk layout (one directory per graph)::

    header.json     {"schema", "n_upper", "n_lower", "n_entries",
                     "upper_labels", "lower_labels"}
    offsets.bin     int64[n_vertices + 1]
    neighbors.bin   int32[>= n_entries]   (file may be longer after dedupe)
    degrees.bin     int32[n_vertices]

The header is written last (atomically), so a directory with a readable
header is always complete.

Lifecycle: :class:`MemmapStore` owns the maps and releases them in
:meth:`MemmapStore.close`; :class:`MemmapCSRAdjacency` holds the store and
forwards :meth:`MemmapCSRAdjacency.close`.  Graphs built into an unnamed
temporary directory clean the files up when the store is collected.

numpy is an optional dependency of this module only; constructors raise
:class:`GraphConstructionError` when it is unavailable instead of breaking
imports.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import weakref
from array import array
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.bigraph.csr import CSRAdjacency
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import GraphConstructionError
from repro.resilience.atomic import atomic_write_text

__all__ = [
    "MEMMAP_SCHEMA",
    "MemmapStore",
    "MemmapCSRAdjacency",
    "save_graph_memmap",
    "load_graph_memmap",
    "memmap_graph_from_indexed_edges",
]

#: Bump when the on-disk layout changes; loaders reject other versions.
MEMMAP_SCHEMA = 1

_HEADER = "header.json"
_FILES = (("offsets", "offsets.bin"), ("neighbors", "neighbors.bin"),
          ("degrees", "degrees.bin"))


def _require_numpy():
    try:
        import numpy
    except ImportError as error:  # pragma: no cover - image ships numpy
        raise GraphConstructionError(
            "backend='memmap' requires numpy, which is not installed"
        ) from error
    return numpy


class MemmapStore:
    """Owner of the three file-backed buffer maps of one graph directory.

    The store acquires its ``np.memmap`` views in :meth:`open` (called by
    the constructor) and releases them in :meth:`close`; dropping every
    external ``memoryview`` first is the caller's job (the adjacency does
    this), after which the OS reclaims the mapping.  Safe to close twice.
    """

    def __init__(self, path: "os.PathLike[str] | str") -> None:
        self.path = os.fspath(path)
        self.header = _read_header(self.path)
        self._maps: List[object] = []
        self.offsets: Optional[memoryview] = None
        self.neighbors: Optional[memoryview] = None
        self.degrees: Optional[memoryview] = None
        self._closed = False
        self.open()

    def open(self) -> None:
        """Map the three buffer files read-only.

        Before mapping, each body file's on-disk size is checked against
        the length the header promises (``>=``, not ``==`` — the
        neighbors file legitimately keeps a dead tail after dedupe
        compaction).  A shorter file means the write was truncated or
        the body was damaged after the header landed; that raises a
        :class:`GraphConstructionError` naming the file instead of a
        baffling mmap/IndexError deep inside a campaign.
        """
        np = _require_numpy()
        header = self.header
        n = int(header["n_upper"]) + int(header["n_lower"])
        n_entries = int(header["n_entries"])
        shapes = {"offsets": (n + 1,), "neighbors": (n_entries,),
                  "degrees": (n,)}
        dtypes = {"offsets": np.int64, "neighbors": np.int32,
                  "degrees": np.int32}
        formats = {"offsets": "q", "neighbors": "i", "degrees": "i"}
        itemsizes = {"offsets": 8, "neighbors": 4, "degrees": 4}
        for name, filename in _FILES:
            if shapes[name][0] == 0:
                continue
            file_path = os.path.join(self.path, filename)
            needed = itemsizes[name] * shapes[name][0]
            try:
                actual = os.path.getsize(file_path)
            except OSError as error:
                raise GraphConstructionError(
                    "memmap graph %s is missing its %s file %s: %s"
                    % (self.path, name, filename, error)) from error
            if actual < needed:
                raise GraphConstructionError(
                    "memmap graph %s has a truncated %s file: %s holds "
                    "%d bytes but the header requires at least %d "
                    "(%d entries of %d bytes); the graph directory is "
                    "corrupt — rebuild it with save_graph_memmap"
                    % (self.path, name, filename, actual, needed,
                       shapes[name][0], itemsizes[name]))
        views = {}
        try:
            for name, filename in _FILES:
                if shapes[name][0] == 0:
                    # mmap refuses empty files; an edge-free graph has an
                    # empty neighbor table, which needs no backing pages.
                    views[name] = memoryview(b"").cast(formats[name])
                    continue
                mapped = np.memmap(os.path.join(self.path, filename),
                                   dtype=dtypes[name], mode="r",
                                   shape=shapes[name])
                self._maps.append(mapped)
                views[name] = memoryview(mapped)
        except (OSError, ValueError):
            self.close()
            raise
        self.offsets = views["offsets"]
        self.neighbors = views["neighbors"]
        self.degrees = views["degrees"]
        self._closed = False

    @property
    def nbytes(self) -> int:
        """Bytes covered by the three maps."""
        total = 0
        for view in (self.offsets, self.neighbors, self.degrees):
            if view is not None:
                total += view.itemsize * len(view)
        return total

    def close(self) -> None:
        """Release the views and drop the maps; safe to call twice.

        A caller that still holds row memoryviews keeps the pages mapped
        until those views die — same contract as the shared-memory attach
        path.
        """
        if self._closed:
            return
        self._closed = True
        for view in (self.offsets, self.neighbors, self.degrees):
            if view is not None:
                view.release()
        self.offsets = self.neighbors = self.degrees = None
        self._maps = []

    def __enter__(self) -> "MemmapStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemmapCSRAdjacency(CSRAdjacency):
    """A :class:`CSRAdjacency` whose buffers live in a :class:`MemmapStore`.

    Structurally identical to the in-RAM CSR table (rows are memoryview
    slices, equality is value-based across backends); the only additions
    are the owning ``store`` and :meth:`close`.
    """

    __slots__ = ("store",)

    #: Reported through :attr:`BipartiteGraph.backend`.
    backend_name = "memmap"

    def __init__(self, store: MemmapStore) -> None:
        if store.offsets is None or store.neighbors is None \
                or store.degrees is None:
            raise GraphConstructionError(
                "memmap store %s is closed" % store.path)
        super().__init__(
            store.offsets,  # type: ignore[arg-type]
            store.neighbors,  # type: ignore[arg-type]
            store.degrees,  # type: ignore[arg-type]
        )
        self.store = store

    def close(self) -> None:
        """Drop the row view and release the underlying store."""
        self._view.release()
        self.store.close()


def _read_header(path: str) -> dict:
    header_path = os.path.join(path, _HEADER)
    try:
        with open(header_path, "r", encoding="utf-8") as handle:
            header = json.load(handle)
    except OSError as error:
        raise GraphConstructionError(
            "cannot read memmap graph header %s: %s"
            % (header_path, error)) from error
    except json.JSONDecodeError as error:
        raise GraphConstructionError(
            "memmap graph header %s is not valid JSON: %s"
            % (header_path, error)) from error
    if header.get("schema") != MEMMAP_SCHEMA:
        raise GraphConstructionError(
            "memmap graph %s has schema %r; this build reads version %d"
            % (path, header.get("schema"), MEMMAP_SCHEMA))
    return header


def _write_header(path: str, n_upper: int, n_lower: int, n_entries: int,
                  upper_labels: Optional[Sequence[object]],
                  lower_labels: Optional[Sequence[object]]) -> None:
    header = {
        "schema": MEMMAP_SCHEMA,
        "n_upper": n_upper,
        "n_lower": n_lower,
        "n_entries": n_entries,
        # Labels round-trip through JSON: strings and ints come back
        # unchanged, tuples come back as lists.
        "upper_labels": list(upper_labels) if upper_labels is not None else None,
        "lower_labels": list(lower_labels) if lower_labels is not None else None,
    }
    atomic_write_text(os.path.join(path, _HEADER),
                      json.dumps(header, sort_keys=True) + "\n")


def save_graph_memmap(graph: BipartiteGraph,
                      path: "os.PathLike[str] | str") -> str:
    """Persist ``graph`` as a memmap directory; returns the directory path.

    List-backed graphs are converted (one transient CSR copy); the source
    graph is never mutated.  The header is written last, so a crash leaves
    no readable-but-truncated graph behind.
    """
    csr_graph = graph.to_csr()
    adj = csr_graph.adjacency
    assert isinstance(adj, CSRAdjacency)
    target = os.fspath(path)
    os.makedirs(target, exist_ok=True)
    for name, filename in _FILES:
        buf = getattr(adj, name)
        with open(os.path.join(target, filename), "wb") as handle:
            if len(buf):
                handle.write(memoryview(buf).cast("B"))
    _write_header(target, csr_graph.n_upper, csr_graph.n_lower,
                  len(adj.neighbors),
                  csr_graph._upper_labels, csr_graph._lower_labels)
    return target


def load_graph_memmap(path: "os.PathLike[str] | str",
                      _cleanup_dir: bool = False) -> BipartiteGraph:
    """Open a memmap graph directory as a :class:`BipartiteGraph`.

    The returned graph's adjacency pages stream from disk on access; call
    ``graph.adjacency.close()`` (or drop the graph) to release the maps.
    With ``_cleanup_dir`` (used for unnamed temporary directories) the
    directory is deleted once the store is garbage-collected.
    """
    store = MemmapStore(path)
    if _cleanup_dir:
        # rmtree on a still-mapped file is fine on POSIX: the pages live
        # until the mapping dies, the directory entry goes away now.
        weakref.finalize(store, shutil.rmtree, store.path,
                         ignore_errors=True)
    adjacency = MemmapCSRAdjacency(store)
    header = store.header
    return BipartiteGraph(
        int(header["n_upper"]), int(header["n_lower"]), adjacency,
        upper_labels=header.get("upper_labels"),
        lower_labels=header.get("lower_labels"),
        _validate=False)


def memmap_graph_from_indexed_edges(
    pairs: Callable[[], Iterable[Tuple[int, int]]],
    n_upper: int,
    n_lower: int,
    path: Optional["os.PathLike[str] | str"] = None,
    dedupe: bool = True,
    upper_labels: Optional[Sequence[object]] = None,
    lower_labels: Optional[Sequence[object]] = None,
) -> BipartiteGraph:
    """Build a memmap-backed graph from per-layer index pairs, out of core.

    The two-pass CSR construction of
    :func:`repro.bigraph.csr.csr_from_indexed_edges` is replayed with the
    output buffers file-backed from the start, so peak resident memory is
    the caller's edge iterator plus one int64 cursor per vertex — never the
    neighbor table itself.  ``pairs`` is invoked twice (counts pass, fill
    pass), exactly like the in-RAM builder.

    ``path=None`` builds into a fresh temporary directory that is removed
    when the returned graph's store is garbage-collected.
    """
    np = _require_numpy()
    if n_upper < 0 or n_lower < 0:
        raise GraphConstructionError("layer sizes must be non-negative")
    cleanup = path is None
    target = (tempfile.mkdtemp(prefix="repro-memmap-")
              if path is None else os.fspath(path))
    os.makedirs(target, exist_ok=True)
    n = n_upper + n_lower

    degrees = np.memmap(os.path.join(target, "degrees.bin"),
                        dtype=np.int32, mode="w+", shape=(max(1, n),))
    degrees[:] = 0
    for u, v in pairs():
        if not 0 <= u < n_upper or not 0 <= v < n_lower:
            raise GraphConstructionError(
                "edge index out of range: (%d, %d) with layers (%d, %d)"
                % (u, v, n_upper, n_lower))
        degrees[u] += 1
        degrees[n_upper + v] += 1

    offsets = np.memmap(os.path.join(target, "offsets.bin"),
                        dtype=np.int64, mode="w+", shape=(n + 1,))
    offsets[0] = 0
    if n:
        np.cumsum(degrees[:n], out=offsets[1:])
    total = int(offsets[n])

    neighbors = np.memmap(os.path.join(target, "neighbors.bin"),
                          dtype=np.int32, mode="w+",
                          shape=(max(1, total),))
    cursor = np.array(offsets[:n], dtype=np.int64, copy=True)
    for u, v in pairs():
        gv = n_upper + v
        slot = cursor[u]
        neighbors[slot] = gv
        cursor[u] = slot + 1
        slot = cursor[gv]
        neighbors[slot] = u
        cursor[gv] = slot + 1
    del cursor

    # Canonicalise: sort each row in place, drop (or reject) duplicates.
    # Mirrors csr_from_indexed_edges; the dedupe-compacted tail of the
    # neighbors file is simply never mapped on reload.
    write = 0
    for v in range(n):
        start = int(offsets[v])
        end = int(offsets[v + 1])
        row = np.sort(neighbors[start:end])
        if dedupe:
            row = np.unique(row)
        elif len(row) > 1 and (row[1:] == row[:-1]).any():
            raise GraphConstructionError("duplicate edge with dedupe=False")
        width = len(row)
        neighbors[write:write + width] = row
        offsets[v] = write
        degrees[v] = width
        write += width
    offsets[n] = write

    for mapped in (degrees, offsets, neighbors):
        mapped.flush()
    del degrees, offsets, neighbors
    _write_header(target, n_upper, n_lower, write,
                  upper_labels, lower_labels)
    return load_graph_memmap(target, _cleanup_dir=cleanup)
