"""Bipartite graph substrate: structure, construction, I/O, mutation, stats."""

from repro.bigraph.builder import GraphBuilder, from_biadjacency, from_edge_list
from repro.bigraph.csr import CSRAdjacency, adjacency_arrays
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.io import dumps, loads, read_edge_list, write_edge_list
from repro.bigraph.kernel import FollowerKernel, kernel_for
from repro.bigraph.mutation import (
    add_edges,
    disjoint_union,
    induced_subgraph,
    relabel_compact,
    remove_vertices,
    swap_layers,
)
from repro.bigraph.projection import co_engagement, project, weighted_project
from repro.bigraph.shm import (
    AttachedGraph,
    SharedGraphExport,
    SharedGraphMeta,
    attach_shared_graph,
    export_shared_graph,
)
from repro.bigraph.stats import (
    GraphSummary,
    degree_histogram,
    memory_footprint,
    summarize,
)
from repro.bigraph.validation import validate_graph, validate_problem

__all__ = [
    "BipartiteGraph",
    "CSRAdjacency",
    "FollowerKernel",
    "GraphBuilder",
    "GraphSummary",
    "AttachedGraph",
    "SharedGraphExport",
    "SharedGraphMeta",
    "adjacency_arrays",
    "attach_shared_graph",
    "export_shared_graph",
    "memory_footprint",
    "validate_graph",
    "add_edges",
    "degree_histogram",
    "disjoint_union",
    "dumps",
    "from_biadjacency",
    "from_edge_list",
    "induced_subgraph",
    "kernel_for",
    "loads",
    "project",
    "read_edge_list",
    "relabel_compact",
    "remove_vertices",
    "summarize",
    "swap_layers",
    "co_engagement",
    "weighted_project",
    "validate_problem",
    "write_edge_list",
]
