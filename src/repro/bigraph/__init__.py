"""Bipartite graph substrate: structure, construction, I/O, mutation, stats."""

from repro.bigraph.builder import GraphBuilder, from_biadjacency, from_edge_list
from repro.bigraph.components import (
    ComponentDecomposition,
    SubgraphView,
    component_labels,
    component_sizes,
    decompose,
)
from repro.bigraph.csr import CSRAdjacency, adjacency_arrays
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.memmap import (
    MemmapCSRAdjacency,
    MemmapStore,
    load_graph_memmap,
    memmap_graph_from_indexed_edges,
    save_graph_memmap,
)
from repro.bigraph.io import dumps, loads, read_edge_list, write_edge_list
from repro.bigraph.kernel import FollowerKernel, kernel_for
from repro.bigraph.mutation import (
    add_edges,
    disjoint_union,
    induced_subgraph,
    relabel_compact,
    remove_vertices,
    swap_layers,
)
from repro.bigraph.projection import co_engagement, project, weighted_project
from repro.bigraph.shm import (
    AttachedGraph,
    SharedGraphExport,
    SharedGraphMeta,
    attach_shared_graph,
    export_shared_graph,
)
from repro.bigraph.stats import (
    GraphSummary,
    degree_histogram,
    memory_footprint,
    summarize,
)
from repro.bigraph.validation import validate_graph, validate_problem

__all__ = [
    "BipartiteGraph",
    "CSRAdjacency",
    "ComponentDecomposition",
    "FollowerKernel",
    "GraphBuilder",
    "GraphSummary",
    "MemmapCSRAdjacency",
    "MemmapStore",
    "SubgraphView",
    "AttachedGraph",
    "SharedGraphExport",
    "SharedGraphMeta",
    "adjacency_arrays",
    "attach_shared_graph",
    "component_labels",
    "component_sizes",
    "decompose",
    "export_shared_graph",
    "load_graph_memmap",
    "memmap_graph_from_indexed_edges",
    "memory_footprint",
    "save_graph_memmap",
    "validate_graph",
    "add_edges",
    "degree_histogram",
    "disjoint_union",
    "dumps",
    "from_biadjacency",
    "from_edge_list",
    "induced_subgraph",
    "kernel_for",
    "loads",
    "project",
    "read_edge_list",
    "relabel_compact",
    "remove_vertices",
    "summarize",
    "swap_layers",
    "co_engagement",
    "weighted_project",
    "validate_problem",
    "write_edge_list",
]
