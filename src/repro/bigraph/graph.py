"""Compact bipartite graph structure used by every algorithm in this library.

Vertices are integers in a single global id space:

* upper-layer vertices occupy ids ``0 .. n_upper - 1``;
* lower-layer vertices occupy ids ``n_upper .. n_upper + n_lower - 1``.

This layout lets the peeling and order-computation code index flat Python
lists by vertex id, which is the fastest option available to pure Python.
User-facing labels (strings, original dataset ids, ...) are kept in optional
label tables and never enter the hot paths.

Two adjacency backends share the same API:

* ``list`` — one sorted Python list per vertex (the default; cheapest for
  small graphs and ad-hoc construction).
* ``csr`` — :class:`repro.bigraph.csr.CSRAdjacency`: compressed sparse row.
  ``offsets`` (``array('q')``, length ``n_vertices + 1``) and ``neighbors``
  (``array('i')``, one 4-byte entry per edge endpoint) flat buffers plus a
  cached ``degrees`` array; row ``v`` is the ``memoryview`` slice
  ``neighbors[offsets[v]:offsets[v + 1]]``.  Select it with
  :meth:`BipartiteGraph.to_csr`, ``GraphBuilder.build(backend="csr")`` or
  ``read_edge_list(..., backend="csr")``.

``neighbors(v)`` returns a list for the list backend and a ``memoryview``
slice for CSR; both are sorted, supporting ``len``/indexing/iteration/``in``
and ``bisect``, so algorithm code works unchanged against either.

The graph is immutable after construction.  Algorithms that need to "delete"
vertices do so with alive masks; algorithms that need a structurally modified
graph (cascade simulation, hardness gadgets) build a new one via
:mod:`repro.bigraph.mutation`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.bigraph.csr import CSRAdjacency
from repro.exceptions import GraphConstructionError

__all__ = ["BipartiteGraph", "Adjacency"]

#: Either adjacency backend: per-vertex lists or a CSR flat-array table.
Adjacency = Union[List[List[int]], CSRAdjacency]


class BipartiteGraph:
    """An unweighted, undirected bipartite graph ``G(U ∪ L, E)``.

    Parameters
    ----------
    n_upper:
        Number of upper-layer vertices.
    n_lower:
        Number of lower-layer vertices.
    adjacency:
        One sorted neighbor list per vertex, indexed by global vertex id —
        either a ``List[List[int]]`` or a :class:`~repro.bigraph.csr.CSRAdjacency`.
        ``adjacency[u]`` for an upper vertex ``u`` must contain only lower
        vertex ids and vice versa.  Ownership passes to the graph.
    upper_labels / lower_labels:
        Optional user-facing labels, parallel to the layer's vertices.

    Use :class:`repro.bigraph.builder.GraphBuilder` or the module-level
    constructors in :mod:`repro.bigraph` instead of calling this directly
    unless the adjacency is already in canonical form.
    """

    __slots__ = ("n_upper", "n_lower", "_adj", "n_edges",
                 "_upper_labels", "_lower_labels", "_label_index",
                 "__weakref__")

    def __init__(
        self,
        n_upper: int,
        n_lower: int,
        adjacency: Adjacency,
        upper_labels: Optional[Sequence[object]] = None,
        lower_labels: Optional[Sequence[object]] = None,
        _validate: bool = True,
    ) -> None:
        if n_upper < 0 or n_lower < 0:
            raise GraphConstructionError("layer sizes must be non-negative")
        if len(adjacency) != n_upper + n_lower:
            raise GraphConstructionError(
                "adjacency has %d rows, expected %d"
                % (len(adjacency), n_upper + n_lower)
            )
        self.n_upper = n_upper
        self.n_lower = n_lower
        self._adj = adjacency
        if isinstance(adjacency, CSRAdjacency):
            # All upper rows are contiguous at the front of the buffer.
            self.n_edges = int(adjacency.offsets[n_upper])
        else:
            self.n_edges = sum(len(adjacency[u]) for u in range(n_upper))
        self._upper_labels = list(upper_labels) if upper_labels is not None else None
        self._lower_labels = list(lower_labels) if lower_labels is not None else None
        self._label_index: Optional[Dict[Tuple[str, object], int]] = None
        if _validate:
            self._check_consistency()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Total number of vertices ``|U| + |L|``."""
        return self.n_upper + self.n_lower

    def is_upper(self, v: int) -> bool:
        """Return ``True`` when ``v`` is an upper-layer vertex."""
        return v < self.n_upper

    def is_lower(self, v: int) -> bool:
        """Return ``True`` when ``v`` is a lower-layer vertex."""
        return v >= self.n_upper

    def layer(self, v: int) -> str:
        """Return ``"upper"`` or ``"lower"`` for vertex ``v``."""
        return "upper" if v < self.n_upper else "lower"

    def lower_index(self, v: int) -> int:
        """Per-layer index of a lower vertex ``v`` (its offset into ``L``).

        This is the sanctioned way to convert a global id back to a
        lower-layer position; code outside :mod:`repro.bigraph` must not do
        the ``v - n_upper`` arithmetic itself (the ``layer-safety`` analysis
        rule enforces this).
        """
        return v - self.n_upper

    def degree(self, v: int) -> int:
        """Degree of vertex ``v`` in the full graph."""
        return len(self._adj[v])

    def neighbors(self, v: int) -> Sequence[int]:
        """Sorted neighbors of ``v`` (do not mutate).

        A ``list`` for the list backend, a ``memoryview`` slice for CSR;
        both support ``len``/indexing/iteration/``in``/``bisect``.
        """
        return self._adj[v]

    @property
    def adjacency(self) -> Adjacency:
        """The raw adjacency table (read-only by convention)."""
        return self._adj

    @property
    def backend(self) -> str:
        """Adjacency backend name: ``"csr"``, ``"memmap"`` or ``"list"``."""
        if isinstance(self._adj, CSRAdjacency):
            return self._adj.backend_name
        return "list"

    def upper_vertices(self) -> range:
        """Ids of all upper-layer vertices."""
        return range(self.n_upper)

    def lower_vertices(self) -> range:
        """Ids of all lower-layer vertices."""
        return range(self.n_upper, self.n_upper + self.n_lower)

    def vertices(self) -> range:
        """Ids of all vertices, upper layer first."""
        return range(self.n_upper + self.n_lower)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(upper_id, lower_id)`` pairs."""
        for u in range(self.n_upper):
            for v in self._adj[u]:
                yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the edge ``{u, v}`` exists (binary search)."""
        if self.degree(u) > self.degree(v):
            u, v = v, u
        row = self._adj[u]
        i = bisect_left(row, v)
        return i < len(row) and row[i] == v

    def max_degree(self) -> int:
        """Maximum degree over all vertices (0 on an empty graph)."""
        if isinstance(self._adj, CSRAdjacency):
            return max(self._adj.degrees) if self._adj.degrees else 0
        if not self._adj:
            return 0
        return max(len(row) for row in self._adj)

    def degree_threshold(self, v: int, alpha: int, beta: int) -> int:
        """The (α,β)-core degree requirement that applies to vertex ``v``."""
        return alpha if v < self.n_upper else beta

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------

    def label_of(self, v: int) -> object:
        """User label of ``v``; falls back to the integer id when unlabeled."""
        if v < self.n_upper:
            if self._upper_labels is not None:
                return self._upper_labels[v]
            return v
        if self._lower_labels is not None:
            return self._lower_labels[v - self.n_upper]
        return v

    def vertex_of(self, layer: str, label: object) -> int:
        """Resolve a ``(layer, label)`` pair back to a vertex id.

        Raises ``KeyError`` when the label is unknown.  Builds a lookup index
        lazily on first use.  A layer without a label table resolves integer
        ids directly, so half-labeled graphs (only one layer labeled) keep
        working for the unlabeled layer.
        """
        if layer not in ("upper", "lower"):
            raise KeyError("layer must be 'upper' or 'lower', got %r" % (layer,))
        if self._label_index is None:
            index: Dict[Tuple[str, object], int] = {}
            if self._upper_labels is not None:
                for i, lbl in enumerate(self._upper_labels):
                    index[("upper", lbl)] = i
            if self._lower_labels is not None:
                for i, lbl in enumerate(self._lower_labels):
                    index[("lower", lbl)] = self.n_upper + i
            self._label_index = index
        hit = self._label_index.get((layer, label))
        if hit is not None:
            return hit
        table = self._upper_labels if layer == "upper" else self._lower_labels
        if table is None:
            # Unlabeled layer: labels *are* vertex ids.
            try:
                v = int(label)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise KeyError((layer, label)) from None
            if layer == "upper" and 0 <= v < self.n_upper:
                return v
            if layer == "lower" and self.n_upper <= v < self.n_vertices:
                return v
        raise KeyError((layer, label))

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return "BipartiteGraph(n_upper=%d, n_lower=%d, n_edges=%d)" % (
            self.n_upper, self.n_lower, self.n_edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (self.n_upper == other.n_upper
                and self.n_lower == other.n_lower
                and self._adj == other._adj)

    def __hash__(self) -> int:  # pragma: no cover - identity hash is enough
        return id(self)

    def copy_adjacency(self) -> List[List[int]]:
        """Deep-copied list-of-lists adjacency (for algorithms that peel
        edges); works for both backends."""
        return [list(row) for row in self._adj]

    # ------------------------------------------------------------------
    # Backend conversion
    # ------------------------------------------------------------------

    def to_csr(self) -> "BipartiteGraph":
        """This graph with a CSR flat-array adjacency (self when already CSR).

        Labels are shared with the source graph; the adjacency is repacked
        into ``offsets``/``neighbors``/``degrees`` buffers (see
        :mod:`repro.bigraph.csr`).
        """
        if isinstance(self._adj, CSRAdjacency):
            return self
        return BipartiteGraph(
            self.n_upper, self.n_lower, CSRAdjacency.from_rows(self._adj),
            upper_labels=self._upper_labels, lower_labels=self._lower_labels,
            _validate=False)

    def to_list(self) -> "BipartiteGraph":
        """This graph with a list-of-lists adjacency (self when already so)."""
        if not isinstance(self._adj, CSRAdjacency):
            return self
        return BipartiteGraph(
            self.n_upper, self.n_lower, self._adj.to_rows(),
            upper_labels=self._upper_labels, lower_labels=self._lower_labels,
            _validate=False)

    # ------------------------------------------------------------------
    # Internal validation
    # ------------------------------------------------------------------

    def _check_consistency(self) -> None:
        n1, n = self.n_upper, self.n_vertices
        lower_edge_count = 0
        for v in range(n):
            row = self._adj[v]
            prev = -1
            for w in row:
                if w <= prev:
                    raise GraphConstructionError(
                        "adjacency of vertex %d is not sorted/unique" % v)
                prev = w
                if v < n1:
                    if w < n1 or w >= n:
                        raise GraphConstructionError(
                            "upper vertex %d adjacent to non-lower id %d" % (v, w))
                else:
                    if w < 0 or w >= n1:
                        raise GraphConstructionError(
                            "lower vertex %d adjacent to non-upper id %d" % (v, w))
            if v >= n1:
                lower_edge_count += len(row)
        if lower_edge_count != self.n_edges:
            raise GraphConstructionError(
                "asymmetric adjacency: %d upper-side vs %d lower-side entries"
                % (self.n_edges, lower_edge_count))
