"""Connected components and component-local subgraph views.

Followers never cross connected components: every follower of an anchor
``x`` is order-reachable from ``x`` (Lemma 1), and order-reachability walks
edges.  The sharded campaign substrate (:mod:`repro.core.sharded`) exploits
that by decomposing the graph into components once and running each shard's
filter–verification loop on a component-local subgraph.

The correctness currency of that decomposition is the **monotone
renumbering** provided by :class:`SubgraphView`: local ids are assigned in
ascending global-id order, uppers first.  Because the global id space also
places all uppers before all lowers, ascending local order coincides with
ascending global order over the view's vertices — so every id-ordered
tie-break (peel seeding, candidate ranking, two-hop visitation, batch-apply
ordering) resolves identically in the local and the global id space.  The
shard-merge determinism argument in ``docs/PERF.md`` builds on exactly this
property.

All functions work on both adjacency backends (and on the memory-mapped CSR
variant, which is just a :class:`~repro.bigraph.csr.CSRAdjacency` with
file-backed buffers).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bigraph.csr import CSRAdjacency
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = [
    "component_labels",
    "component_sizes",
    "ComponentDecomposition",
    "SubgraphView",
    "decompose",
]


def component_labels(graph: BipartiteGraph) -> array:
    """Label every vertex with its connected-component index.

    Returns an ``array('i')`` of length ``n_vertices``.  Components are
    numbered in discovery order of an id-ascending scan, so the component
    containing the smallest unvisited vertex id gets the next label —
    a canonical numbering independent of adjacency backend.  Isolated
    vertices each form their own singleton component.
    """
    n = graph.n_vertices
    labels = array("i", [-1]) * n if n else array("i")
    adj = graph.adjacency
    next_label = 0
    queue: List[int] = []
    enqueue = queue.append
    for start in range(n):
        if labels[start] != -1:
            continue
        labels[start] = next_label
        enqueue(start)
        head = 0
        while head < len(queue):  # hot-loop
            v = queue[head]
            head += 1
            for w in adj[v]:
                if labels[w] == -1:
                    labels[w] = next_label
                    enqueue(w)
        queue.clear()
        next_label += 1
    return labels


def component_sizes(
    graph: BipartiteGraph,
    labels: Optional[array] = None,
) -> List[Tuple[int, int, int]]:
    """Per-component ``(n_upper, n_lower, n_edges)`` triples.

    ``labels`` defaults to a fresh :func:`component_labels` pass.  The list
    index is the component index.
    """
    if labels is None:
        labels = component_labels(graph)
    n_components = (max(labels) + 1) if len(labels) else 0
    uppers = [0] * n_components
    lowers = [0] * n_components
    edges = [0] * n_components
    n_upper = graph.n_upper
    adj = graph.adjacency
    for v in range(graph.n_vertices):
        label = labels[v]
        if v < n_upper:
            uppers[label] += 1
            edges[label] += len(adj[v])
        else:
            lowers[label] += 1
    return list(zip(uppers, lowers, edges))


class SubgraphView:
    """A component-local subgraph with stable global↔local id maps.

    ``graph`` is a fresh :class:`BipartiteGraph` over the view's vertices,
    renumbered monotonically: local upper ids ``0..k-1`` are the member
    upper vertices in ascending global order, local lower ids follow in
    ascending global order.  ``to_global[local]`` recovers the global id;
    :meth:`to_local` and :meth:`globalize` convert the other way.

    Rows stay sorted under the renumbering (the map is monotone over the
    whole vertex set), so the local graph is built without re-sorting.
    """

    __slots__ = ("components", "to_global", "_to_local", "graph")

    def __init__(self, components: Tuple[int, ...], to_global: array,
                 to_local: Dict[int, int], graph: BipartiteGraph) -> None:
        self.components = components
        self.to_global = to_global
        self._to_local = to_local
        self.graph = graph

    @property
    def n_vertices(self) -> int:
        return len(self.to_global)

    def to_local(self, global_id: int) -> int:
        """Local id of a member vertex (``KeyError`` for non-members)."""
        return self._to_local[global_id]

    def localize(self, global_ids: Iterable[int]) -> List[int]:
        """Map global ids to local ids, preserving order."""
        to_local = self._to_local
        return [to_local[g] for g in global_ids]

    def globalize(self, local_ids: Iterable[int]) -> Set[int]:
        """Map local ids back to the global id space."""
        to_global = self.to_global
        return {to_global[v] for v in local_ids}

    def __contains__(self, global_id: int) -> bool:
        return global_id in self._to_local

    def __repr__(self) -> str:
        return "SubgraphView(components=%r, n_vertices=%d)" % (
            self.components, len(self.to_global))


class ComponentDecomposition:
    """One :func:`component_labels` pass plus view extraction on top of it."""

    def __init__(self, graph: BipartiteGraph,
                 labels: Optional[array] = None) -> None:
        self.graph = graph
        self.labels = labels if labels is not None else component_labels(graph)
        self.n_components = (max(self.labels) + 1) if len(self.labels) else 0
        self._sizes: Optional[List[Tuple[int, int, int]]] = None

    @property
    def sizes(self) -> List[Tuple[int, int, int]]:
        """Per-component ``(n_upper, n_lower, n_edges)`` (computed lazily)."""
        if self._sizes is None:
            self._sizes = component_sizes(self.graph, self.labels)
        return self._sizes

    def members(self, components: Sequence[int]) -> List[int]:
        """Global ids belonging to any of ``components``, ascending."""
        wanted = set(components)
        for c in wanted:
            if not 0 <= c < self.n_components:
                raise InvalidParameterError(
                    "component %d out of range [0, %d)"
                    % (c, self.n_components))
        labels = self.labels
        return [v for v in range(len(labels)) if labels[v] in wanted]

    def subgraph_view(self, components: Sequence[int],
                      backend: Optional[str] = None) -> SubgraphView:
        """Extract the induced subgraph of one or more whole components.

        ``backend`` picks the local adjacency layout: ``"list"``, ``"csr"``,
        or ``None`` to inherit (CSR-family parents — including memmap — get
        an in-RAM CSR; list parents get lists).  Vertices are renumbered
        monotonically (see :class:`SubgraphView`); because the members are
        whole components, every neighbor of a member is a member, so the
        rows translate without filtering.
        """
        graph = self.graph
        labels = self.labels
        n_upper = graph.n_upper
        wanted = set(components)
        for c in wanted:
            if not 0 <= c < self.n_components:
                raise InvalidParameterError(
                    "component %d out of range [0, %d)"
                    % (c, self.n_components))

        to_global = array("i")
        for v in range(n_upper):
            if labels[v] in wanted:
                to_global.append(v)
        local_n_upper = len(to_global)
        for v in range(n_upper, graph.n_vertices):
            if labels[v] in wanted:
                to_global.append(v)
        local_n_lower = len(to_global) - local_n_upper
        to_local = {g: i for i, g in enumerate(to_global)}

        if backend is None:
            backend = "csr" if isinstance(graph.adjacency,
                                          CSRAdjacency) else "list"
        adj = graph.adjacency
        rows: List[List[int]] = []
        for g in to_global:
            rows.append([to_local[w] for w in adj[g]])
        if backend == "csr":
            local_adj: object = CSRAdjacency.from_rows(rows)
        elif backend == "list":
            local_adj = rows
        else:
            raise InvalidParameterError(
                "unknown subgraph backend %r (expected 'list' or 'csr')"
                % (backend,))
        local = BipartiteGraph(local_n_upper, local_n_lower,
                               local_adj,  # type: ignore[arg-type]
                               _validate=False)
        return SubgraphView(tuple(sorted(wanted)), to_global, to_local, local)


def decompose(graph: BipartiteGraph) -> ComponentDecomposition:
    """Label components and return the decomposition handle."""
    return ComponentDecomposition(graph)
