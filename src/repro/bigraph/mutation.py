"""Structural graph transformations that produce new graphs.

The core algorithms never mutate a graph (they use alive masks); these
helpers serve the cascade simulator, the hardness-reduction gadgets, and the
"add more connections" interpretation of anchoring mentioned in the paper's
Definition 2.

Every helper preserves the source graph's adjacency backend (list or CSR);
:func:`disjoint_union` yields CSR when any component is CSR-backed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bigraph.builder import from_edge_list
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import GraphConstructionError

__all__ = [
    "remove_vertices",
    "add_edges",
    "induced_subgraph",
    "disjoint_union",
    "relabel_compact",
    "swap_layers",
]


def remove_vertices(graph: BipartiteGraph, victims: Iterable[int]) -> BipartiteGraph:
    """Return a copy of ``graph`` without ``victims`` or their edges.

    Remaining vertices keep their positions relative to their layer, so labels
    carry over; use :func:`relabel_compact` afterwards if a dense id space is
    needed for size-sensitive code.
    """
    dead = set(victims)
    for v in dead:
        if v < 0 or v >= graph.n_vertices:
            raise GraphConstructionError("vertex %d out of range" % v)
    keep_upper = [u for u in graph.upper_vertices() if u not in dead]
    keep_lower = [v for v in graph.lower_vertices() if v not in dead]
    upper_map = {u: i for i, u in enumerate(keep_upper)}
    lower_map = {v: i for i, v in enumerate(keep_lower)}
    edges = [(upper_map[u], lower_map[v]) for u, v in graph.edges()
             if u not in dead and v not in dead]
    upper_labels = [graph.label_of(u) for u in keep_upper]
    lower_labels = [graph.label_of(v) for v in keep_lower]
    return from_edge_list(edges, n_upper=len(keep_upper), n_lower=len(keep_lower),
                          upper_labels=upper_labels, lower_labels=lower_labels,
                          backend=graph.backend)


def add_edges(graph: BipartiteGraph,
              new_edges: Sequence[Tuple[int, int]]) -> BipartiteGraph:
    """Return a copy of ``graph`` with extra ``(upper_id, lower_id)`` edges.

    Global ids are used for both endpoints (so the lower endpoint must be
    ``>= graph.n_upper``); duplicates with existing edges are collapsed.
    """
    edges: List[Tuple[int, int]] = [(u, v - graph.n_upper) for u, v in graph.edges()]
    for u, v in new_edges:
        if not (0 <= u < graph.n_upper):
            raise GraphConstructionError("%d is not an upper vertex" % u)
        if not (graph.n_upper <= v < graph.n_vertices):
            raise GraphConstructionError("%d is not a lower vertex" % v)
        edges.append((u, v - graph.n_upper))
    upper_labels = [graph.label_of(u) for u in graph.upper_vertices()]
    lower_labels = [graph.label_of(v) for v in graph.lower_vertices()]
    return from_edge_list(edges, n_upper=graph.n_upper, n_lower=graph.n_lower,
                          upper_labels=upper_labels, lower_labels=lower_labels,
                          backend=graph.backend)


def induced_subgraph(graph: BipartiteGraph,
                     vertices: Iterable[int]) -> BipartiteGraph:
    """Subgraph induced by ``vertices`` (global ids), with compact new ids."""
    keep = set(vertices)
    return remove_vertices(graph, (v for v in graph.vertices() if v not in keep))


def disjoint_union(graphs: Sequence[BipartiteGraph]) -> BipartiteGraph:
    """Disjoint union of several bipartite graphs.

    Used by the Theorem-1 reduction, which stitches together many copies of
    small gadgets.  Labels become ``(component_index, original_label)``.
    """
    edges: List[Tuple[int, int]] = []
    upper_labels: List[object] = []
    lower_labels: List[object] = []
    upper_offset = 0
    lower_offset = 0
    for idx, g in enumerate(graphs):
        for u, v in g.edges():
            edges.append((upper_offset + u, lower_offset + (v - g.n_upper)))
        upper_labels.extend((idx, g.label_of(u)) for u in g.upper_vertices())
        lower_labels.extend((idx, g.label_of(v)) for v in g.lower_vertices())
        upper_offset += g.n_upper
        lower_offset += g.n_lower
    backend = "csr" if any(g.backend == "csr" for g in graphs) else "list"
    return from_edge_list(edges, n_upper=upper_offset, n_lower=lower_offset,
                          upper_labels=upper_labels, lower_labels=lower_labels,
                          backend=backend)


def swap_layers(graph: BipartiteGraph) -> BipartiteGraph:
    """Exchange the two layers (uppers become lowers and vice versa).

    An (α,β)-core of the original equals a (β,α)-core of the swapped graph,
    which reduces any "symmetric case" — e.g. the Theorem-1 gadget for
    ``β ≥ 3, α ≥ 2`` — to its mirror.  Labels carry over.
    """
    edges = [(v - graph.n_upper, u) for u, v in graph.edges()]
    upper_labels = [graph.label_of(v) for v in graph.lower_vertices()]
    lower_labels = [graph.label_of(u) for u in graph.upper_vertices()]
    return from_edge_list(edges, n_upper=graph.n_lower,
                          n_lower=graph.n_upper,
                          upper_labels=upper_labels,
                          lower_labels=lower_labels,
                          backend=graph.backend)


def relabel_compact(graph: BipartiteGraph) -> Tuple[BipartiteGraph, Dict[int, int]]:
    """Drop isolated vertices; return the compacted graph and an old→new map."""
    keep = [v for v in graph.vertices() if graph.degree(v) > 0]
    keep_set = set(keep)
    compact = induced_subgraph(graph, keep_set)
    mapping: Dict[int, int] = {}
    next_upper = 0
    next_lower = compact.n_upper
    for v in graph.vertices():
        if v not in keep_set:
            continue
        if graph.is_upper(v):
            mapping[v] = next_upper
            next_upper += 1
        else:
            mapping[v] = next_lower
            next_lower += 1
    return compact, mapping
