"""Zero-copy sharing of a CSR-backed graph across processes.

The parallel candidate evaluator (:mod:`repro.parallel`) fans follower
computations out to worker processes.  Shipping the graph to each worker by
pickling would copy the adjacency once per worker — exactly the per-edge
overhead the CSR backend exists to avoid.  Instead, the three flat CSR
buffers (``offsets``/``neighbors``/``degrees``, see
:mod:`repro.bigraph.csr`) are copied **once** into
:mod:`multiprocessing.shared_memory` segments; every worker then maps the
segments read-only and rebuilds a :class:`BipartiteGraph` whose adjacency
rows are ``memoryview`` slices straight into the shared pages — no
per-worker copy, no per-edge Python objects.

Lifecycle contract:

* the exporting side (:func:`export_shared_graph`) owns the segments: it
  must keep the returned :class:`SharedGraphExport` alive while workers run
  and call :meth:`SharedGraphExport.close` (unlinks the segments) when done;
* each attaching side (:func:`attach_shared_graph`) gets a
  :class:`AttachedGraph` and must call :meth:`AttachedGraph.close` before
  exiting so the segment handles are released cleanly.

When shared memory is unavailable (no ``/dev/shm``, exotic platforms), the
export degrades to an *inline* payload — the raw buffer bytes travel inside
the metadata and each worker rebuilds plain ``array`` buffers.  Correctness
is unchanged; only the zero-copy property is lost.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.bigraph.csr import CSRAdjacency
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import GraphConstructionError

__all__ = [
    "SharedMemoryLike",
    "SharedGraphMeta",
    "SharedGraphExport",
    "AttachedGraph",
    "export_shared_graph",
    "attach_shared_graph",
]


class SharedMemoryLike(Protocol):
    """Structural type of ``multiprocessing.shared_memory.SharedMemory``.

    The stdlib class is imported lazily (platforms without ``/dev/shm``
    degrade to the inline payload), so the handle lists are typed against
    this protocol instead of the concrete class — which also keeps the
    test fakes honest about the lifecycle surface they must provide.
    """

    @property
    def name(self) -> str: ...

    @property
    def buf(self) -> memoryview: ...

    def close(self) -> None: ...

    def unlink(self) -> None: ...

#: ``(logical name, typecode)`` of the three CSR buffers, in a fixed order.
_BUFFERS: Tuple[Tuple[str, str], ...] = (
    ("offsets", "q"),
    ("neighbors", "i"),
    ("degrees", "i"),
)


@dataclass
class SharedGraphMeta:
    """Picklable description a worker needs to rebuild the graph.

    ``mode`` is ``"shm"`` (``segments`` maps buffer name to
    ``(shm_name, typecode, item_count)``) or ``"inline"`` (``payload`` maps
    buffer name to ``(raw_bytes, typecode)``).
    """

    mode: str
    n_upper: int
    n_lower: int
    segments: Dict[str, Tuple[str, str, int]] = field(default_factory=dict)
    payload: Dict[str, Tuple[bytes, str]] = field(default_factory=dict)


class SharedGraphExport:
    """Owner handle for the exported segments (parent-process side)."""

    def __init__(self, meta: SharedGraphMeta,
                 segments: List[SharedMemoryLike]) -> None:
        self.meta = meta
        self._segments = segments
        self._closed = False

    @property
    def nbytes(self) -> int:
        """Total shared bytes (0 for the inline fallback)."""
        if self.meta.mode != "shm":
            return 0
        total = 0
        for _shm_name, code, count in self.meta.segments.values():
            total += array(code).itemsize * count
        return total

    def close(self) -> None:
        """Release and unlink every segment; safe to call twice."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
            except (OSError, BufferError):
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass
        self._segments = []

    def __enter__(self) -> "SharedGraphExport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AttachedGraph:
    """Worker-side view: the rebuilt graph plus the handles backing it."""

    def __init__(self, graph: BipartiteGraph,
                 segments: List[SharedMemoryLike]) -> None:
        self.graph = graph
        self._segments = segments
        self._closed = False

    def close(self) -> None:
        """Drop the graph view, then release the segment handles.

        The adjacency rows are memoryviews into the segments, so the graph
        reference must be dropped first; a still-referenced view makes the
        segment close a no-op rather than an error.
        """
        if self._closed:
            return
        self._closed = True
        self.graph = None  # type: ignore[assignment]
        for shm in self._segments:
            try:
                shm.close()
            except (OSError, BufferError):
                # A surviving external reference to a row keeps the mapping
                # alive; the OS reclaims it when the process exits.
                pass
        self._segments = []

    def __enter__(self) -> "AttachedGraph":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _csr_buffers(graph: BipartiteGraph) -> Dict[str, array]:
    adj = graph.adjacency
    if not isinstance(adj, CSRAdjacency):
        raise GraphConstructionError(
            "export_shared_graph needs a CSR-backed graph; call to_csr()")
    return {"offsets": adj.offsets, "neighbors": adj.neighbors,
            "degrees": adj.degrees}


def export_shared_graph(graph: BipartiteGraph) -> SharedGraphExport:
    """Copy a graph's CSR buffers into shared memory, once.

    A list-backed graph is converted (one transient CSR copy in this
    process); the original graph object is never mutated.  Falls back to the
    inline payload mode when the platform cannot provide shared memory.
    """
    csr_graph = graph.to_csr()
    buffers = _csr_buffers(csr_graph)
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - py>=3.8 always has it
        return _export_inline(csr_graph, buffers)

    meta = SharedGraphMeta(mode="shm", n_upper=csr_graph.n_upper,
                           n_lower=csr_graph.n_lower)
    segments: List[SharedMemoryLike] = []
    try:
        for name, code in _BUFFERS:
            buf = buffers[name]
            nbytes = buf.itemsize * len(buf)
            shm = shared_memory.SharedMemory(create=True,
                                             size=max(1, nbytes))
            segments.append(shm)
            if nbytes:
                shm.buf[:nbytes] = memoryview(buf).cast("B")
            meta.segments[name] = (shm.name, code, len(buf))
    except (OSError, ValueError):
        # No usable /dev/shm (or segment creation failed): release whatever
        # was created and degrade to the inline payload.
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass
        return _export_inline(csr_graph, buffers)
    return SharedGraphExport(meta, segments)


def _export_inline(graph: BipartiteGraph,
                   buffers: Dict[str, array]) -> SharedGraphExport:
    meta = SharedGraphMeta(mode="inline", n_upper=graph.n_upper,
                           n_lower=graph.n_lower)
    for name, code in _BUFFERS:
        meta.payload[name] = (buffers[name].tobytes(), code)
    return SharedGraphExport(meta, segments=[])


def attach_shared_graph(meta: SharedGraphMeta) -> AttachedGraph:
    """Rebuild a read-only :class:`BipartiteGraph` view from export metadata.

    In ``shm`` mode the adjacency is backed by the shared pages without
    copying; in ``inline`` mode the buffers are rebuilt locally from the
    carried bytes.
    """
    if meta.mode == "inline":
        views: Dict[str, array] = {}
        for name, (raw, code) in meta.payload.items():
            buf = array(code)
            buf.frombytes(raw)
            views[name] = buf
        adjacency = CSRAdjacency(views["offsets"], views["neighbors"],
                                 views["degrees"])
        graph = BipartiteGraph(meta.n_upper, meta.n_lower, adjacency,
                               _validate=False)
        return AttachedGraph(graph, segments=[])

    from multiprocessing import shared_memory

    segments: List[SharedMemoryLike] = []
    typed: Dict[str, memoryview] = {}
    try:
        for name, (shm_name, code, count) in meta.segments.items():
            # Attaching re-registers the segment with the resource tracker;
            # workers are always children of the exporter, so they share one
            # tracker process and the set-based registration is idempotent —
            # the exporter's unlink() still deregisters exactly once.  (Do
            # not attach from an unrelated process: its own tracker would
            # unlink the segment when that process exits.)
            shm = shared_memory.SharedMemory(name=shm_name)
            segments.append(shm)
            nbytes = array(code).itemsize * count
            # Read-only views: a worker that writes through the adjacency
            # would corrupt the graph for every sibling; make the mistake
            # a TypeError here instead of a heisenbug there.
            typed[name] = shm.buf[:nbytes].cast(code).toreadonly()
    except (OSError, FileNotFoundError):
        for shm in segments:
            try:
                shm.close()
            except (OSError, BufferError):
                pass
        raise
    adjacency = CSRAdjacency(
        typed["offsets"],  # type: ignore[arg-type]
        typed["neighbors"],  # type: ignore[arg-type]
        typed["degrees"],  # type: ignore[arg-type]
    )
    graph = BipartiteGraph(meta.n_upper, meta.n_lower, adjacency,
                           _validate=False)
    return AttachedGraph(graph, segments)
