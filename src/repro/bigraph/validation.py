"""Structural sanity checks over bipartite graphs and problem parameters.

These checks are deliberately separate from :class:`BipartiteGraph`'s
constructor validation: the constructor guarantees representation invariants
(sorted rows, symmetric adjacency), while this module validates *semantic*
expectations callers may want to assert — e.g. before launching a long
reinforcement run.
"""

from __future__ import annotations

from typing import Collection

from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = ["validate_problem", "check_vertex", "check_anchor_layers"]


def validate_problem(graph: BipartiteGraph, alpha: int, beta: int,
                     b1: int, b2: int) -> None:
    """Validate a full anchored (α,β)-core problem instance.

    Enforces the paper's assumptions: α, β ≥ 1, budgets ≥ 0, and budgets no
    larger than the layer they draw from.
    """
    if alpha < 1 or beta < 1:
        raise InvalidParameterError(
            "alpha and beta must be >= 1, got (%d, %d)" % (alpha, beta))
    if b1 < 0 or b2 < 0:
        raise InvalidParameterError(
            "budgets must be >= 0, got (%d, %d)" % (b1, b2))
    if b1 > graph.n_upper:
        raise InvalidParameterError(
            "upper budget %d exceeds |U| = %d" % (b1, graph.n_upper))
    if b2 > graph.n_lower:
        raise InvalidParameterError(
            "lower budget %d exceeds |L| = %d" % (b2, graph.n_lower))


def check_vertex(graph: BipartiteGraph, v: int) -> None:
    """Raise when ``v`` is not a valid vertex id of ``graph``."""
    if not (0 <= v < graph.n_vertices):
        raise InvalidParameterError(
            "vertex %d out of range [0, %d)" % (v, graph.n_vertices))


def check_anchor_layers(graph: BipartiteGraph, anchors: Collection[int],
                        b1: int, b2: int) -> None:
    """Check that an anchor set respects the per-layer budgets."""
    upper = sum(1 for a in anchors if graph.is_upper(a))
    lower = len(anchors) - upper
    if upper > b1 or lower > b2:
        raise InvalidParameterError(
            "anchor set uses (%d, %d) slots, budgets are (%d, %d)"
            % (upper, lower, b1, b2))
