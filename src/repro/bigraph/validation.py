"""Structural sanity checks over bipartite graphs and problem parameters.

These checks are deliberately separate from :class:`BipartiteGraph`'s
constructor validation: the constructor guarantees representation invariants
(sorted rows, symmetric adjacency), while this module validates *semantic*
expectations callers may want to assert — e.g. before launching a long
reinforcement run.
"""

from __future__ import annotations

from typing import Collection

from repro.bigraph.csr import adjacency_arrays
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import GraphConstructionError, InvalidParameterError

__all__ = ["validate_problem", "check_vertex", "check_anchor_layers",
           "validate_graph"]


def validate_problem(graph: BipartiteGraph, alpha: int, beta: int,
                     b1: int, b2: int) -> None:
    """Validate a full anchored (α,β)-core problem instance.

    Enforces the paper's assumptions: α, β ≥ 1, budgets ≥ 0, and budgets no
    larger than the layer they draw from.
    """
    if alpha < 1 or beta < 1:
        raise InvalidParameterError(
            "alpha and beta must be >= 1, got (%d, %d)" % (alpha, beta))
    if b1 < 0 or b2 < 0:
        raise InvalidParameterError(
            "budgets must be >= 0, got (%d, %d)" % (b1, b2))
    if b1 > graph.n_upper:
        raise InvalidParameterError(
            "upper budget %d exceeds |U| = %d" % (b1, graph.n_upper))
    if b2 > graph.n_lower:
        raise InvalidParameterError(
            "lower budget %d exceeds |L| = %d" % (b2, graph.n_lower))


def validate_graph(graph: BipartiteGraph) -> None:
    """Re-check the representation invariants of either adjacency backend.

    The fast construction paths (``from_edge_list``, the streaming CSR
    loader) skip the constructor's consistency pass because they produce
    canonical rows by construction; this is the on-demand equivalent for
    callers that want the guarantee anyway — every row sorted and unique,
    edges strictly cross-layer, the two sides symmetric in size, and (for
    CSR) offsets monotone with the cached degrees matching row widths.
    """
    n1, n = graph.n_upper, graph.n_vertices
    arrays = adjacency_arrays(graph)
    if arrays is not None:
        offsets, neighbors, degrees = arrays
        if len(offsets) != n + 1 or len(degrees) != n:
            raise GraphConstructionError(
                "CSR buffers sized for %d rows, graph has %d"
                % (len(offsets) - 1, n))
        for v in range(n):
            width = offsets[v + 1] - offsets[v]
            if width < 0:
                raise GraphConstructionError(
                    "CSR offsets decrease at row %d" % v)
            if degrees[v] != width:
                raise GraphConstructionError(
                    "cached degree %d of vertex %d disagrees with row width %d"
                    % (degrees[v], v, width))
    neighbors_of = graph.neighbors
    lower_entries = 0
    for v in range(n):
        row = neighbors_of(v)
        prev = -1
        for w in row:
            if w <= prev:
                raise GraphConstructionError(
                    "adjacency of vertex %d is not sorted/unique" % v)
            prev = w
            if graph.is_upper(v) == graph.is_upper(w):
                raise GraphConstructionError(
                    "same-layer edge (%d, %d)" % (v, w))
            if w < 0 or w >= n:
                raise GraphConstructionError(
                    "vertex %d adjacent to out-of-range id %d" % (v, w))
        if not graph.is_upper(v):
            lower_entries += len(row)
    if lower_entries != graph.n_edges:
        raise GraphConstructionError(
            "asymmetric adjacency: %d upper-side vs %d lower-side entries"
            % (graph.n_edges, lower_entries))


def check_vertex(graph: BipartiteGraph, v: int) -> None:
    """Raise when ``v`` is not a valid vertex id of ``graph``."""
    if not (0 <= v < graph.n_vertices):
        raise InvalidParameterError(
            "vertex %d out of range [0, %d)" % (v, graph.n_vertices))


def check_anchor_layers(graph: BipartiteGraph, anchors: Collection[int],
                        b1: int, b2: int) -> None:
    """Check that an anchor set respects the per-layer budgets."""
    upper = sum(1 for a in anchors if graph.is_upper(a))
    lower = len(anchors) - upper
    if upper > b1 or lower > b2:
        raise InvalidParameterError(
            "anchor set uses (%d, %d) slots, budgets are (%d, %d)"
            % (upper, lower, b1, b2))
