"""Upper/lower deletion orders, r-scores, and order-reachability (Section III-A).

The *upper deletion order* ``O_U`` records the sequence in which vertices are
peeled when computing the (α,β)-core from the (α,β-1)-core; the *lower
deletion order* ``O_L`` does the same starting from the (α-1,β)-core.  Upper
(resp. lower) promising anchors that are outside the relaxed core but adjacent
to the shell join the order with position 0.  These orders drive everything in
the FILVER family:

* ``rf(x)`` — the order-reachable set from ``x`` (Definition 7), a superset of
  ``F(x)`` by Lemma 1;
* ``r-score(x)`` — a one-pass dynamic-programming upper bound on ``|rf(x)|``;
* ``sig(x)`` — the follower signature (Definition 8) used by two-hop
  domination filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Set

from repro.abcore.decomposition import anchored_abcore, peel_with_order
from repro.bigraph.graph import BipartiteGraph

__all__ = [
    "DeletionOrder",
    "compute_order",
    "compute_orders",
    "r_scores",
    "reachable_from",
    "signature",
]


@dataclass
class DeletionOrder:
    """One side's deletion order together with the core sets it derives from.

    Attributes
    ----------
    side:
        ``"upper"`` for ``O_U`` (anchoring upper vertices) or ``"lower"``
        for ``O_L``.
    position:
        Vertex → order number.  Deleted vertices get positions ≥ 1 in
        deletion order; promising anchors outside the relaxed core get 0.
        Positions need not be contiguous (order maintenance renumbers
        affected regions with fresh, larger numbers) but deleted vertices'
        positions are unique and order-consistent.
    core:
        Vertex set of the anchored (α,β)-core the peel converged to.
    relaxed_core:
        The anchored (α,β-1)-core (upper side) or (α-1,β)-core (lower side)
        the peel started from.  ``relaxed_core - core`` is the shell.
    """

    side: str
    position: Dict[int, int]
    core: Set[int]
    relaxed_core: Set[int]
    alpha: int
    beta: int

    @property
    def shell(self) -> Set[int]:
        """Vertices with positions ≥ 1 — exactly the upper/lower shell."""
        return {v for v, p in self.position.items() if p >= 1}

    def candidates(self, graph: BipartiteGraph) -> List[int]:
        """Candidate anchors: own-layer vertices present in the order.

        Candidacy is a pure predicate of the vertex's own position entry,
        which is what lets the verification cache reuse two-hop survivor
        verdicts across iterations (``repro.core.incremental``): a
        candidacy change within reach of a cached verdict implies a
        position-entry change inside the dilated dirty region.
        """
        keep = graph.is_upper if self.side == "upper" else graph.is_lower
        return [v for v in self.position if keep(v)]

    def deleted_in_order(self) -> List[int]:
        """Shell vertices sorted by increasing deletion position."""
        shell = [(p, v) for v, p in self.position.items() if p >= 1]
        shell.sort()
        return [v for _, v in shell]

    def max_position(self) -> int:
        """Largest position in use (0 when the order is empty)."""
        return max(self.position.values(), default=0)


def _zero_order_anchors(
    graph: BipartiteGraph,
    side: str,
    shell_sequence: Collection[int],
    relaxed_core: Set[int],
    placed_anchors: Collection[int],
) -> Set[int]:
    """Own-layer vertices adjacent to the shell but outside the relaxed core.

    These are the promising anchors of Definition 6 that are not themselves
    potential followers; they enter the order with position 0 (Algorithm 2,
    Lines 23 and 25).
    """
    placed = set(placed_anchors)
    want_upper = side == "upper"
    is_upper = graph.is_upper
    neighbors = graph.neighbors  # hoisted: one row fetch per shell vertex
    zeros: Set[int] = set()
    # Bipartite: a want-side neighbor only ever hangs off an opposite-side
    # shell vertex, so same-side rows are skipped wholesale.
    for v in shell_sequence:
        if is_upper(v) == want_upper:
            continue
        for w in neighbors(v):
            if w in relaxed_core or w in placed:
                continue
            zeros.add(w)
    return zeros


def compute_order(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    side: str,
    anchors: Collection[int] = (),
    start_position: int = 1,
    subset: Optional[Collection[int]] = None,
    relaxed_core: Optional[Set[int]] = None,
    include_zero_anchors: bool = True,
) -> DeletionOrder:
    """Compute one side's deletion order (Algorithm 2, ``OrderComputation``).

    ``start_position`` and ``subset`` support the order-maintenance
    optimization: maintenance recomputes only the affected region and numbers
    it with fresh positions above everything already assigned.
    """
    if side not in ("upper", "lower"):
        raise ValueError("side must be 'upper' or 'lower', got %r" % (side,))
    if side == "upper":
        relaxed_alpha, relaxed_beta = alpha, beta - 1
    else:
        relaxed_alpha, relaxed_beta = alpha - 1, beta

    if relaxed_core is None:
        relaxed_core = anchored_abcore(graph, relaxed_alpha, relaxed_beta,
                                       anchors, subset)
    core, sequence = peel_with_order(graph, alpha, beta, anchors, relaxed_core)

    position: Dict[int, int] = {}
    for offset, v in enumerate(sequence):
        position[v] = start_position + offset
    if include_zero_anchors:
        for z in _zero_order_anchors(graph, side, sequence, relaxed_core, anchors):
            position[z] = 0
    return DeletionOrder(side=side, position=position, core=core,
                         relaxed_core=relaxed_core, alpha=alpha, beta=beta)


def compute_orders(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int] = (),
) -> "tuple[DeletionOrder, DeletionOrder]":
    """Both deletion orders of the (possibly anchored) graph."""
    upper = compute_order(graph, alpha, beta, "upper", anchors)
    lower = compute_order(graph, alpha, beta, "lower", anchors)
    return upper, lower


def r_scores(graph: BipartiteGraph, order: DeletionOrder) -> Dict[int, int]:
    """The recursive r-score upper bound for every vertex in the order.

    ``r-score(x) = Σ_{u ∈ W(x)} (r-score(u) + 1)`` where ``W(x)`` are the
    neighbors of ``x`` directly order-reachable from it.  Computed in one
    reverse-deletion-order pass (zero-position anchors last, since they
    precede everything).
    """
    position = order.position
    scores: Dict[int, int] = {}
    zeros: List[int] = []
    by_position = sorted(order.position.items(), key=lambda item: -item[1])
    neighbors = graph.neighbors
    get = position.get
    for v, pv in by_position:  # hot-loop
        if pv == 0:
            zeros.append(v)
            continue
        total = 0
        for w in neighbors(v):
            pw = get(w)
            if pw is not None and pw > pv:
                total += scores[w] + 1
        scores[v] = total
    for v in zeros:  # hot-loop
        total = 0
        for w in neighbors(v):
            pw = get(w)
            if pw is not None and pw > 0:
                total += scores[w] + 1
        scores[v] = total
    return scores


def reachable_from(graph: BipartiteGraph, order: DeletionOrder,
                   x: int) -> Set[int]:
    """``rf(x)``: all vertices order-reachable from ``x`` (Definition 7).

    A vertex ``u`` is order-reachable from ``x`` when some path
    ``x = v0, v1, ..., vk = u`` has strictly increasing positions.  By
    Lemma 1 this set contains every follower of ``x``.
    """
    position = order.position
    px = position[x]
    reached: Set[int] = set()
    stack = [(x, px)]
    pop = stack.pop
    push = stack.append
    neighbors = graph.neighbors
    get = position.get
    mark = reached.add
    while stack:  # hot-loop
        v, pv = pop()
        for w in neighbors(v):
            pw = get(w)
            if pw is None or pw <= pv or w in reached:
                continue
            mark(w)
            push((w, pw))
    return reached


def signature(graph: BipartiteGraph, order: DeletionOrder, x: int) -> Set[int]:
    """``sig(x)``: the neighbors of ``x`` order-reachable from it (Def. 8)."""
    position = order.position
    px = position[x]
    return {w for w in graph.neighbors(x)
            if position.get(w, -1) > px}
