"""Connectivity-based order maintenance across greedy iterations (Section IV-B).

Recomputing the upper/lower deletion orders from scratch after every placed
anchor costs ``O(m)`` per iteration.  Algorithm 4 avoids this by confining the
update to the *affected graph* of the new anchor ``x*``:

* ``AG_U(x*)`` — the connected component of the ``(α, core_U(x*))``-core that
  contains ``x*`` (and symmetrically ``AG_L`` with ``core_L``).

Anchoring ``x*`` only adds support, and that support can only change core
membership at levels above ``core_U(x*)``, propagating along edges inside
``x*``'s component of the ``(α, core_U(x*))``-core.  Whole components of the
``(α,β-1)``-core lie inside the affected graph, so renumbering the affected
region with fresh positions (above every existing position) still yields a
valid deletion order: an order-increasing path never crosses between the old
and new regions, because adjacent shell vertices always share an
``(α,β-1)``-core component.

:class:`OrderState` bundles both orders, the capped upper/lower core numbers
(Definition 10), and the current anchored core, and keeps them all consistent
as anchors are placed one at a time (FILVER+) or in batches (FILVER++).
Equivalence with full recomputation is property-tested in
``tests/test_order_maintenance.py``.
"""

from __future__ import annotations

from typing import Collection, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.abcore.core_numbers import lower_core_numbers, upper_core_numbers
from repro.abcore.decomposition import anchored_abcore
from repro.bigraph.graph import BipartiteGraph
from repro.core.deletion_order import DeletionOrder, compute_order

__all__ = ["OrderState"]

#: Per-side dirty regions reported by :meth:`OrderState.apply_anchors`:
#: ``{"upper": ..., "lower": ...}`` where each set holds every vertex whose
#: position entry in that side's order — or whose anchored-core membership —
#: changed during the apply.  ``None`` means "assume everything changed"
#: (the full-recompute path).
DirtyRegions = Optional[Dict[str, Set[int]]]


class OrderState:
    """Deletion orders, core numbers and anchored core, maintained incrementally.

    Parameters
    ----------
    graph, alpha, beta:
        The problem instance.  The graph is never mutated.
    maintain:
        When ``False`` the state falls back to full recomputation on every
        :meth:`apply_anchor` call — used by plain FILVER and by the
        order-maintenance ablation benchmark.
    """

    def __init__(self, graph: BipartiteGraph, alpha: int, beta: int,
                 maintain: bool = True) -> None:
        self.graph = graph
        self.alpha = alpha
        self.beta = beta
        self.maintain = maintain
        self.anchors: Set[int] = set()
        self.upper: DeletionOrder
        self.lower: DeletionOrder
        self.core_u: Dict[int, int]
        self.core_l: Dict[int, int]
        self._counter_u = 0
        self._counter_l = 0
        self._level0_core: Optional[Set[int]] = None
        self.rebuild()

    # ------------------------------------------------------------------
    # Full recomputation
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute everything from the graph and the current anchor set."""
        g, a, b = self.graph, self.alpha, self.beta
        self.upper = compute_order(g, a, b, "upper", self.anchors)
        self.lower = compute_order(g, a, b, "lower", self.anchors)
        if self.maintain:
            self.core_u = upper_core_numbers(g, a, b, self.anchors)
            self.core_l = lower_core_numbers(g, a, b, self.anchors)
        else:
            self.core_u = {}
            self.core_l = {}
        self._counter_u = self.upper.max_position()
        self._counter_l = self.lower.max_position()

    def clone_pristine(self, maintain: Optional[bool] = None) -> "OrderState":
        """An independent copy of this *pristine* state (no anchors applied).

        Produces exactly the state a fresh ``OrderState(graph, alpha, beta,
        maintain=...)`` construction would: the pristine deletion orders are a
        pure function of ``(graph, α, β)``, so copying the position tables and
        core sets is equivalent to re-peeling them — that equivalence is what
        lets :class:`repro.core.batch.SharedCampaignContext` pay the order
        build once per ``(α, β)`` and serve clones to every campaign.  All
        mutable tables are copied (campaigns repair their own clone freely);
        the graph itself is shared, as it is never mutated.

        ``maintain`` defaults to this state's setting.  A ``maintain=False``
        seed cannot produce a ``maintain=True`` clone (the capped core-number
        tables were never computed), and a state with applied anchors cannot
        be cloned at all — its tables no longer equal the pristine peel.
        """
        if self.anchors:
            raise ValueError(
                "clone_pristine() requires a pristine state; %d anchors "
                "already applied" % len(self.anchors))
        want = self.maintain if maintain is None else maintain
        if want and not self.maintain:
            raise ValueError(
                "cannot clone maintain=True from a maintain=False seed: "
                "core-number tables were never computed")
        clone = OrderState.__new__(OrderState)
        clone.graph = self.graph
        clone.alpha = self.alpha
        clone.beta = self.beta
        clone.maintain = want
        clone.anchors = set()
        clone.upper = DeletionOrder(
            side="upper", position=dict(self.upper.position),
            core=set(self.upper.core),
            relaxed_core=set(self.upper.relaxed_core),
            alpha=self.alpha, beta=self.beta)
        clone.lower = DeletionOrder(
            side="lower", position=dict(self.lower.position),
            core=set(self.lower.core),
            relaxed_core=set(self.lower.relaxed_core),
            alpha=self.alpha, beta=self.beta)
        clone.core_u = dict(self.core_u) if want else {}
        clone.core_l = dict(self.core_l) if want else {}
        clone._counter_u = self._counter_u
        clone._counter_l = self._counter_l
        clone._level0_core = None
        return clone

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def core(self) -> Set[int]:
        """Vertex set of the current anchored (α,β)-core."""
        return self.upper.core

    def apply_anchor(self, x: int) -> DirtyRegions:
        """Register one new anchor and repair both orders (Algorithm 4)."""
        return self.apply_anchors([x])

    def apply_anchors(self, new_anchors: Sequence[int]) -> DirtyRegions:
        """Register a batch of anchors (FILVER++'s per-iteration set ``T``).

        Per Section V-B, each side processes the batch in non-decreasing core
        number; an anchor that falls inside an earlier anchor's affected
        graph is skipped because its own affected graph is contained in the
        already-repaired region.

        Returns the per-side *dirty regions*: for each order, the exact set
        of vertices whose position entry (zero entries included) or anchored
        core membership changed during this apply.  The contract the
        incremental verification cache (:mod:`repro.core.incremental`)
        builds on is the converse: **every position entry and every core
        membership outside the returned sets is bit-identical to its value
        before the call**.  Algorithm 4 renumbers whole affected regions
        with fresh positions, so the dirty sets are the repaired regions'
        shells plus core-membership flips plus zero-entry churn — not just
        the placed anchors.  ``None`` is returned on the full-recompute path
        (``maintain=False``), where nothing can be said about what moved.
        """
        fresh = [x for x in new_anchors if x not in self.anchors]
        if not fresh:
            return {"upper": set(), "lower": set()}
        if not self.maintain:
            self.anchors.update(fresh)
            self.rebuild()
            return None

        start_core_u = {x: self.core_u.get(x, 0) for x in fresh}
        start_core_l = {x: self.core_l.get(x, 0) for x in fresh}
        self.anchors.update(fresh)

        new_core, dirty_u = self._repair_side("upper", fresh, start_core_u)
        lower_core, dirty_l = self._repair_side("lower", fresh, start_core_l)
        # Both repairs independently arrive at the anchored (α,β)-core; share
        # one set object so the two orders can never drift apart.
        self.upper.core = new_core
        self.lower.core = new_core
        dirty_u |= self._rebuild_zero_entries("upper")
        dirty_l |= self._rebuild_zero_entries("lower")
        return {"upper": dirty_u, "lower": dirty_l}

    # ------------------------------------------------------------------
    # The actual Algorithm-4 machinery
    # ------------------------------------------------------------------

    def _repair_side(self, side: str, fresh: Sequence[int],
                     start_levels: Dict[int, int],
                     ) -> Tuple[Set[int], Set[int]]:
        """Repair one side's order and core numbers.

        Returns ``(new_core, dirty)`` where ``dirty`` collects every vertex
        whose position entry or core membership this side's repairs changed.
        """
        covered: Set[int] = set()
        dirty: Set[int] = set()
        ordered = sorted(fresh, key=lambda x: (start_levels[x], x))
        core = self.upper.core if side == "upper" else self.lower.core
        self._level0_core = None  # per-batch cache for _affected_graph
        for x in ordered:
            if x in covered:
                continue
            level = max(1, start_levels[x])
            region = self._affected_graph(side, x, start_levels[x])
            core, changed = self._repair_region(side, region, core,
                                                level=level)
            covered |= region
            dirty |= changed
        self._level0_core = None
        return core, dirty

    def _affected_graph(self, side: str, x: int, level: int) -> Set[int]:
        """BFS from ``x`` restricted to core numbers ≥ ``level`` (Line 2).

        For ``level = 0`` the stored core numbers are vacuous, so the walk is
        instead confined to the (α,1)-core (upper side) / (1,β)-core (lower
        side) of the *anchored* graph: ``x``'s core number can only rise to
        ≥ 1, every vertex whose order or core number changes sits in that
        core, influence chains from ``x`` run inside it, and whole
        relaxed-core components lie inside its components.  This costs one
        extra peel but typically shrinks the region from "the whole connected
        component" to a small neighborhood.
        """
        graph = self.graph
        row_of = graph.adjacency.__getitem__  # hoisted: list and CSR rows

        if level >= 1:
            numbers = self.core_u if side == "upper" else self.core_l

            def member(w: int) -> bool:
                return numbers.get(w, 0) >= level
        else:
            # The anchored graph is fixed for the whole batch, so the level-0
            # core peel is shared across the batch's anchors.
            if self._level0_core is None:
                if side == "upper":
                    self._level0_core = anchored_abcore(
                        graph, self.alpha, 1, self.anchors)
                else:
                    self._level0_core = anchored_abcore(
                        graph, 1, self.beta, self.anchors)
            member = self._level0_core.__contains__

        region = {x}
        stack = [x]
        pop = stack.pop
        push = stack.append
        mark = region.add
        while stack:  # hot-loop
            v = pop()
            for w in row_of(v):
                if w in region or not member(w):
                    continue
                mark(w)
                push(w)
        return region

    def _repair_region(self, side: str, region: Set[int],
                       core: Set[int], level: int = 0,
                       ) -> Tuple[Set[int], Set[int]]:
        """Recompute core numbers and order positions inside one region.

        ``level`` is the placed anchor's old core number: every region member
        has a core number ≥ ``level``, so the core-number sweep starts there
        (Algorithm 4, Line 4) and the relaxed core falls out of the sweep for
        free instead of needing another peel.

        Returns ``(new_core, changed)``.  ``changed`` is the subset of the
        region whose position entry or core membership actually differs
        after the repair: renumbering assigns fresh positions above every
        existing one, so in practice it is the region's shell plus any
        membership flips, while region vertices that sit in the core both
        before and after (no position entry either way) stay clean.  Only
        region positions are ever deleted or (re)assigned here, so vertices
        outside the region cannot change.
        """
        g, a, b = self.graph, self.alpha, self.beta
        order = self.upper if side == "upper" else self.lower

        # Core numbers within the region (capped; anchors get the cap).
        if side == "upper":
            local_numbers = upper_core_numbers(g, a, b, self.anchors, region,
                                               start_level=level)
            self.core_u.update(local_numbers)
            relaxed_level = b - 1
        else:
            local_numbers = lower_core_numbers(g, a, b, self.anchors, region,
                                               start_level=level)
            self.core_l.update(local_numbers)
            relaxed_level = a - 1
        if relaxed_level >= 1:
            local_relaxed = {v for v, k in local_numbers.items()
                             if k >= relaxed_level}
        else:
            # β = 1 (resp. α = 1): the relaxed core is the (α,0)-core, which
            # core numbers cannot express; fall back to a direct peel.
            local_relaxed = None

        # Fresh order positions for the region, numbered above everything.
        if side == "upper":
            start = self._counter_u + 1
        else:
            start = self._counter_l + 1
        local = compute_order(g, a, b, side, self.anchors,
                              start_position=start, subset=region,
                              relaxed_core=local_relaxed,
                              include_zero_anchors=False)

        position = order.position
        old_entries = {v: position.get(v) for v in region}
        for v in list(position):
            if v in region:
                del position[v]
        position.update(local.position)
        if side == "upper":
            self._counter_u = max(self._counter_u, local.max_position())
        else:
            self._counter_l = max(self._counter_l, local.max_position())

        order.relaxed_core = (order.relaxed_core - region) | local.relaxed_core
        new_core = (core - region) | local.core
        order.core = new_core

        changed: Set[int] = set()
        get = position.get
        for v in region:
            if get(v) != old_entries[v]:
                changed.add(v)
            elif (v in core) != (v in new_core):
                changed.add(v)
        return new_core, changed

    def _rebuild_zero_entries(self, side: str) -> Set[int]:
        """Refresh the position-0 promising-anchor entries globally.

        Zero entries are cheap to rebuild (one pass over the shell's
        adjacency) and doing it globally sidesteps the bookkeeping of which
        old zero entries became stale when the shell moved.

        Returns the churn — vertices whose zero entry appeared or vanished;
        a vertex deleted here and re-assigned 0 has an unchanged entry and
        is not reported.
        """
        order = self.upper if side == "upper" else self.lower
        graph = self.graph
        position = order.position
        old_zeros = {v for v, p in position.items() if p == 0}
        for v in old_zeros:  # repro: ignore[determinism] - deletions commute
            del position[v]
        want_upper = side == "upper"
        relaxed = order.relaxed_core
        anchors = self.anchors
        is_upper = graph.is_upper
        neighbors = graph.neighbors  # hoisted: one row fetch per shell vertex
        # Bipartite: every neighbor of a want-side vertex is on the other
        # side, so only rows of opposite-side shell vertices can contribute
        # want-side zero entries — the same-side rows are skipped wholesale
        # instead of filtering their edges one by one.
        shell = [v for v, p in position.items()
                 if p >= 1 and is_upper(v) != want_upper]
        new_zeros: Set[int] = set()
        for v in shell:
            for w in neighbors(v):
                if w in relaxed or w in anchors or w in position:
                    continue
                position[w] = 0
                new_zeros.add(w)
        return old_zeros ^ new_zeros
