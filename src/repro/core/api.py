"""Unified entry point for every anchored (α,β)-core algorithm.

``reinforce(graph, alpha, beta, b1, b2, method="filver++")`` dispatches to
the requested solver and returns an :class:`AnchoredCoreResult`.  The method
registry is also what the experiment harness and the CLI iterate over.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.bigraph.graph import BipartiteGraph
from repro.core.baselines import run_degree_greedy, run_random, run_top_degree
from repro.core.engine import ProgressCallback
from repro.core.exact import run_exact
from repro.core.filver import run_filver
from repro.core.filver_plus import run_filver_plus
from repro.core.filver_plus_plus import run_filver_plus_plus
from repro.core.naive import run_naive
from repro.core.result import AnchoredCoreResult
from repro.exceptions import InvalidParameterError

if TYPE_CHECKING:
    from repro.core.batch import SharedCampaignContext

__all__ = ["reinforce", "METHODS", "CHECKPOINTABLE_METHODS",
           "PARALLEL_METHODS"]

#: Methods accepted by :func:`reinforce`, in rough cost order.
METHODS = (
    "random",
    "top-degree",
    "degree-greedy",
    "exact",
    "naive",
    "filver",
    "filver+",
    "filver++",
)


#: Methods that support campaign checkpointing (the shared-engine family).
CHECKPOINTABLE_METHODS = ("filver", "filver+", "filver++")

#: Methods that accept ``workers > 1`` — the same engine family: only the
#: filter–verification loop has an independent-candidate stage to fan out.
PARALLEL_METHODS = CHECKPOINTABLE_METHODS


def reinforce(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    method: str = "filver++",
    t: int = 5,
    seed: Optional[int] = None,
    time_limit: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume_from: Optional[str] = None,
    workers: int = 1,
    memoize: bool = True,
    flat_kernel: Optional[bool] = None,
    shards: Optional[int] = None,
    on_iteration: Optional[ProgressCallback] = None,
    handle_sigterm: bool = False,
    context: Optional["SharedCampaignContext"] = None,
) -> AnchoredCoreResult:
    """Reinforce ``graph`` by anchoring ``b1 + b2`` vertices.

    Parameters
    ----------
    graph:
        The bipartite network to reinforce.
    alpha, beta:
        Degree constraints for the upper and lower layers.
    b1, b2:
        How many upper / lower vertices may be anchored.
    method:
        One of :data:`METHODS`; defaults to the strongest algorithm,
        FILVER++.
    t:
        Anchors placed per iteration (FILVER++ only).
    seed:
        Randomness seed (``random`` baseline only).
    time_limit:
        Optional wall-clock budget in seconds; greedy algorithms return a
        partial result flagged ``timed_out`` when it elapses.
    checkpoint / resume_from:
        Campaign checkpoint file to write after every iteration / to resume
        from (:data:`CHECKPOINTABLE_METHODS` only — see
        ``docs/RESILIENCE.md``).
    workers:
        Candidate-verification worker processes (:data:`PARALLEL_METHODS`
        only).  The default 1 is the fully serial path; any larger value
        produces identical results, faster (see ``docs/PARALLEL.md``).
    memoize / flat_kernel:
        Engine-family accelerations (ignored by the baselines):
        ``memoize`` (default on) carries verification work across
        iterations with affected-region invalidation, and ``flat_kernel``
        selects the flat-array CSR follower kernel (``None`` = auto on
        CSR-backed graphs).  Both preserve byte-identical results — see
        ``docs/PERF.md``.
    shards:
        Run the campaign on the component-sharded substrate with at most
        this many shards (engine family only; ``None`` = unsharded).
        Results are byte-identical to the unsharded path; checkpoints use
        the sharded envelope format (``docs/RESILIENCE.md``).
    on_iteration / handle_sigterm:
        Engine-family observability and lifecycle hooks (ignored by the
        baselines): ``on_iteration`` streams each finished iteration
        record to an observer — the campaign service uses it for
        heartbeats and cooperative drain — and ``handle_sigterm``
        converts ``SIGTERM`` at an iteration boundary into a graceful
        ``interrupted=True`` best-so-far result (see ``docs/SERVICE.md``).
    context:
        A :class:`repro.core.batch.SharedCampaignContext` sharing the
        (α,β)-invariant substrate — base core, pristine order state,
        warm verification seed, kernel/evaluator leases — across a batch
        of same-``(graph, α, β)`` campaigns.  Engine family only (the
        baselines and the sharded substrate have nothing it serves and
        ignore it); results stay byte-identical to a context-free run
        (``docs/PERF.md``).

    Returns
    -------
    AnchoredCoreResult
        Anchors, followers (w.r.t. the original core), and per-iteration
        diagnostics.
    """
    if ((checkpoint is not None or resume_from is not None)
            and method not in CHECKPOINTABLE_METHODS):
        raise InvalidParameterError(
            "checkpoint/resume is only supported by %s, not %r"
            % (", ".join(CHECKPOINTABLE_METHODS), method))
    if workers < 1:
        raise InvalidParameterError("workers must be >= 1, got %d" % workers)
    if workers > 1 and method not in PARALLEL_METHODS:
        raise InvalidParameterError(
            "workers > 1 is only supported by %s, not %r"
            % (", ".join(PARALLEL_METHODS), method))
    if shards is not None and method not in CHECKPOINTABLE_METHODS:
        raise InvalidParameterError(
            "shards is only supported by %s, not %r"
            % (", ".join(CHECKPOINTABLE_METHODS), method))
    deadline = (time.perf_counter() + time_limit) if time_limit else None
    if method == "random":
        return run_random(graph, alpha, beta, b1, b2, seed=seed)
    if method == "top-degree":
        return run_top_degree(graph, alpha, beta, b1, b2)
    if method == "degree-greedy":
        return run_degree_greedy(graph, alpha, beta, b1, b2)
    if method == "exact":
        return run_exact(graph, alpha, beta, b1, b2, deadline=deadline)
    if method == "naive":
        return run_naive(graph, alpha, beta, b1, b2, deadline=deadline)
    if method == "filver":
        return run_filver(graph, alpha, beta, b1, b2, deadline=deadline,
                          checkpoint=checkpoint, resume_from=resume_from,
                          workers=workers, memoize=memoize,
                          flat_kernel=flat_kernel, shards=shards,
                          on_iteration=on_iteration,
                          handle_sigterm=handle_sigterm, context=context)
    if method == "filver+":
        return run_filver_plus(graph, alpha, beta, b1, b2, deadline=deadline,
                               checkpoint=checkpoint, resume_from=resume_from,
                               workers=workers, memoize=memoize,
                               flat_kernel=flat_kernel, shards=shards,
                               on_iteration=on_iteration,
                               handle_sigterm=handle_sigterm,
                               context=context)
    if method == "filver++":
        return run_filver_plus_plus(graph, alpha, beta, b1, b2, t=t,
                                    deadline=deadline, checkpoint=checkpoint,
                                    resume_from=resume_from, workers=workers,
                                    memoize=memoize, flat_kernel=flat_kernel,
                                    shards=shards, on_iteration=on_iteration,
                                    handle_sigterm=handle_sigterm,
                                    context=context)
    raise InvalidParameterError(
        "unknown method %r; expected one of %s" % (method, ", ".join(METHODS)))
