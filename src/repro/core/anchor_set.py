"""Anchor-set maintenance for FILVER++ (Section V-A, Algorithm 6).

While scanning candidates, FILVER++ maintains a working set ``T`` of up to
``t`` anchors whose *in-shell follower set* ``F_sh(T) = ∪_{x∈T} F(x)`` it
tries to grow.  ``|F_sh(T)|`` is a tight lower bound on ``|F(T)|`` (Fig. 4 of
the paper; reproduced by ``benchmarks/bench_fig4_inshell.py``).

A new candidate ``x`` either joins ``T`` (when ``|T| < t`` and the per-layer
budgets allow) or replaces the *least-contribution anchor* ``x_min(T)`` — the
member with the smallest exclusive follower set (Definitions 11–12) — when
that strictly grows ``F_sh`` (Lemma 4 reduces the comparison to
``|F_ex(x, T')| > |F_ex(x_min, T)|``).

Bookkeeping uses per-follower coverage sets so that insertion, replacement
and the exclusive-size queries all cost ``O(|F(x)|)`` (``t`` is a small
constant, ≤ 16 in all the paper's experiments).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bigraph.graph import BipartiteGraph

__all__ = ["AnchorSetMaintainer"]


class AnchorSetMaintainer:
    """Maintains the working anchor set ``T`` of one FILVER++ iteration.

    Parameters
    ----------
    graph:
        Used only to decide which layer an anchor occupies.
    t:
        Capacity of ``T`` (the paper's ``t``).
    upper_budget / lower_budget:
        Remaining per-layer budgets for this iteration
        (``b1 - |A ∩ U|`` and ``b2 - |A ∩ L|``).
    """

    def __init__(self, graph: BipartiteGraph, t: int,
                 upper_budget: int, lower_budget: int) -> None:
        if t < 1:
            raise ValueError("t must be >= 1, got %d" % t)
        self._graph = graph
        self.t = t
        self.upper_budget = upper_budget
        self.lower_budget = lower_budget
        self._followers: Dict[int, Set[int]] = {}
        self._coverers: Dict[int, Set[int]] = {}
        self._exclusive: Dict[int, int] = {}
        #: Memoized skip_threshold(); None = recompute.  The threshold is a
        #: pure function of (T, exclusive sizes), so it only changes when a
        #: member is inserted or removed — but the verification scan asks
        #: for it once per scanned candidate, thousands of times between
        #: mutations.
        self._threshold: Optional[int] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def anchors(self) -> List[int]:
        """Current members of ``T`` (ascending id, for determinism)."""
        return sorted(self._followers)

    def __len__(self) -> int:
        return len(self._followers)

    def followers_of(self, x: int) -> Set[int]:
        """The recorded ``F(x)`` of a member anchor."""
        return self._followers[x]

    def in_shell_followers(self) -> Set[int]:
        """``F_sh(T)``: the union of the members' follower sets."""
        return set(self._coverers)

    def in_shell_size(self) -> int:
        """``|F_sh(T)|`` without materializing the union."""
        return len(self._coverers)

    def exclusive_size(self, x: int) -> int:
        """``|F_ex(x, T)|`` for a member ``x``."""
        return self._exclusive[x]

    def least_contribution_anchor(self) -> Optional[int]:
        """``x_min(T)``; ties break toward the smaller vertex id."""
        if not self._followers:
            return None
        return min(self._followers,
                   key=lambda x: (self._exclusive[x], x))

    def skip_threshold(self) -> int:
        """The verification-stage pruning bound.

        While ``T`` is not yet full every candidate is worth verifying, so
        the threshold is 0 (skip only candidates that cannot produce any
        follower).  Once full, a candidate whose upper bound does not exceed
        ``|F_ex(x_min(T), T)|`` can never improve ``T`` and is skipped.
        """
        cached = self._threshold
        if cached is not None:
            return cached
        if len(self._followers) < self.t:
            threshold = 0
        else:
            x_min = self.least_contribution_anchor()
            threshold = self._exclusive[x_min] if x_min is not None else 0
        self._threshold = threshold
        return threshold

    # ------------------------------------------------------------------
    # Updates (Algorithm 6)
    # ------------------------------------------------------------------

    def offer(self, x: int, followers: Set[int]) -> bool:
        """Present candidate ``x`` with followers ``F(x)``; return acceptance.

        Follows Algorithm 6 exactly: plain insertion while ``|T| < t`` (if the
        budgets allow), otherwise replacement of the least-contribution anchor
        when that strictly increases ``|F_sh(T)|`` and keeps ``T`` within
        budget.
        """
        if x in self._followers:
            return False
        if len(self._followers) < self.t:
            if self._fits_budget(extra=x):
                self._insert(x, followers)
                return True
            return False

        x_min = self.least_contribution_anchor()
        if x_min is None:
            return False
        if not self._fits_budget(extra=x, removed=x_min):
            return False
        # |F_ex(x, T')| with T' = (T \ {x_min}) ∪ {x}: followers of x covered
        # by nobody else once x_min is gone.
        min_followers = self._followers[x_min]
        gain = 0
        for u in followers:
            coverers = self._coverers.get(u)
            if coverers is None:
                gain += 1
            elif coverers == {x_min}:
                gain += 1
        if gain > self._exclusive[x_min]:
            self._remove(x_min)
            self._insert(x, followers)
            return True
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fits_budget(self, extra: int, removed: Optional[int] = None) -> bool:
        upper = sum(1 for a in self._followers if self._graph.is_upper(a))
        lower = len(self._followers) - upper
        if removed is not None:
            if self._graph.is_upper(removed):
                upper -= 1
            else:
                lower -= 1
        if self._graph.is_upper(extra):
            upper += 1
        else:
            lower += 1
        return upper <= self.upper_budget and lower <= self.lower_budget

    def _insert(self, x: int, followers: Set[int]) -> None:
        self._threshold = None
        self._followers[x] = set(followers)
        exclusive = 0
        for u in followers:
            coverers = self._coverers.setdefault(u, set())
            if len(coverers) == 1:
                (owner,) = coverers
                self._exclusive[owner] -= 1
            coverers.add(x)
            if len(coverers) == 1:
                exclusive += 1
        self._exclusive[x] = exclusive

    def _remove(self, x: int) -> None:
        self._threshold = None
        followers = self._followers.pop(x)
        del self._exclusive[x]
        for u in followers:
            coverers = self._coverers[u]
            coverers.discard(x)
            if not coverers:
                del self._coverers[u]
            elif len(coverers) == 1:
                (owner,) = coverers
                self._exclusive[owner] += 1
