"""Non-core-aware baselines from the effectiveness study (Fig. 7(a)).

* ``Random`` — anchor ``b1`` arbitrary upper and ``b2`` arbitrary lower
  vertices (outside the core, since anchoring core vertices is a no-op).
* ``Top-Degree`` — anchor the highest-degree vertices of each layer.
* ``Degree-Greedy`` — iteratively anchor the highest-degree vertex outside
  the *current* anchored core until the budgets run out.

All three return the same :class:`AnchoredCoreResult` type as the real
algorithms so the Fig. 7(a) harness can compare follower counts directly.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Sequence, Set

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.validation import validate_problem
from repro.core.result import AnchoredCoreResult, IterationRecord

__all__ = ["run_random", "run_top_degree", "run_degree_greedy"]


def _finalize(graph: BipartiteGraph, algorithm: str, alpha: int, beta: int,
              b1: int, b2: int, anchors: List[int], base_core: Set[int],
              start: float) -> AnchoredCoreResult:
    final_core = anchored_abcore(graph, alpha, beta, anchors)
    follower_set = final_core - base_core - set(anchors)
    elapsed = time.perf_counter() - start
    record = IterationRecord(
        anchors=list(anchors), marginal_followers=len(follower_set),
        candidates_total=graph.n_vertices - len(base_core),
        candidates_after_filter=len(anchors), verifications=1,
        elapsed=elapsed)
    return AnchoredCoreResult(
        algorithm=algorithm, alpha=alpha, beta=beta, b1=b1, b2=b2,
        anchors=anchors, followers=follower_set,
        base_core_size=len(base_core), final_core_size=len(final_core),
        elapsed=elapsed, iterations=[record])


def run_random(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    seed: Optional[int] = None,
) -> AnchoredCoreResult:
    """Uniformly random anchors from outside the (α,β)-core."""
    validate_problem(graph, alpha, beta, b1, b2)
    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)
    rng = random.Random(seed)
    upper_pool = [u for u in graph.upper_vertices() if u not in base_core]
    lower_pool = [v for v in graph.lower_vertices() if v not in base_core]
    anchors = (rng.sample(upper_pool, min(b1, len(upper_pool)))
               + rng.sample(lower_pool, min(b2, len(lower_pool))))
    return _finalize(graph, "random", alpha, beta, b1, b2, anchors,
                     base_core, start)


def run_top_degree(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
) -> AnchoredCoreResult:
    """Anchor the top-``b1``/``b2`` degree vertices outside the core."""
    validate_problem(graph, alpha, beta, b1, b2)
    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)
    upper_pool = sorted((u for u in graph.upper_vertices() if u not in base_core),
                        key=lambda u: (-graph.degree(u), u))
    lower_pool = sorted((v for v in graph.lower_vertices() if v not in base_core),
                        key=lambda v: (-graph.degree(v), v))
    anchors = upper_pool[:b1] + lower_pool[:b2]
    return _finalize(graph, "top-degree", alpha, beta, b1, b2, anchors,
                     base_core, start)


def run_degree_greedy(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
) -> AnchoredCoreResult:
    """Iteratively anchor the highest-degree vertex outside ``C(G_A)``.

    Unlike Top-Degree this re-derives the candidate pool after each anchor:
    vertices pulled into the anchored core stop being candidates, so later
    picks spread into still-uncovered regions.
    """
    validate_problem(graph, alpha, beta, b1, b2)
    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)
    anchors: List[int] = []
    current_core = set(base_core)
    while True:
        upper_used = sum(1 for a in anchors if graph.is_upper(a))
        upper_left = b1 - upper_used
        lower_left = b2 - (len(anchors) - upper_used)
        if upper_left <= 0 and lower_left <= 0:
            break
        best = -1
        best_degree = -1
        for x in graph.vertices():
            if x in current_core or x in anchors:
                continue
            if graph.is_upper(x):
                if upper_left <= 0:
                    continue
            elif lower_left <= 0:
                continue
            d = graph.degree(x)
            if d > best_degree:
                best_degree = d
                best = x
        if best < 0:
            break
        anchors.append(best)
        current_core = anchored_abcore(graph, alpha, beta, anchors)
    return _finalize(graph, "degree-greedy", alpha, beta, b1, b2, anchors,
                     base_core, start)
