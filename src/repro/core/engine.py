"""The shared filter–verification greedy engine behind the FILVER family.

FILVER, FILVER+ and FILVER++ differ only in which optimizations are switched
on; this module implements the common loop once, parameterized by
:class:`EngineOptions`:

==================  ==========  ==========  ===========
option              FILVER      FILVER+     FILVER++
==================  ==========  ==========  ===========
two-hop filter      off         on          on
order maintenance   off (full   on (Alg. 4) on (batched)
                    recompute)
candidate bound     r-score     ``|rf(x)|`` ``|rf(x)|``
anchors/iteration   1           1           ``t``
==================  ==========  ==========  ===========

Keeping one engine also gives the ablation benchmarks intermediate
configurations (e.g. the two-hop filter without order maintenance) for free.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.validation import validate_problem
from repro.core.anchor_set import AnchorSetMaintainer
from repro.core.deletion_order import DeletionOrder, r_scores, reachable_from
from repro.core.followers import compute_followers
from repro.core.order_maintenance import OrderState
from repro.core.result import AnchoredCoreResult, IterationRecord
from repro.core.signatures import two_hop_filter
from repro.exceptions import AbortCampaign
from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    graph_fingerprint,
    load_checkpoint,
)
from repro.resilience.faults import active_plan, fault_site

__all__ = ["EngineOptions", "run_engine"]


@dataclass(frozen=True)
class EngineOptions:
    """Feature switches distinguishing the FILVER variants."""

    use_two_hop_filter: bool = False
    maintain_orders: bool = False
    use_rf_bound: bool = False
    anchors_per_iteration: int = 1


#: Signature of the optional per-iteration observer: it receives the
#: iteration's record right after the anchors are placed.  An observer that
#: wants to abort raises :class:`repro.exceptions.AbortCampaign`, which
#: triggers the graceful best-so-far path (``interrupted=True``).  Any other
#: observer exception propagates — but only after the iteration's checkpoint
#: (when one is configured) has been written, so no progress is lost.
ProgressCallback = Callable[[IterationRecord], None]

#: A checkpoint source: a path to a checkpoint file, or an already-loaded
#: :class:`CampaignCheckpoint`.
CheckpointSource = Union[str, "os.PathLike[str]", CampaignCheckpoint]


def run_engine(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    options: EngineOptions,
    algorithm: str,
    deadline: Optional[float] = None,
    on_iteration: Optional[ProgressCallback] = None,
    checkpoint: Optional[Union[str, "os.PathLike[str]"]] = None,
    resume_from: Optional[CheckpointSource] = None,
    workers: int = 1,
) -> AnchoredCoreResult:
    """Run the greedy filter–verification loop to completion.

    The loop ends when both budgets are exhausted or no remaining candidate
    can produce a follower (placing further anchors would not change the
    objective).  ``deadline`` is an absolute ``time.perf_counter()`` value;
    when exceeded (even before the first iteration) the partial result is
    returned with ``timed_out=True``.  ``on_iteration`` is invoked with each
    finished :class:`IterationRecord` — long runs can stream progress to a
    UI or log.

    ``workers > 1`` fans candidate verification out to a process pool
    (:mod:`repro.parallel`) sharing the CSR graph zero-copy; results are
    reduced in the serial tie-breaking order, so the returned result —
    anchors, followers, per-iteration records, ``verifications`` counts —
    is identical to a ``workers=1`` run (``docs/PARALLEL.md``).  Because
    nothing about the parallel schedule is recorded, checkpoints written by
    serial and parallel campaigns are interchangeable.  When the pool
    cannot be created the engine silently degrades to the serial path.

    Resilience hooks (see ``docs/RESILIENCE.md``):

    * ``checkpoint`` — path to which a :class:`CampaignCheckpoint` is
      atomically written after every iteration;
    * ``resume_from`` — checkpoint path (or loaded checkpoint) whose
      progress is replayed before the loop continues; the checkpoint must
      match this graph, (α, β), budgets, and engine options, and the
      resumed campaign produces the same anchors/followers/iteration
      records as an uninterrupted run;
    * ``KeyboardInterrupt`` / ``MemoryError`` at an iteration boundary
      degrade gracefully into a verified best-so-far result flagged
      ``interrupted=True`` instead of losing the campaign.
    """
    validate_problem(graph, alpha, beta, b1, b2)
    t = options.anchors_per_iteration
    if t < 1:
        raise ValueError("anchors_per_iteration must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1, got %d" % workers)

    evaluator = None
    if workers > 1:
        from repro.parallel import create_evaluator

        plan = active_plan()
        fault_specs = tuple(
            spec for spec in (plan.specs if plan is not None else ())
            if spec.site.startswith("parallel."))
        evaluator = create_evaluator(graph, workers, fault_specs=fault_specs)

    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)
    state = OrderState(graph, alpha, beta, maintain=options.maintain_orders)

    anchors: List[int] = []
    # Budget bookkeeping is incremental: placed upper anchors are counted as
    # they are chosen, not re-derived by scanning the anchor list each round.
    upper_used = 0
    is_upper = graph.is_upper
    iterations: List[IterationRecord] = []
    timed_out = False
    interrupted = False
    exhausted = False
    elapsed_prior = 0.0
    options_dict = asdict(options)
    fingerprint = graph_fingerprint(graph) if checkpoint is not None else None

    if resume_from is not None:
        restored = (resume_from if isinstance(resume_from, CampaignCheckpoint)
                    else load_checkpoint(resume_from))
        restored.validate_for(graph, alpha, beta, b1, b2, options_dict)
        # Replay apply_anchors with the recorded per-iteration batches — the
        # exact call sequence the original run made — so the incremental
        # order-maintenance state (and every later candidate ranking) is
        # identical to the uninterrupted run's.
        for record in restored.iterations:
            if record.anchors:
                state.apply_anchors(record.anchors)
        anchors = list(restored.anchors)
        upper_used = restored.upper_used
        iterations = list(restored.iterations)
        exhausted = restored.exhausted
        elapsed_prior = restored.elapsed

    def save_checkpoint() -> None:
        if checkpoint is None:
            return
        CampaignCheckpoint(
            algorithm=algorithm, alpha=alpha, beta=beta, b1=b1, b2=b2,
            options=options_dict, graph_fingerprint=fingerprint or "",
            anchors=list(anchors), upper_used=upper_used,
            iterations=list(iterations), exhausted=exhausted,
            elapsed=elapsed_prior + time.perf_counter() - start,
        ).save(checkpoint)

    try:
        while not (timed_out or exhausted):
            if deadline is not None and time.perf_counter() > deadline:
                # Deadline already spent (possibly before iteration one):
                # return the valid partial result instead of burning a
                # filter pass we cannot afford.
                timed_out = True
                break
            upper_left = b1 - upper_used
            lower_left = b2 - (len(anchors) - upper_used)
            if upper_left <= 0 and lower_left <= 0:
                break
            iter_start = time.perf_counter()

            scored, candidates_total = _filter_stage(
                graph, state, upper_left, lower_left, options)
            maintainer = AnchorSetMaintainer(graph,
                                             min(t, upper_left + lower_left),
                                             upper_left, lower_left)
            verifications, timed_out = _verification_stage(
                graph, state, scored, maintainer, t, deadline,
                evaluator=evaluator)

            chosen = [x for x in maintainer.anchors
                      if maintainer.followers_of(x)]
            if not chosen:
                # Algorithm 2 initializes x* to the highest-bound candidate,
                # so the paper's greedy spends budget even when no candidate
                # yields followers this round — and doing so matters:
                # anchors placed "for free" can combine with later ones (the
                # cumulative effect of Section V).  Mirror that by falling
                # back to the top-ranked candidates within the remaining
                # budgets.
                chosen = _fallback_anchors(graph, scored, maintainer.t,
                                           upper_left, lower_left)
            if not chosen:
                record = IterationRecord(
                    anchors=[], marginal_followers=0,
                    candidates_total=candidates_total,
                    candidates_after_filter=len(scored),
                    verifications=verifications,
                    elapsed=time.perf_counter() - iter_start)
                iterations.append(record)
                exhausted = True
                save_checkpoint()
                if on_iteration is not None:
                    on_iteration(record)
                break

            core_before = len(state.core)
            state.apply_anchors(chosen)
            anchors.extend(chosen)
            upper_used += sum(1 for x in chosen if is_upper(x))
            record = IterationRecord(
                anchors=list(chosen),
                marginal_followers=len(state.core) - core_before - len(chosen),
                candidates_total=candidates_total,
                candidates_after_filter=len(scored),
                verifications=verifications,
                elapsed=time.perf_counter() - iter_start)
            iterations.append(record)
            # Persist before notifying: if the observer raises, the
            # iteration's progress is already durable.
            save_checkpoint()
            if on_iteration is not None:
                on_iteration(record)
    except AbortCampaign:
        interrupted = True
    except (KeyboardInterrupt, MemoryError):
        # Graceful degradation: the anchor list is only extended after a
        # successful apply, so finalizing here yields a verified
        # best-so-far result rather than losing hours of campaign.
        interrupted = True
    finally:
        if evaluator is not None:
            evaluator.shutdown()

    # Authoritative objective: recompute the anchored core globally once.
    final_core = anchored_abcore(graph, alpha, beta, anchors)
    follower_set = final_core - base_core - set(anchors)
    return AnchoredCoreResult(
        algorithm=algorithm, alpha=alpha, beta=beta, b1=b1, b2=b2,
        anchors=anchors, followers=follower_set,
        base_core_size=len(base_core), final_core_size=len(final_core),
        elapsed=elapsed_prior + time.perf_counter() - start,
        iterations=iterations, timed_out=timed_out, interrupted=interrupted)


def _fallback_anchors(
    graph: BipartiteGraph,
    scored: List[Tuple[int, int, DeletionOrder]],
    t: int,
    upper_left: int,
    lower_left: int,
) -> List[int]:
    """Top-bound candidates within budget, for zero-follower iterations."""
    chosen: List[int] = []
    for _bound, x, _order in scored:
        if len(chosen) >= t:
            break
        if graph.is_upper(x):
            if upper_left <= 0:
                continue
            upper_left -= 1
        else:
            if lower_left <= 0:
                continue
            lower_left -= 1
        chosen.append(x)
    return chosen


def _filter_stage(
    graph: BipartiteGraph,
    state: OrderState,
    upper_left: int,
    lower_left: int,
    options: EngineOptions,
) -> Tuple[List[Tuple[int, int, DeletionOrder]], int]:
    """Build the ranked candidate list ``[(bound, x, order), ...]``.

    Returns the list sorted by non-increasing bound (ties by vertex id) and
    the pre-filter pool size.
    """
    fault_site("engine.filter")
    scored: List[Tuple[int, int, DeletionOrder]] = []
    candidates_total = 0
    sides: List[Tuple[DeletionOrder, int]] = []
    if upper_left > 0:
        sides.append((state.upper, upper_left))
    if lower_left > 0:
        sides.append((state.lower, lower_left))

    for order, _budget in sides:
        candidates = order.candidates(graph)
        candidates_total += len(candidates)
        if not candidates:
            continue
        if options.use_two_hop_filter:
            survivors, _sigs = two_hop_filter(graph, order, candidates)
        else:
            survivors = candidates
        if options.use_rf_bound:
            for x in survivors:
                bound = len(reachable_from(graph, order, x))
                if bound > 0:
                    scored.append((bound, x, order))
        else:
            scores = r_scores(graph, order)
            for x in survivors:
                bound = scores.get(x, 0)
                if bound > 0:
                    scored.append((bound, x, order))

    scored.sort(key=lambda item: (-item[0], item[1]))
    return scored, candidates_total


def _verification_stage(
    graph: BipartiteGraph,
    state: OrderState,
    scored: List[Tuple[int, int, DeletionOrder]],
    maintainer: AnchorSetMaintainer,
    t: int,
    deadline: Optional[float],
    evaluator: Optional[object] = None,
) -> Tuple[int, bool]:
    """Scan ranked candidates, computing followers and updating ``T``.

    Returns the number of Algorithm-1 invocations and whether the deadline
    fired.  Two skip rules apply (Sections III-B and V-B):

    * a candidate inside a verified anchor's follower set is dominated;
    * a candidate whose bound cannot beat the maintainer's threshold is
      skipped — and since bounds are sorted, for ``t = 1`` the scan stops
      outright (the threshold ``|F(x*)|`` only ever grows), while for
      ``t > 1`` it continues because replacements may lower the threshold.

    With an ``evaluator`` (a :class:`repro.parallel.ParallelEvaluator`),
    follower sets are precomputed speculatively on the pool and this scan
    consumes them in the same ranked order, applying the same skip rules —
    sets for skipped candidates are simply discarded, so the anchors chosen
    and the ``verifications`` count are identical to the serial scan's.
    """
    fault_site("engine.verify")
    if evaluator is not None:
        return _parallel_verification_stage(state, scored, maintainer, t,
                                            deadline, evaluator)
    covered: Set[int] = set()
    verifications = 0
    core = state.core
    for bound, x, order in scored:
        if deadline is not None and time.perf_counter() > deadline:
            return verifications, True
        if x in covered:
            continue
        if bound <= maintainer.skip_threshold():
            if t == 1:
                break
            continue
        follower_set = compute_followers(graph, order, x, core=core)
        verifications += 1
        covered |= follower_set
        if follower_set:
            maintainer.offer(x, follower_set)
    return verifications, False


def _parallel_verification_stage(
    state: OrderState,
    scored: List[Tuple[int, int, DeletionOrder]],
    maintainer: AnchorSetMaintainer,
    t: int,
    deadline: Optional[float],
    evaluator: object,
) -> Tuple[int, bool]:
    """The verification scan over pool-precomputed follower sets.

    ``verifications`` still counts only the candidates the serial scan
    would have evaluated — the speculative extras the pool computed are
    discarded, not counted — so iteration records match serially exactly.
    Closing the stream on early exit (the ``t = 1`` break) cancels the
    not-yet-dispatched remainder.
    """
    from repro.parallel import EvaluationStopped

    covered: Set[int] = set()
    verifications = 0
    items = [(order.side, x) for _bound, x, order in scored]
    evaluator.begin_iteration(state, deadline)  # type: ignore[attr-defined]
    stream = evaluator.evaluate(items)  # type: ignore[attr-defined]
    try:
        for (bound, x, _order), follower_set in zip(scored, stream):
            if deadline is not None and time.perf_counter() > deadline:
                return verifications, True
            if x in covered:
                continue
            if bound <= maintainer.skip_threshold():
                if t == 1:
                    break
                continue
            verifications += 1
            covered |= follower_set
            if follower_set:
                maintainer.offer(x, follower_set)
    except EvaluationStopped:
        # A worker observed the deadline before the parent did: same
        # outcome as the serial per-candidate deadline check.
        return verifications, True
    finally:
        stream.close()
    return verifications, False
