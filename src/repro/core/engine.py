"""The shared filter–verification greedy engine behind the FILVER family.

FILVER, FILVER+ and FILVER++ differ only in which optimizations are switched
on; this module implements the common loop once, parameterized by
:class:`EngineOptions`:

==================  ==========  ==========  ===========
option              FILVER      FILVER+     FILVER++
==================  ==========  ==========  ===========
two-hop filter      off         on          on
order maintenance   off (full   on (Alg. 4) on (batched)
                    recompute)
candidate bound     r-score     ``|rf(x)|`` ``|rf(x)|``
anchors/iteration   1           1           ``t``
==================  ==========  ==========  ===========

Keeping one engine also gives the ablation benchmarks intermediate
configurations (e.g. the two-hop filter without order maintenance) for free.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.kernel import FollowerKernel, kernel_for
from repro.bigraph.validation import validate_problem
from repro.core.anchor_set import AnchorSetMaintainer
from repro.core.deletion_order import DeletionOrder, r_scores, reachable_from
from repro.core.followers import compute_followers
from repro.core.incremental import VerificationCache
from repro.core.order_maintenance import OrderState
from repro.core.result import AnchoredCoreResult, IterationRecord
from repro.core.signatures import two_hop_filter, two_hop_filter_cached
from repro.exceptions import AbortCampaign
from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    graph_fingerprint,
    load_checkpoint,
)
from repro.resilience.faults import active_plan, fault_site
from repro.resilience.signals import TerminationFlag

if TYPE_CHECKING:
    from repro.core.batch import SharedCampaignContext
    from repro.parallel.protocol import Evaluator

__all__ = ["EngineOptions", "run_engine"]

#: One ranked candidate: ``(bound, x, order, rf)``.  ``rf`` is the cached or
#: freshly computed ``rf(x)`` when the rf bound produced it (plumbed through
#: to Algorithm 1 so the follower peel never recollects it), ``None`` on the
#: r-score path.
ScoredCandidate = Tuple[int, int, DeletionOrder, Optional[Set[int]]]


@dataclass(frozen=True)
class EngineOptions:
    """Feature switches distinguishing the FILVER variants."""

    use_two_hop_filter: bool = False
    maintain_orders: bool = False
    use_rf_bound: bool = False
    anchors_per_iteration: int = 1


#: Signature of the optional per-iteration observer: it receives the
#: iteration's record right after the anchors are placed.  An observer that
#: wants to abort raises :class:`repro.exceptions.AbortCampaign`, which
#: triggers the graceful best-so-far path (``interrupted=True``).  Any other
#: observer exception propagates — but only after the iteration's checkpoint
#: (when one is configured) has been written, so no progress is lost.
ProgressCallback = Callable[[IterationRecord], None]

#: A checkpoint source: a path to a checkpoint file, or an already-loaded
#: :class:`CampaignCheckpoint`.
CheckpointSource = Union[str, "os.PathLike[str]", CampaignCheckpoint]


def run_engine(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    options: EngineOptions,
    algorithm: str,
    deadline: Optional[float] = None,
    on_iteration: Optional[ProgressCallback] = None,
    checkpoint: Optional[Union[str, "os.PathLike[str]"]] = None,
    resume_from: Optional[CheckpointSource] = None,
    workers: int = 1,
    memoize: bool = True,
    flat_kernel: Optional[bool] = None,
    handle_sigterm: bool = False,
    context: Optional["SharedCampaignContext"] = None,
) -> AnchoredCoreResult:
    """Run the greedy filter–verification loop to completion.

    The loop ends when both budgets are exhausted or no remaining candidate
    can produce a follower (placing further anchors would not change the
    objective).  ``deadline`` is an absolute ``time.perf_counter()`` value;
    when exceeded (even before the first iteration) the partial result is
    returned with ``timed_out=True``.  ``on_iteration`` is invoked with each
    finished :class:`IterationRecord` — long runs can stream progress to a
    UI or log.

    ``workers > 1`` fans candidate verification out to a process pool
    (:mod:`repro.parallel`) sharing the CSR graph zero-copy; results are
    reduced in the serial tie-breaking order, so the returned result —
    anchors, followers, per-iteration records, ``verifications`` counts —
    is identical to a ``workers=1`` run (``docs/PARALLEL.md``).  Because
    nothing about the parallel schedule is recorded, checkpoints written by
    serial and parallel campaigns are interchangeable.  When the pool
    cannot be created the engine silently degrades to the serial path.

    ``memoize`` (default on) carries verification work — ``rf(x)`` sets,
    bounds, follower signatures, two-hop verdicts, follower sets, r-score
    tables — across iterations in a :class:`VerificationCache`, invalidated
    by the affected regions order maintenance reports (``docs/PERF.md``).
    ``flat_kernel`` selects the flat-array follower kernel
    (:class:`repro.bigraph.FollowerKernel`): ``None`` auto-enables it on
    CSR-backed graphs, ``True`` requires a CSR backend, ``False`` forces
    the generic dict/set path.  Both switches are pure accelerations:
    results are byte-identical either way (anchors, follower sets,
    per-iteration ``verifications`` counts — cache hits still count — and
    canonical JSON), and neither is recorded in checkpoints, so campaigns
    resumed under different settings still replay identically; caches are
    ephemeral and rebuilt after a resume.

    Resilience hooks (see ``docs/RESILIENCE.md``):

    * ``checkpoint`` — path to which a :class:`CampaignCheckpoint` is
      atomically written after every iteration;
    * ``resume_from`` — checkpoint path (or loaded checkpoint) whose
      progress is replayed before the loop continues; the checkpoint must
      match this graph, (α, β), budgets, and engine options, and the
      resumed campaign produces the same anchors/followers/iteration
      records as an uninterrupted run;
    * ``KeyboardInterrupt`` / ``MemoryError`` at an iteration boundary
      degrade gracefully into a verified best-so-far result flagged
      ``interrupted=True`` instead of losing the campaign;
    * ``handle_sigterm=True`` additionally converts ``SIGTERM`` into the
      same path: a :class:`repro.resilience.signals.TerminationFlag` is
      installed for the duration of the run (main thread only — elsewhere
      the flag is inert and the option is harmless), the loop polls it at
      each iteration boundary, and a delivered signal yields the verified
      best-so-far result with every completed iteration's checkpoint
      already flushed, instead of a dead process.  Off by default; the
      campaign service (:mod:`repro.service`) manages signals itself.

    ``context`` (a :class:`repro.core.batch.SharedCampaignContext`) lets a
    batch of same-``(graph, α, β)`` campaigns share the (α, β)-invariant
    substrate: the base core, a pristine order-state clone, the frozen
    epoch-0 verification seed, and leased kernels/evaluators.  Every shared
    value equals what this run would have computed cold, so results remain
    byte-identical (``docs/PERF.md``).  The seed is skipped on resume —
    the replayed apply calls run without invalidation bookkeeping, so only
    a cache that starts cold (the standalone resume behavior) is sound.
    """
    validate_problem(graph, alpha, beta, b1, b2)
    t = options.anchors_per_iteration
    if t < 1:
        raise ValueError("anchors_per_iteration must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1, got %d" % workers)
    if context is not None:
        context.check_compatible(graph, alpha, beta)

    seed = (context.seed_tables()
            if context is not None and memoize and resume_from is None
            else None)
    cache = VerificationCache(graph, seed=seed) if memoize else None
    leased_kernel = False
    if flat_kernel is None or flat_kernel:
        kernel = context.acquire_kernel() if context is not None else None
        leased_kernel = kernel is not None
        if kernel is None:
            # Same selection as standalone: auto on CSR for None, required
            # (construction raises on non-CSR) for True.
            kernel = kernel_for(graph) if flat_kernel is None \
                else FollowerKernel(graph)
    else:
        kernel = None

    evaluator: Optional["Evaluator"] = None
    shared_evaluator = False
    if workers > 1:
        from repro.parallel import create_evaluator

        plan = active_plan()
        fault_specs = tuple(
            spec for spec in (plan.specs if plan is not None else ())
            if spec.site.startswith("parallel."))
        if context is not None and not fault_specs:
            # Fault-injected pools stay private: specs are baked into the
            # workers at spawn, so a pooled evaluator would leak them
            # across campaigns.
            evaluator = context.acquire_evaluator(
                workers, use_flat_kernel=kernel is not None)
            shared_evaluator = evaluator is not None
        if evaluator is None:
            evaluator = create_evaluator(graph, workers,
                                         fault_specs=fault_specs,
                                         use_flat_kernel=kernel is not None)

    start = time.perf_counter()
    base_core = (context.base_core() if context is not None
                 else abcore(graph, alpha, beta))
    if context is not None:
        state = context.order_state(maintain=options.maintain_orders)
    else:
        state = OrderState(graph, alpha, beta,
                           maintain=options.maintain_orders)

    anchors: List[int] = []
    # Budget bookkeeping is incremental: placed upper anchors are counted as
    # they are chosen, not re-derived by scanning the anchor list each round.
    upper_used = 0
    is_upper = graph.is_upper
    iterations: List[IterationRecord] = []
    timed_out = False
    interrupted = False
    exhausted = False
    elapsed_prior = 0.0
    options_dict = asdict(options)
    fingerprint = graph_fingerprint(graph) if checkpoint is not None else None

    if resume_from is not None:
        restored = (resume_from if isinstance(resume_from, CampaignCheckpoint)
                    else load_checkpoint(resume_from))
        restored.validate_for(graph, alpha, beta, b1, b2, options_dict)
        # Replay apply_anchors with the recorded per-iteration batches — the
        # exact call sequence the original run made — so the incremental
        # order-maintenance state (and every later candidate ranking) is
        # identical to the uninterrupted run's.
        for record in restored.iterations:
            if record.anchors:
                state.apply_anchors(record.anchors)
        anchors = list(restored.anchors)
        upper_used = restored.upper_used
        iterations = list(restored.iterations)
        exhausted = restored.exhausted
        elapsed_prior = restored.elapsed

    def save_checkpoint() -> None:
        if checkpoint is None:
            return
        CampaignCheckpoint(
            algorithm=algorithm, alpha=alpha, beta=beta, b1=b1, b2=b2,
            options=options_dict, graph_fingerprint=fingerprint or "",
            anchors=list(anchors), upper_used=upper_used,
            iterations=list(iterations), exhausted=exhausted,
            elapsed=elapsed_prior + time.perf_counter() - start,
        ).save(checkpoint)

    termination = TerminationFlag().install() if handle_sigterm else None
    try:
        while not (timed_out or exhausted):
            if termination is not None and termination.is_set():
                # SIGTERM arrived: stop at this iteration boundary with the
                # verified best-so-far (every completed iteration's
                # checkpoint is already on disk).
                interrupted = True
                break
            if deadline is not None and time.perf_counter() > deadline:
                # Deadline already spent (possibly before iteration one):
                # return the valid partial result instead of burning a
                # filter pass we cannot afford.
                timed_out = True
                break
            upper_left = b1 - upper_used
            lower_left = b2 - (len(anchors) - upper_used)
            if upper_left <= 0 and lower_left <= 0:
                break
            iter_start = time.perf_counter()

            if kernel is not None:
                kernel.begin_iteration(state.upper.position,
                                       state.lower.position, state.core)
            fault_site("engine.filter")
            scored, candidates_total = _filter_stage(
                graph, state, upper_left, lower_left, options,
                cache=cache, kernel=kernel)
            maintainer = AnchorSetMaintainer(graph,
                                             min(t, upper_left + lower_left),
                                             upper_left, lower_left)
            verifications, timed_out = _verification_stage(
                graph, state, scored, maintainer, t, deadline,
                cache=cache, kernel=kernel, evaluator=evaluator)

            chosen = [x for x in maintainer.anchors
                      if maintainer.followers_of(x)]
            if not chosen:
                # Algorithm 2 initializes x* to the highest-bound candidate,
                # so the paper's greedy spends budget even when no candidate
                # yields followers this round — and doing so matters:
                # anchors placed "for free" can combine with later ones (the
                # cumulative effect of Section V).  Mirror that by falling
                # back to the top-ranked candidates within the remaining
                # budgets.
                chosen = _fallback_anchors(graph, scored, maintainer.t,
                                           upper_left, lower_left)
            if not chosen:
                record = IterationRecord(
                    anchors=[], marginal_followers=0,
                    candidates_total=candidates_total,
                    candidates_after_filter=len(scored),
                    verifications=verifications,
                    elapsed=time.perf_counter() - iter_start)
                iterations.append(record)
                exhausted = True
                save_checkpoint()
                if on_iteration is not None:
                    on_iteration(record)
                break

            core_before = len(state.core)
            dirty = state.apply_anchors(chosen)
            if cache is not None:
                cache.invalidate(dirty)
            anchors.extend(chosen)
            upper_used += sum(1 for x in chosen if is_upper(x))
            record = IterationRecord(
                anchors=list(chosen),
                marginal_followers=len(state.core) - core_before - len(chosen),
                candidates_total=candidates_total,
                candidates_after_filter=len(scored),
                verifications=verifications,
                elapsed=time.perf_counter() - iter_start)
            iterations.append(record)
            # Persist before notifying: if the observer raises, the
            # iteration's progress is already durable.
            save_checkpoint()
            if on_iteration is not None:
                on_iteration(record)
    except AbortCampaign:
        interrupted = True
    except (KeyboardInterrupt, MemoryError):
        # Graceful degradation: the anchor list is only extended after a
        # successful apply, so finalizing here yields a verified
        # best-so-far result rather than losing hours of campaign.
        interrupted = True
    finally:
        if termination is not None:
            termination.restore()
        if evaluator is not None:
            if shared_evaluator and context is not None:
                context.release_evaluator(workers, kernel is not None,
                                          evaluator)
            else:
                evaluator.shutdown()
        if leased_kernel and context is not None:
            context.release_kernel(kernel)

    # Authoritative objective: recompute the anchored core globally once.
    final_core = anchored_abcore(graph, alpha, beta, anchors)
    follower_set = final_core - base_core - set(anchors)
    return AnchoredCoreResult(
        algorithm=algorithm, alpha=alpha, beta=beta, b1=b1, b2=b2,
        anchors=anchors, followers=follower_set,
        base_core_size=len(base_core), final_core_size=len(final_core),
        elapsed=elapsed_prior + time.perf_counter() - start,
        iterations=iterations, timed_out=timed_out, interrupted=interrupted)


def _fallback_anchors(
    graph: BipartiteGraph,
    scored: List[ScoredCandidate],
    t: int,
    upper_left: int,
    lower_left: int,
) -> List[int]:
    """Top-bound candidates within budget, for zero-follower iterations."""
    chosen: List[int] = []
    for _bound, x, _order, _rf in scored:
        if len(chosen) >= t:
            break
        if graph.is_upper(x):
            if upper_left <= 0:
                continue
            upper_left -= 1
        else:
            if lower_left <= 0:
                continue
            lower_left -= 1
        chosen.append(x)
    return chosen


def _filter_stage(
    graph: BipartiteGraph,
    state: OrderState,
    upper_left: int,
    lower_left: int,
    options: EngineOptions,
    cache: Optional[VerificationCache] = None,
    kernel: Optional[FollowerKernel] = None,
) -> Tuple[List[ScoredCandidate], int]:
    """Build the ranked candidate list ``[(bound, x, order, rf), ...]``.

    Returns the list sorted by non-increasing bound (ties by vertex id) and
    the pre-filter pool size.  With a ``cache``, signatures, two-hop
    verdicts, ``rf(x)`` bounds, and r-score tables are reused for every
    candidate the last apply's affected regions did not touch; with a
    ``kernel``, fresh ``rf(x)`` sets come from the flat-array DFS.  The
    survivor set, the bounds, and hence the ranked list are identical on
    every path (``docs/PERF.md``).

    The ``engine.filter`` fault site fires in the caller, once per
    iteration — the sharded substrate runs this stage once per dirty shard
    and must hit the site at the same per-iteration cadence as the serial
    engine.
    """
    scored: List[ScoredCandidate] = []
    candidates_total = 0
    sides: List[Tuple[DeletionOrder, int]] = []
    if upper_left > 0:
        sides.append((state.upper, upper_left))
    if lower_left > 0:
        sides.append((state.lower, lower_left))

    for order, _budget in sides:
        side = order.side
        candidates = order.candidates(graph)
        candidates_total += len(candidates)
        if not candidates:
            continue
        if options.use_two_hop_filter:
            if cache is not None:
                survivors, _sigs = two_hop_filter_cached(graph, order,
                                                         candidates, cache)
            else:
                survivors, _sigs = two_hop_filter(graph, order, candidates)
        else:
            survivors = candidates
        if options.use_rf_bound:
            for x in survivors:  # hot-loop
                entry = cache.rf_entry(side, x) if cache is not None else None
                if entry is not None:
                    rf = entry.rf
                    bound = entry.bound
                else:
                    if kernel is not None:
                        rf = kernel.reachable(side, x)
                    else:  # once per cache miss, stored below
                        rf = reachable_from(  # repro: ignore[recompute]
                            graph, order, x)
                    bound = len(rf)
                    if cache is not None:
                        cache.store_rf(side, x, rf)
                if bound > 0:
                    scored.append((bound, x, order, rf))
        else:
            scores = cache.r_scores_for(side) if cache is not None else None
            if scores is None:
                scores = r_scores(graph, order)
                if cache is not None:
                    cache.store_r_scores(side, scores)
            for x in survivors:
                bound = scores.get(x, 0)
                if bound > 0:
                    scored.append((bound, x, order, None))

    scored.sort(key=lambda item: (-item[0], item[1]))
    return scored, candidates_total


def _verification_stage(
    graph: BipartiteGraph,
    state: OrderState,
    scored: List[ScoredCandidate],
    maintainer: AnchorSetMaintainer,
    t: int,
    deadline: Optional[float],
    cache: Optional[VerificationCache] = None,
    kernel: Optional[FollowerKernel] = None,
    evaluator: Optional["Evaluator"] = None,
) -> Tuple[int, bool]:
    """Scan ranked candidates, computing followers and updating ``T``.

    Returns the number of Algorithm-1 invocations and whether the deadline
    fired.  Two skip rules apply (Sections III-B and V-B):

    * a candidate inside a verified anchor's follower set is dominated;
    * a candidate whose bound cannot beat the maintainer's threshold is
      skipped — and since bounds are sorted, for ``t = 1`` the scan stops
      outright (the threshold ``|F(x*)|`` only ever grows), while for
      ``t > 1`` it continues because replacements may lower the threshold.

    With a ``cache``, a candidate whose follower set survived invalidation
    skips Algorithm 1 entirely; ``verifications`` still counts it, because
    the memo-off scan would have evaluated it — the cache changes where
    the set comes from, never whether the scan wanted it.  Fresh sets are
    computed by the ``kernel`` when one is selected, seeded with the filter
    stage's ``rf(x)`` so the reachability DFS is never repeated.

    With an ``evaluator`` (a :class:`repro.parallel.ParallelEvaluator`),
    follower sets are precomputed speculatively on the pool and this scan
    consumes them in the same ranked order, applying the same skip rules —
    sets for skipped candidates are simply discarded, so the anchors chosen
    and the ``verifications`` count are identical to the serial scan's.
    """
    fault_site("engine.verify")
    if evaluator is not None:
        return _parallel_verification_stage(state, scored, maintainer, t,
                                            deadline, evaluator, cache)
    covered: Set[int] = set()
    verifications = 0
    core = state.core
    alpha, beta = state.alpha, state.beta
    for bound, x, order, rf in scored:
        if deadline is not None and time.perf_counter() > deadline:
            return verifications, True
        if x in covered:
            continue
        if bound <= maintainer.skip_threshold():
            if t == 1:
                break
            continue
        side = order.side
        follower_set = (cache.followers_for(side, x)
                        if cache is not None else None)
        if follower_set is None:
            if kernel is not None:
                follower_set = kernel.followers(side, x, alpha, beta,
                                                candidates=rf)
            else:
                follower_set = compute_followers(graph, order, x, core=core,
                                                 candidates=rf)
            if cache is not None:
                cache.store_followers(side, x, follower_set)
        verifications += 1
        covered |= follower_set
        if follower_set:
            maintainer.offer(x, follower_set)
    return verifications, False


def _parallel_verification_stage(
    state: OrderState,
    scored: List[ScoredCandidate],
    maintainer: AnchorSetMaintainer,
    t: int,
    deadline: Optional[float],
    evaluator: "Evaluator",
    cache: Optional[VerificationCache] = None,
) -> Tuple[int, bool]:
    """The verification scan over pool-precomputed follower sets.

    ``verifications`` still counts only the candidates the serial scan
    would have evaluated — the speculative extras the pool computed are
    discarded, not counted — so iteration records match serially exactly.
    Closing the stream on early exit (the ``t = 1`` break) cancels the
    not-yet-dispatched remainder.

    With a ``cache``, only cache *misses* are dispatched to the pool; the
    scan walks the full ranked list, splicing cached sets in where they
    survived invalidation and consuming one streamed set per miss (pulled
    even for skipped candidates, exactly as the memo-off zip would, so the
    stream stays aligned with the ranked order).
    """
    from repro.parallel import EvaluationStopped

    covered: Set[int] = set()
    verifications = 0
    cached_sets: List[Optional[Set[int]]] = []
    items: List[Tuple[str, int]] = []
    for _bound, x, order, _rf in scored:
        follower_set = (cache.followers_for(order.side, x)
                        if cache is not None else None)
        cached_sets.append(follower_set)
        if follower_set is None:
            items.append((order.side, x))
    evaluator.begin_iteration(state, deadline)
    stream = evaluator.evaluate(items)
    try:
        for (bound, x, order, _rf), follower_set in zip(scored, cached_sets):
            if follower_set is None:
                follower_set = next(stream)
                if cache is not None:
                    cache.store_followers(order.side, x, follower_set)
            if deadline is not None and time.perf_counter() > deadline:
                return verifications, True
            if x in covered:
                continue
            if bound <= maintainer.skip_threshold():
                if t == 1:
                    break
                continue
            verifications += 1
            covered |= follower_set
            if follower_set:
                maintainer.offer(x, follower_set)
    except EvaluationStopped:
        # A worker observed the deadline before the parent did: same
        # outcome as the serial per-candidate deadline check.
        return verifications, True
    finally:
        stream.close()
    return verifications, False
