"""Edge-addition reinforcement — Definition 2's second reading.

The paper anchors a vertex by exempting it from its degree constraint,
noting this is equivalent to "setting their degrees to +∞ *or add more
connections to them*".  On a real platform the second reading is often the
actionable one: instead of permanently retaining a user, recommend them a
few more items until they clear the engagement threshold on their own.

This module implements that variant, in the spirit of the k-core
edge-addition literature the paper cites ([14], Zhou et al., IJCAI 2019):

* :func:`edges_to_secure` — the cheapest set of new edges that pulls one
  target vertex into the (α,β)-core *given the current core* (connect the
  deficit to core vertices on the other layer);
* :func:`run_edge_greedy` — a greedy reinforcement loop with an *edge*
  budget: each step secures the vertex with the best
  (followers + 1) / edges-needed ratio, materializes the new edges, and
  recomputes.  Returns the reinforced graph and the vertices gained.

Relationship to vertex anchoring: securing ``x`` with edges is at most as
powerful as anchoring ``x`` (an anchored vertex needs no edges at all), and
``tests/test_edge_anchoring.py`` checks the gained vertex set of an edge
plan is always a subset of the anchored core of its target set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.abcore.decomposition import abcore, validate_degree_constraints
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.mutation import add_edges
from repro.exceptions import InvalidParameterError

__all__ = ["EdgePlan", "EdgeReinforcementResult", "edges_to_secure",
           "run_edge_greedy"]


@dataclass(frozen=True)
class EdgePlan:
    """New edges that secure one target vertex into the (α,β)-core."""

    target: int
    new_edges: Tuple[Tuple[int, int], ...]  # (upper_id, lower_global_id)

    @property
    def cost(self) -> int:
        return len(self.new_edges)


@dataclass
class EdgeReinforcementResult:
    """Outcome of :func:`run_edge_greedy`."""

    graph: BipartiteGraph            # the reinforced graph
    plans: List[EdgePlan] = field(default_factory=list)
    gained: Set[int] = field(default_factory=set)
    base_core_size: int = 0
    final_core_size: int = 0
    elapsed: float = 0.0

    @property
    def edges_used(self) -> int:
        return sum(plan.cost for plan in self.plans)


def edges_to_secure(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    target: int,
    core: Optional[Set[int]] = None,
) -> Optional[EdgePlan]:
    """The cheapest plan connecting ``target`` into the current core.

    A vertex outside the core needs ``threshold - |N(target) ∩ core|`` new
    neighbors inside the core; those neighbors are picked from the opposite
    layer's core vertices (largest-degree first, so popular vertices absorb
    the recommendations).  Returns ``None`` when the core has too few
    opposite-layer vertices to connect to, or when the target is already in
    the core (an empty plan would be returned as zero edges).
    """
    validate_degree_constraints(alpha, beta)
    if core is None:
        core = abcore(graph, alpha, beta)
    if target in core:
        return EdgePlan(target=target, new_edges=())

    threshold = alpha if graph.is_upper(target) else beta
    supporters = sum(1 for w in graph.neighbors(target) if w in core)
    deficit = threshold - supporters
    if deficit <= 0:
        # Enough core neighbors but still outside: impossible for a correct
        # peel, except when the "core" passed in is stale.
        deficit = 1

    if graph.is_upper(target):
        pool = [v for v in core
                if graph.is_lower(v) and not graph.has_edge(target, v)]
        pool.sort(key=lambda v: (-graph.degree(v), v))
        chosen = pool[:deficit]
        if len(chosen) < deficit:
            return None
        return EdgePlan(target=target,
                        new_edges=tuple((target, v) for v in chosen))
    pool = [u for u in core
            if graph.is_upper(u) and not graph.has_edge(u, target)]
    pool.sort(key=lambda u: (-graph.degree(u), u))
    chosen = pool[:deficit]
    if len(chosen) < deficit:
        return None
    return EdgePlan(target=target,
                    new_edges=tuple((u, target) for u in chosen))


def run_edge_greedy(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    edge_budget: int,
    candidate_limit: int = 200,
) -> EdgeReinforcementResult:
    """Greedy edge-budgeted reinforcement.

    Each round scores every candidate (non-core vertex adjacent to the core
    or the shell, capped at ``candidate_limit`` by ascending plan cost) by
    ``(1 + cascade followers) / plan cost`` and materializes the best plan
    that fits the remaining budget.  Stops when no plan fits.

    Securing a vertex with real edges can cascade exactly like anchoring:
    the newly secured vertex supports its old neighbors too.
    """
    validate_degree_constraints(alpha, beta)
    if edge_budget < 0:
        raise InvalidParameterError("edge budget must be >= 0")

    start = time.perf_counter()
    current = graph
    base_core = abcore(graph, alpha, beta)
    core = set(base_core)
    plans: List[EdgePlan] = []
    remaining = edge_budget

    while remaining > 0 and core:
        best: Optional[Tuple[float, EdgePlan, Set[int]]] = None
        candidates = [v for v in current.vertices() if v not in core]
        scored: List[Tuple[int, int]] = []
        for v in candidates:
            threshold = alpha if current.is_upper(v) else beta
            supporters = sum(1 for w in current.neighbors(v) if w in core)
            scored.append((threshold - supporters, v))
        scored.sort()
        for _deficit, v in scored[:candidate_limit]:
            plan = edges_to_secure(current, alpha, beta, v, core)
            if plan is None or plan.cost == 0 or plan.cost > remaining:
                continue
            trial = add_edges(current, list(plan.new_edges))
            new_core = abcore(trial, alpha, beta)
            gained = new_core - core
            score = len(gained) / plan.cost
            if best is None or score > best[0]:
                best = (score, plan, gained)
        if best is None or not best[2]:
            break
        _score, plan, gained = best
        current = add_edges(current, list(plan.new_edges))
        core |= gained
        plans.append(plan)
        remaining -= plan.cost

    final_core = abcore(current, alpha, beta)
    return EdgeReinforcementResult(
        graph=current, plans=plans, gained=final_core - base_core,
        base_core_size=len(base_core), final_core_size=len(final_core),
        elapsed=time.perf_counter() - start)
