"""Cross-iteration verification memoization with affected-region invalidation.

The engine's filter/verification stages recompute, for every candidate and
every iteration: the order-reachable set ``rf(x)``, the bound ``|rf(x)|``,
the follower signature ``sig(x)``, the two-hop domination verdict, and —
for the candidates that reach Algorithm 1 — the follower set ``F(x)``.
Yet Algorithm 4 confines each anchor's effect to its *affected graph*:
outside the repaired regions, both deletion orders are bit-identical from
one iteration to the next.  :class:`VerificationCache` carries all five
quantities across iterations and drops only what the repairs could have
changed, using the per-side dirty regions that
:meth:`repro.core.order_maintenance.OrderState.apply_anchors` reports.

Correctness argument
--------------------

Fix one side and let ``D`` be that side's dirty set after an apply.  The
contract of ``apply_anchors`` is that every position entry of that side's
order and every anchored-core membership outside ``D`` is bit-identical to
its value before the call.  Write ``N(S)`` for the graph neighbors of a
vertex set ``S`` and ``D1 = D ∪ N(D)``, ``D3`` for the threefold dilation
``D ∪ N(D) ∪ N²(D) ∪ N³(D)``.  The invalidation rules, and why each is
sufficient:

``rf(x)`` / bound / ``F(x)`` — *evict iff* ``({x} ∪ rf(x)) ∩ D1 ≠ ∅``.
    Suppose ``({x} ∪ rf(x)) ∩ D1 = ∅``.  Then no vertex of ``{x} ∪ rf(x)``
    is in ``D``, and no *neighbor* of such a vertex is in ``D`` either
    (a vertex with a dirty neighbor lies in ``N(D) ⊆ D1``).  So the
    position entry of every vertex in ``{x} ∪ rf(x) ∪ N({x} ∪ rf(x))`` is
    unchanged.  The order-respecting DFS that defines ``rf(x)`` expands a
    vertex ``v`` by comparing ``pos(w) > pos(v)`` over ``w ∈ N(v)``: by
    induction over its traversal every expansion it performs reads only
    those unchanged entries, so it visits exactly the old ``rf(x)`` and
    accepts exactly the old ``rf(x)`` — nothing new can become reachable,
    because the first new vertex on any order-increasing path from ``x``
    would have to be a neighbor of the old ``{x} ∪ rf(x)`` whose entry
    changed, and no such vertex exists.  Hence ``rf(x)`` and the bound
    ``|rf(x)|`` are unchanged.  Algorithm 1 then peels the candidate set
    ``rf(x)`` counting support over ``{x} ∪ core ∪ rf(x)``: it reads the
    static adjacency, the unchanged candidate set, and the core membership
    of neighbors of candidates — all in ``N({x} ∪ rf(x))``, whose
    memberships are unchanged because membership changes are in ``D``.
    So ``F(x)`` is unchanged too.

    The one-hop dilation is **not** optional: Algorithm 4 renumbers a
    repaired region with fresh positions *above every existing position*,
    so a repaired vertex ``w`` adjacent to the old ``rf(x)`` can become
    order-reachable from ``x`` even though its old position was too low —
    ``rf(x)`` gains ``w`` (and possibly more beyond it) without any vertex
    of the *old* ``{x} ∪ rf(x)`` being dirty.  ``w ∈ D`` puts such entries
    in ``N(D)``, which is exactly what the dilation catches.

``sig(x)`` — *evict iff* ``x ∈ D1``.
    ``sig(x)`` is a function of the position entries of ``{x} ∪ N(x)``.
    If ``x ∉ D1`` then ``x ∉ D`` and no neighbor of ``x`` is in ``D``,
    so all those entries are unchanged.

two-hop survivor verdict — *evict iff* ``x ∈ D3``.
    Algorithm 3 visits candidates in increasing ``(|sig|, id)`` and keeps
    ``x`` iff ``sig(x) ≠ ∅`` and no *unvisited* candidate dominates it.
    Because "unvisited at the time ``x`` is processed" is exactly
    ``(|sig(w)|, w) > (|sig(x)|, x)``, the verdict is a pairwise predicate
    of ``x`` alone: ``x`` survives iff ``sig(x) ≠ ∅`` and no candidate
    ``w ≠ x`` satisfies ``(|sig(w)|, w) > (|sig(x)|, x)``, ``w`` adjacent
    to all of ``sig(x)``, and ``pos(w) < pos(v)`` for every
    ``v ∈ sig(x)`` (Definition 9).  Every datum read lives within three
    hops of ``x``: ``sig(x)`` needs positions of ``N(x)`` (≤ 1 hop); a
    dominator ``w`` is adjacent to a vertex of ``sig(x)`` (≤ 2 hops) and
    contributes its own position and candidacy (position entries at
    ≤ 2 hops); and ``|sig(w)|`` needs positions of ``N(w)`` (≤ 3 hops).
    If ``x ∉ D3`` none of those entries changed.  (Candidacy itself is a
    predicate of a vertex's own position entry, so it is covered.)

r-score table — *reuse iff* ``D = ∅`` for that side.
    ``r_scores`` is a DP over the entire order, so any dirty entry on the
    side invalidates the whole table.  Both sides repair on almost every
    apply, so this cache rarely survives — it exists for ablation
    configurations that pair the r-score bound with order maintenance,
    and costs one dict reference when it misses.

When ``apply_anchors`` reports ``None`` (the ``maintain=False`` full
recompute path — plain FILVER), nothing can be said about what moved and
the cache clears itself entirely; memoization degrades to a correct no-op.

The cache stores **the engine's own sets** (and hands them back); callers
must treat them as frozen.  Everything downstream already does:
``compute_followers``/``FollowerKernel.followers`` only read ``candidates``,
and ``AnchorSetMaintainer._insert`` defensively copies offered follower
sets.  Caches are ephemeral by design — checkpoints never serialize them,
and a resumed campaign rebuilds warmth from its replayed apply calls.

Byte-identity: memoized values are *the same values* the memo-off engine
would recompute (argument above), consumed at the same decision points, so
anchors, follower sets, per-iteration ``verifications`` counts (cache hits
still count — they replace the computation, not the decision), and the
canonical JSON are identical.  ``tests/test_incremental.py`` asserts this
differentially across variants, backends, worker counts, and resume.

Cross-campaign seeding
----------------------

A cache may additionally be constructed around a frozen :class:`SeedTables`
— the epoch-0 tables of the *pristine* (no anchors) state, computed once per
``(graph, α, β)`` by :class:`repro.core.batch.SharedCampaignContext` and
shared read-only by every campaign in a batch.  Soundness reduces to the
single-campaign argument: a seed entry is exactly the value iteration one of
a cold campaign would compute and store (the pristine orders are a pure
function of ``(graph, α, β)``), so serving it is indistinguishable from an
intra-campaign hit on an entry stored one iteration earlier.  Seeded lookups
*promote* the entry into the campaign's private tables, after which the
normal eviction rules above apply; because promotion shares the frozen value
objects, the seed itself must never be mutated — and nothing downstream
mutates cached sets (the frozen-values contract above).  Invalidation
additionally records per-side *tombstones* against the seed (the same D1/D3
rules, applied to the seed's static ``rf`` index and key sets) so an entry
the campaign's dirt has invalidated — promoted or not — can never be served
again.  The full-invalidation path (``dirty is None``) detaches the seed
outright.  Hit/miss counters naturally differ from an unseeded run; none of
them feed decisions, so byte-identity is unaffected.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.bigraph.graph import BipartiteGraph
from repro.core.order_maintenance import DirtyRegions

__all__ = ["SeedTables", "VerificationCache", "VerificationEntry"]

_SIDES = ("upper", "lower")


class SeedTables:
    """Frozen epoch-0 verification tables, shareable across campaigns.

    Holds, per side, the pristine-state ``rf(x)`` sets (bound = ``len``),
    follower signatures, two-hop survivor verdicts, and the r-score table —
    everything iteration one of a cold campaign computes from the pristine
    deletion orders.  Instances are frozen by contract: campaigns promote
    entries out of the seed but never write into it, which is what makes one
    instance safe to share (including across service worker threads).

    ``rf_index`` is the static inverted index ``v → {x : v ∈ {x} ∪ rf(x)}``
    that lets a campaign's invalidation tombstone seed entries with the same
    ``O(|D1|)`` scan it uses for its private entries.
    """

    __slots__ = ("rf", "rf_index", "sigs", "survivors", "r_scores")

    def __init__(self, rf: Dict[str, Dict[int, Set[int]]],
                 sigs: Dict[str, Dict[int, Set[int]]],
                 survivors: Dict[str, Dict[int, bool]],
                 r_scores: Dict[str, Optional[Dict[int, int]]]) -> None:
        self.rf = rf
        self.sigs = sigs
        self.survivors = survivors
        self.r_scores = r_scores
        self.rf_index: Dict[str, Dict[int, Set[int]]] = {}
        for side in _SIDES:
            index: Dict[int, Set[int]] = {}
            for x, rf_set in rf[side].items():
                for v in rf_set:
                    ids = index.get(v)
                    if ids is None:
                        index[v] = {x}
                    else:
                        ids.add(x)
                ids = index.get(x)
                if ids is None:
                    index[x] = {x}
                else:
                    ids.add(x)
            self.rf_index[side] = index

    def entries(self) -> int:
        """Total table entries across both sides (diagnostics only)."""
        total = 0
        for side in _SIDES:
            total += (len(self.rf[side]) + len(self.sigs[side])
                      + len(self.survivors[side]))
            if self.r_scores[side] is not None:
                total += 1
        return total

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-safe encoding (sorted pair lists; sets become lists)."""

        def enc_sets(table: Dict[int, Set[int]]) -> List[List[object]]:
            return [[x, sorted(s)] for x, s in sorted(table.items())]

        return {
            "rf": {side: enc_sets(self.rf[side]) for side in _SIDES},
            "sigs": {side: enc_sets(self.sigs[side]) for side in _SIDES},
            "survivors": {
                side: [[x, bool(v)]
                       for x, v in sorted(self.survivors[side].items())]
                for side in _SIDES},
            "r_scores": {
                side: (sorted(self.r_scores[side].items())
                       if self.r_scores[side] is not None else None)
                for side in _SIDES},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SeedTables":
        """Rebuild from :meth:`to_payload` output (raises on bad shape)."""
        rf = {side: {int(x): set(s) for x, s in payload["rf"][side]}
              for side in _SIDES}
        sigs = {side: {int(x): set(s) for x, s in payload["sigs"][side]}
                for side in _SIDES}
        survivors = {
            side: {int(x): bool(v) for x, v in payload["survivors"][side]}
            for side in _SIDES}
        r_scores: Dict[str, Optional[Dict[int, int]]] = {}
        for side in _SIDES:
            table = payload["r_scores"][side]
            r_scores[side] = (
                {int(x): int(s) for x, s in table} if table is not None
                else None)
        return cls(rf, sigs, survivors, r_scores)


class VerificationEntry:
    """One candidate's cached verification state: ``rf(x)``, bound, ``F(x)``.

    ``followers`` stays ``None`` until the verification stage actually
    evaluates the candidate — a candidate can sit in the filter stage's
    bound cache for many iterations without ever being verified.
    ``epoch`` records the invalidation epoch the entry was stored under
    (diagnostics only; eviction is eager, not epoch-compared).
    """

    __slots__ = ("rf", "bound", "followers", "epoch")

    def __init__(self, rf: Set[int], bound: int, epoch: int) -> None:
        self.rf = rf
        self.bound = bound
        self.followers: Optional[Set[int]] = None
        self.epoch = epoch


class VerificationCache:
    """Memoized verification state for one campaign, one graph.

    Lifecycle per engine iteration::

        entry = cache.rf_entry(side, x)          # filter: bound reuse
        ...
        cached = cache.followers_for(side, x)    # verify: Algorithm-1 reuse
        ...
        dirty = state.apply_anchors(chosen)
        cache.invalidate(dirty)                  # once, right after apply

    All hit/miss/eviction counters are plain attributes, exposed for the
    differential tests and the engine benchmark.
    """

    def __init__(self, graph: BipartiteGraph,
                 seed: Optional[SeedTables] = None) -> None:
        self._row_of = graph.adjacency.__getitem__
        # Frozen cross-campaign seed (module docstring, "Cross-campaign
        # seeding"): consulted on private misses, never written; per-side
        # tombstones block entries the campaign's own dirt has killed.
        self._seed = seed
        self._seed_dead_rf: Dict[str, Set[int]] = {
            side: set() for side in _SIDES}
        self._seed_dead_sigs: Dict[str, Set[int]] = {
            side: set() for side in _SIDES}
        self._seed_dead_survivors: Dict[str, Set[int]] = {
            side: set() for side in _SIDES}
        self._seed_r_valid: Dict[str, bool] = {side: True for side in _SIDES}
        self.seed_hits = 0
        self._entries: Dict[str, Dict[int, VerificationEntry]] = {
            side: {} for side in _SIDES}
        # Inverted index per side: vertex v -> ids of cached candidates x
        # with v ∈ {x} ∪ rf(x).  Makes invalidation O(|D1| + evicted work)
        # instead of a scan over every cached entry.
        self._rf_index: Dict[str, Dict[int, Set[int]]] = {
            side: {} for side in _SIDES}
        self._sigs: Dict[str, Dict[int, Set[int]]] = {
            side: {} for side in _SIDES}
        self._survivors: Dict[str, Dict[int, bool]] = {
            side: {} for side in _SIDES}
        self._r_scores: Dict[str, Optional[Dict[int, int]]] = {
            side: None for side in _SIDES}
        self.epoch = 0
        self.rf_hits = 0
        self.rf_misses = 0
        self.follower_hits = 0
        self.follower_misses = 0
        self.sig_hits = 0
        self.sig_misses = 0
        self.survivor_hits = 0
        self.survivor_misses = 0
        self.r_score_hits = 0
        self.r_score_misses = 0
        self.evictions = 0
        self.full_invalidations = 0

    # ------------------------------------------------------------------
    # rf / bound / followers
    # ------------------------------------------------------------------

    def rf_entry(self, side: str, x: int) -> Optional[VerificationEntry]:
        """The cached ``(rf, bound, followers)`` entry for ``x``, if valid."""
        entry = self._entries[side].get(x)
        if (entry is None and self._seed is not None
                and x not in self._seed_dead_rf[side]):
            rf = self._seed.rf[side].get(x)
            if rf is not None:
                # Promote: the frozen set is shared, the entry is private, so
                # from here on the normal eviction rules govern it.
                entry = self.store_rf(side, x, rf)
                self.seed_hits += 1
        if entry is None:
            self.rf_misses += 1
        else:
            self.rf_hits += 1
        return entry

    def store_rf(self, side: str, x: int, rf: Set[int]) -> VerificationEntry:
        """Record a freshly computed ``rf(x)``; the bound is ``len(rf)``."""
        entries = self._entries[side]
        old = entries.get(x)
        if old is not None:  # pragma: no cover - engine stores once per miss
            self._unindex(side, x, old)
        entry = VerificationEntry(rf, len(rf), self.epoch)
        entries[x] = entry
        index = self._rf_index[side]
        for v in rf:
            ids = index.get(v)
            if ids is None:
                index[v] = {x}
            else:
                ids.add(x)
        ids = index.get(x)
        if ids is None:
            index[x] = {x}
        else:
            ids.add(x)
        return entry

    def followers_for(self, side: str, x: int) -> Optional[Set[int]]:
        """The cached ``F(x)``, or ``None`` when it must be computed."""
        entry = self._entries[side].get(x)
        followers = entry.followers if entry is not None else None
        if followers is None:
            self.follower_misses += 1
        else:
            self.follower_hits += 1
        return followers

    def store_followers(self, side: str, x: int, followers: Set[int]) -> None:
        """Attach a freshly computed ``F(x)`` to ``x``'s entry, if cached."""
        entry = self._entries[side].get(x)
        if entry is not None:
            entry.followers = followers

    # ------------------------------------------------------------------
    # Signatures and two-hop verdicts
    # ------------------------------------------------------------------

    def signature_for(self, side: str, x: int) -> Optional[Set[int]]:
        sig = self._sigs[side].get(x)
        if (sig is None and self._seed is not None
                and x not in self._seed_dead_sigs[side]):
            sig = self._seed.sigs[side].get(x)
            if sig is not None:
                self._sigs[side][x] = sig
                self.seed_hits += 1
        if sig is None:
            self.sig_misses += 1
        else:
            self.sig_hits += 1
        return sig

    def store_signature(self, side: str, x: int, sig: Set[int]) -> None:
        self._sigs[side][x] = sig

    def survivor_verdict(self, side: str, x: int) -> Optional[bool]:
        verdict = self._survivors[side].get(x)
        if (verdict is None and self._seed is not None
                and x not in self._seed_dead_survivors[side]):
            verdict = self._seed.survivors[side].get(x)
            if verdict is not None:
                self._survivors[side][x] = verdict
                self.seed_hits += 1
        if verdict is None:
            self.survivor_misses += 1
        else:
            self.survivor_hits += 1
        return verdict

    def store_survivor(self, side: str, x: int, survived: bool) -> None:
        self._survivors[side][x] = survived

    # ------------------------------------------------------------------
    # r-score tables
    # ------------------------------------------------------------------

    def r_scores_for(self, side: str) -> Optional[Dict[int, int]]:
        table = self._r_scores[side]
        if (table is None and self._seed is not None
                and self._seed_r_valid[side]):
            table = self._seed.r_scores[side]
            if table is not None:
                self._r_scores[side] = table
                self.seed_hits += 1
        if table is None:
            self.r_score_misses += 1
        else:
            self.r_score_hits += 1
        return table

    def store_r_scores(self, side: str, table: Dict[int, int]) -> None:
        self._r_scores[side] = table

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, dirty: DirtyRegions) -> None:
        """Drop everything the just-applied anchors could have changed.

        Must be called exactly once per :meth:`OrderState.apply_anchors`,
        with its return value, before the next filter stage runs.  The
        eviction rules and their sufficiency proofs are in the module
        docstring; ``None`` (full-recompute path) clears the cache.
        """
        self.epoch += 1
        if dirty is None:
            self.clear_entries()
            self.full_invalidations += 1
            return
        for side in _SIDES:
            dirty_seed = dirty[side]
            if not dirty_seed:
                continue
            d1, d3 = self._dilate(dirty_seed)
            self._evict_rf(side, d1)
            self.evictions += _evict_keys(self._sigs[side], d1)
            self.evictions += _evict_keys(self._survivors[side], d3)
            if self._r_scores[side] is not None:
                self._r_scores[side] = None
                self.evictions += 1
            if self._seed is not None:
                # Tombstone seed entries by the same D1/D3 rules, via the
                # seed's static rf index — an entry killed here can never be
                # served (or re-promoted) again.
                index = self._seed.rf_index[side]
                dead = self._seed_dead_rf[side]
                for v in d1:
                    ids = index.get(v)
                    if ids:
                        dead |= ids
                self._seed_dead_sigs[side] |= d1
                self._seed_dead_survivors[side] |= d3
                self._seed_r_valid[side] = False

    def freeze_seed(self) -> SeedTables:
        """Detach this cache's tables as a frozen, shareable seed.

        Intended for a throwaway warm-up cache populated from the pristine
        state (:class:`repro.core.batch.SharedCampaignContext`); the caller
        must not keep using this cache afterwards, since the seed shares its
        value objects.
        """
        return SeedTables(
            rf={side: {x: e.rf for x, e in self._entries[side].items()}
                for side in _SIDES},
            sigs={side: dict(self._sigs[side]) for side in _SIDES},
            survivors={side: dict(self._survivors[side]) for side in _SIDES},
            r_scores={side: self._r_scores[side] for side in _SIDES})

    def clear_entries(self) -> None:
        """Drop all cached state (does not reset counters or the epoch).

        Also detaches any cross-campaign seed: callers clearing the cache
        assert nothing about what moved, and a detached seed is the only
        universally safe answer.
        """
        self._seed = None
        for side in _SIDES:
            self.evictions += (len(self._entries[side])
                               + len(self._sigs[side])
                               + len(self._survivors[side]))
            if self._r_scores[side] is not None:
                self.evictions += 1
            self._entries[side].clear()
            self._rf_index[side].clear()
            self._sigs[side].clear()
            self._survivors[side].clear()
            self._r_scores[side] = None

    # ------------------------------------------------------------------

    def _dilate(self, seed: Set[int]) -> Tuple[Set[int], Set[int]]:
        """``(D1, D3)``: the one- and three-hop dilations of ``seed``.

        Rounds expand frontiers only — ``N(D_k) ⊆ D_k ∪ N(frontier_k)`` —
        so the cost is the volume of the 3-hop neighborhood, not three
        full neighborhood scans of ever-larger sets.
        """
        row_of = self._row_of
        current = set(seed)
        frontier: Iterable[int] = seed
        d1: Set[int] = set()
        for round_no in range(3):
            grown: Set[int] = set()
            add = grown.add
            for v in frontier:
                for w in row_of(v):
                    if w not in current:
                        add(w)
            current |= grown
            if round_no == 0:
                d1 = set(current)
            elif not grown:
                break
            frontier = grown
        return d1, current

    def _evict_rf(self, side: str, d1: Set[int]) -> None:
        index = self._rf_index[side]
        doomed: Set[int] = set()
        for v in d1:
            ids = index.get(v)
            if ids:
                doomed |= ids
        entries = self._entries[side]
        for x in sorted(doomed):
            entry = entries.pop(x)
            self._unindex(side, x, entry)
            self.evictions += 1

    def _unindex(self, side: str, x: int, entry: VerificationEntry) -> None:
        index = self._rf_index[side]
        for v in entry.rf:
            ids = index.get(v)
            if ids is not None:
                ids.discard(x)
                if not ids:
                    del index[v]
        ids = index.get(x)
        if ids is not None:
            ids.discard(x)
            if not ids:
                del index[x]


def _evict_keys(table: Dict[int, object], dead: Set[int]) -> int:
    """Remove ``dead`` keys from ``table``; returns how many were present."""
    if not table:
        return 0
    removed = 0
    if len(dead) <= len(table):
        for v in dead:
            if table.pop(v, None) is not None:
                removed += 1
    else:
        stale: List[int] = [k for k in table if k in dead]
        for k in stale:
            del table[k]
        removed = len(stale)
    return removed
