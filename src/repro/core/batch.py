"""Batched multi-campaign execution over a shared (α, β) substrate.

The service sees *streams* of campaigns against one graph, and most of a
cold start is (α, β)-invariant: the base (α,β)-core, the pristine deletion
orders (plus capped core numbers), the CSR follower-kernel arrays, the
r-score tables, and the first filter pass's signatures / two-hop verdicts /
``rf(x)`` sets are all pure functions of ``(graph, α, β)`` — no campaign
parameter (budgets, method, ``t``, seed, deadline) enters them.
:class:`SharedCampaignContext` computes each of those exactly once and
serves them copy-on-write to every campaign:

* the pristine :class:`~repro.core.order_maintenance.OrderState` is built
  once and *cloned* per campaign (`OrderState.clone_pristine`) — each
  campaign repairs its private clone, so per-iteration dirty regions stay
  campaign-private;
* the epoch-0 verification tables are frozen into a
  :class:`~repro.core.incremental.SeedTables` and consulted read-only by
  each campaign's private :class:`~repro.core.incremental.VerificationCache`
  (promotion + tombstones; see the seeding section of
  :mod:`repro.core.incremental`);
* :class:`~repro.bigraph.kernel.FollowerKernel` instances and parallel
  evaluators (the shared-memory pool of :mod:`repro.parallel`) are leased
  from small free-pools — the kernel reloads per iteration and the
  evaluator re-broadcasts state per iteration, so neither carries campaign
  state across a lease.

Everything campaign-*variant* — anchors, order repairs, dirty regions,
follower sets, checkpoints, budgets, deadlines — lives in per-campaign
objects exactly as in a standalone run, which is why batched results are
byte-identical to running each job alone (asserted differentially in
``tests/test_batch.py`` and gated by ``make bench-batch-smoke``).

:func:`run_batch` is the driver: N campaigns against one context, one order
build plus N incremental campaigns instead of N cold starts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.abcore.decomposition import abcore
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.kernel import FollowerKernel, kernel_for
from repro.bigraph.validation import validate_problem
from repro.core.deletion_order import r_scores, reachable_from
from repro.core.incremental import SeedTables, VerificationCache
from repro.core.order_maintenance import OrderState
from repro.core.result import AnchoredCoreResult
from repro.core.signatures import two_hop_filter_cached
from repro.exceptions import InvalidParameterError

__all__ = ["CampaignSpec", "SharedCampaignContext", "context_key",
           "run_batch"]


def context_key(fingerprint: str, alpha: int, beta: int,
                backend: str) -> Tuple[str, int, int, str]:
    """The identity a shared context is keyed on, as a hashable tuple."""
    return (fingerprint, int(alpha), int(beta), backend)


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign of a batch: everything that may vary across jobs.

    Mirrors the campaign-variant parameters of
    :func:`repro.core.api.reinforce`; the problem instance
    ``(graph, α, β)`` is fixed by the batch's shared context.
    """

    b1: int
    b2: int
    method: str = "filver++"
    t: int = 5
    seed: Optional[int] = None
    time_limit: Optional[float] = None
    workers: int = 1
    memoize: bool = True
    flat_kernel: Optional[bool] = None
    shards: Optional[int] = None
    checkpoint: Optional[str] = None
    resume_from: Optional[str] = None


class SharedCampaignContext:
    """The (α, β)-invariant substrate shared by a batch of campaigns.

    Keyed on ``(graph_fingerprint, α, β, backend)`` (:func:`context_key`,
    exposed as :attr:`key`); every served value is either frozen (base
    core, seed tables), cloned (order state), or leased with no
    cross-campaign state (kernels, evaluators).  All accessors are
    thread-safe — the service's worker threads share one instance — but
    any single leased kernel/evaluator must be used by one campaign at a
    time, which the lease pools guarantee.

    The context never validates budgets: each campaign's own entry point
    does.  It does pin the problem instance — :meth:`check_compatible`
    rejects a campaign run against a different graph *object* or a
    different ``(α, β)``.
    """

    def __init__(self, graph: BipartiteGraph, alpha: int, beta: int) -> None:
        validate_problem(graph, alpha, beta, 0, 0)
        self.graph = graph
        self.alpha = alpha
        self.beta = beta
        self.backend = graph.backend
        self._lock = threading.RLock()
        self._closed = False
        self._fingerprint: Optional[str] = None
        self._base_core: Optional[Set[int]] = None
        self._seed_state: Optional[OrderState] = None
        self._seed_tables: Optional[SeedTables] = None
        self._kernel_pool: List[FollowerKernel] = []
        self._kernel_capable = True
        self._eval_free: Dict[Tuple[int, bool], List[object]] = {}
        self._eval_all: List[object] = []
        # Diagnostics (batch scheduler stats / benchmarks).
        self.state_clones = 0
        self.kernel_leases = 0
        self.kernels_built = 0
        self.evaluator_leases = 0
        self.evaluators_built = 0
        self.seed_restored = False

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """The graph fingerprint (computed lazily — it scans every edge)."""
        with self._lock:
            if self._fingerprint is None:
                from repro.resilience.checkpoint import graph_fingerprint

                self._fingerprint = graph_fingerprint(self.graph)
            return self._fingerprint

    @property
    def key(self) -> Tuple[str, int, int, str]:
        """``context_key(fingerprint, α, β, backend)`` for this context."""
        return context_key(self.fingerprint, self.alpha, self.beta,
                           self.backend)

    def check_compatible(self, graph: BipartiteGraph, alpha: int,
                         beta: int) -> None:
        """Reject a campaign whose problem instance this context cannot serve.

        The graph must be the *same object* the context was built around —
        an identity check, because fingerprinting per campaign would cost
        more than the sharing saves.
        """
        if graph is not self.graph or alpha != self.alpha \
                or beta != self.beta:
            raise InvalidParameterError(
                "campaign (alpha=%d, beta=%d) does not match shared context "
                "(alpha=%d, beta=%d%s)"
                % (alpha, beta, self.alpha, self.beta,
                   "" if graph is self.graph else ", different graph"))

    # ------------------------------------------------------------------
    # Shared (α, β)-invariant values
    # ------------------------------------------------------------------

    def base_core(self) -> Set[int]:
        """The base (α,β)-core vertex set, computed once; treat as frozen."""
        with self._lock:
            if self._base_core is None:
                self._base_core = abcore(self.graph, self.alpha, self.beta)
            return self._base_core

    def order_state(self, maintain: bool = True) -> OrderState:
        """A private pristine :class:`OrderState` clone for one campaign."""
        with self._lock:
            state = self._pristine_state()
            self.state_clones += 1
        return state.clone_pristine(maintain=maintain)

    def seed_tables(self) -> SeedTables:
        """The frozen epoch-0 verification tables, warmed on first use.

        Warm-up runs the pristine filter pass once — two-hop signatures and
        survivor verdicts over each side's candidates, ``rf(x)`` for every
        survivor, and both r-score tables — into a throwaway
        :class:`VerificationCache`, then freezes it.  Every stored value is
        exactly what iteration one of a cold campaign would compute, which
        is the whole soundness story (see :mod:`repro.core.incremental`).
        """
        with self._lock:
            if self._seed_tables is None:
                self._seed_tables = self._warm_seed_tables()
            return self._seed_tables

    def _pristine_state(self) -> OrderState:
        # Callers hold the lock.  maintain=True so the seed can serve both
        # maintain settings (a maintain=False clone just drops the numbers).
        if self._seed_state is None:
            self._seed_state = OrderState(self.graph, self.alpha, self.beta,
                                          maintain=True)
        return self._seed_state

    def _warm_seed_tables(self) -> SeedTables:
        state = self._pristine_state()
        scratch = VerificationCache(self.graph)
        kernel = self.acquire_kernel()
        try:
            if kernel is not None:
                kernel.begin_iteration(state.upper.position,
                                       state.lower.position, state.core)
            for order in (state.upper, state.lower):
                side = order.side
                candidates = order.candidates(self.graph)
                if candidates:
                    survivors, _sigs = two_hop_filter_cached(
                        self.graph, order, candidates, scratch)
                    for x in survivors:
                        if kernel is not None:
                            rf = kernel.reachable(side, x)
                        else:
                            rf = reachable_from(self.graph, order, x)
                        scratch.store_rf(side, x, rf)
                scratch.store_r_scores(side, r_scores(self.graph, order))
        finally:
            self.release_kernel(kernel)
        return scratch.freeze_seed()

    # ------------------------------------------------------------------
    # Leases: follower kernels and parallel evaluators
    # ------------------------------------------------------------------

    def acquire_kernel(self) -> Optional[FollowerKernel]:
        """Lease a follower kernel (``None`` on non-CSR backends).

        The kernel reloads its position/core buffers in
        ``begin_iteration``, so a returned lease carries no campaign state.
        """
        with self._lock:
            if self._kernel_pool:
                self.kernel_leases += 1
                return self._kernel_pool.pop()
            if not self._kernel_capable:
                return None
        kernel = kernel_for(self.graph)
        with self._lock:
            if kernel is None:
                self._kernel_capable = False
            else:
                self.kernel_leases += 1
                self.kernels_built += 1
        return kernel

    def release_kernel(self, kernel: Optional[FollowerKernel]) -> None:
        """Return a leased kernel to the pool (accepts ``None``)."""
        if kernel is None:
            return
        with self._lock:
            if self._closed:
                kernel.release()
            else:
                self._kernel_pool.append(kernel)

    def acquire_evaluator(self, workers: int,
                          use_flat_kernel: bool) -> Optional[object]:
        """Lease a parallel evaluator over the shared-memory graph pool.

        ``None`` when ``workers <= 1`` or the pool cannot be created (the
        campaign degrades to the serial path exactly as standalone runs
        do).  Evaluators re-broadcast the campaign's state every iteration
        and drain all in-flight work before each reply stream ends, so a
        returned lease carries no campaign state.
        """
        if workers <= 1:
            return None
        key = (workers, bool(use_flat_kernel))
        with self._lock:
            pool = self._eval_free.get(key)
            if pool:
                self.evaluator_leases += 1
                return pool.pop()
        from repro.parallel import create_evaluator

        evaluator = create_evaluator(self.graph, workers,
                                     use_flat_kernel=use_flat_kernel)
        if evaluator is not None:
            with self._lock:
                self._eval_all.append(evaluator)
                self.evaluator_leases += 1
                self.evaluators_built += 1
        return evaluator

    def release_evaluator(self, workers: int, use_flat_kernel: bool,
                          evaluator: Optional[object]) -> None:
        """Return a leased evaluator to the pool (accepts ``None``)."""
        if evaluator is None:
            return
        key = (workers, bool(use_flat_kernel))
        with self._lock:
            if self._closed:
                evaluator.shutdown()
            else:
                self._eval_free.setdefault(key, []).append(evaluator)

    # ------------------------------------------------------------------
    # Persistence (the service's on-disk tier)
    # ------------------------------------------------------------------

    def seed_payload(self) -> Optional[Dict[str, Any]]:
        """A JSON-safe envelope of the warm seed, or ``None`` if cold."""
        with self._lock:
            if self._seed_tables is None:
                return None
            return {"alpha": self.alpha, "beta": self.beta,
                    "backend": self.backend,
                    "tables": self._seed_tables.to_payload()}

    def install_seed_payload(self, payload: Dict[str, Any]) -> bool:
        """Adopt a persisted seed (from :meth:`seed_payload`).

        Returns ``False`` — leaving the context cold — when the payload is
        for a different ``(α, β)`` or a seed is already warm; raises on a
        malformed payload (callers degrade to cold).
        """
        if payload.get("alpha") != self.alpha \
                or payload.get("beta") != self.beta:
            return False
        tables = SeedTables.from_payload(payload["tables"])
        with self._lock:
            if self._seed_tables is not None:
                return False
            self._seed_tables = tables
            self.seed_restored = True
        return True

    # ------------------------------------------------------------------
    # Lifecycle / diagnostics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Sharing counters, for the service's stats and the benchmarks."""
        with self._lock:
            return {
                "alpha": self.alpha,
                "beta": self.beta,
                "backend": self.backend,
                "warm": self._seed_tables is not None,
                "seed_entries": (self._seed_tables.entries()
                                 if self._seed_tables is not None else 0),
                "seed_restored": self.seed_restored,
                "state_clones": self.state_clones,
                "kernel_leases": self.kernel_leases,
                "kernels_built": self.kernels_built,
                "evaluator_leases": self.evaluator_leases,
                "evaluators_built": self.evaluators_built,
            }

    def close(self) -> None:
        """Release pooled kernels and shut pooled evaluators down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            kernels, self._kernel_pool = self._kernel_pool, []
            evaluators, self._eval_free = self._eval_free, {}
            self._eval_all = []
        for kernel in kernels:
            kernel.release()
        for pool in evaluators.values():
            for evaluator in pool:
                evaluator.shutdown()

    def __enter__(self) -> "SharedCampaignContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def run_batch(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    specs: Sequence[CampaignSpec],
    context: Optional[SharedCampaignContext] = None,
) -> List[AnchoredCoreResult]:
    """Execute ``specs`` as one batch against a shared (α, β) context.

    Campaigns run sequentially in the order given, each against its own
    private state cloned/seeded from the context, so every result is
    byte-identical to running that spec alone via
    :func:`repro.core.api.reinforce`.  Engine-family methods share the
    substrate; baseline methods and sharded campaigns run exactly as
    standalone (the context has nothing their paths consume), so mixed
    batches are fine.

    Passing an existing ``context`` lets callers keep it warm across
    batches (the service does); otherwise one is created and closed here.
    """
    from repro.core.api import reinforce

    owns = context is None
    ctx = SharedCampaignContext(graph, alpha, beta) if owns else context
    assert ctx is not None
    try:
        results: List[AnchoredCoreResult] = []
        for spec in specs:
            results.append(reinforce(
                graph, alpha, beta, spec.b1, spec.b2, method=spec.method,
                t=spec.t, seed=spec.seed, time_limit=spec.time_limit,
                checkpoint=spec.checkpoint, resume_from=spec.resume_from,
                workers=spec.workers, memoize=spec.memoize,
                flat_kernel=spec.flat_kernel, shards=spec.shards,
                context=ctx))
        return results
    finally:
        if owns:
            ctx.close()
