"""Follower signatures and two-hop domination filtering (Section IV-A).

The follower signature ``sig(x)`` — the neighbors of ``x`` that are
order-reachable from it — is the "starting point" of Algorithm 1's local
peel.  Lemma 2 shows that ``sig(x1) ⊆ sig(x2)`` implies ``F(x1) ⊆ F(x2)``, so
an anchor whose signature is contained in another same-layer anchor's
signature can never be the best choice and is pruned before verification.

Any dominator of ``x`` is an *order-obeying two-hop neighbor* of ``x``
(Definition 9): it must reach every ``v ∈ sig(x)`` directly, i.e. lie in
``∩_{v ∈ sig(x)} N(v)`` with a position below every such ``v``.  Algorithm 3
therefore intersects neighbor lists, cheapest-first, visiting anchors in
non-decreasing signature size so each anchor only needs to be checked against
*unvisited* (≥-sized) potential dominators — which also resolves
equal-signature ties by keeping exactly one representative (Lemma 3).
"""

from __future__ import annotations

from math import log2
from typing import TYPE_CHECKING, AbstractSet, Dict, Iterable, List, Set, Tuple

from repro.bigraph.graph import BipartiteGraph
from repro.core.deletion_order import DeletionOrder, signature

if TYPE_CHECKING:
    from repro.core.incremental import VerificationCache

__all__ = ["two_hop_filter", "two_hop_filter_cached", "signatures_of"]

#: Sentinel for :func:`_dominator_pool` callers that want the raw
#: order-obeying two-hop pool with no already-visited exclusion.
_NO_VISITED: AbstractSet[int] = frozenset()


def signatures_of(
    graph: BipartiteGraph,
    order: DeletionOrder,
    candidates: Iterable[int],
) -> Dict[int, Set[int]]:
    """Follower signature for each candidate anchor."""
    return {x: signature(graph, order, x) for x in candidates}


def two_hop_filter(
    graph: BipartiteGraph,
    order: DeletionOrder,
    candidates: Iterable[int],
) -> Tuple[List[int], Dict[int, Set[int]]]:
    """Drop candidates whose follower signatures are dominated (Algorithm 3).

    Parameters
    ----------
    candidates:
        Same-layer candidate anchors, all present in ``order.position``.

    Returns
    -------
    (survivors, signatures):
        Candidates that are not dominated by any other candidate, and the
        signature table (for survivors and discarded alike, since the caller
        may want it for diagnostics).  Candidates with empty signatures are
        unpromising and never survive.
    """
    sigs = signatures_of(graph, order, candidates)
    candidate_set = set(sigs)

    # Visit in non-decreasing |sig| (Lemma 3); ties broken by id so that
    # equal-signature groups deterministically keep their largest id (the
    # last one visited).
    ordered = sorted(candidate_set, key=lambda x: (len(sigs[x]), x))

    survivors: List[int] = []
    visited: Set[int] = set()
    for x in ordered:
        visited.add(x)
        sig_x = sigs[x]
        if not sig_x:
            continue  # empty signature -> no followers -> unpromising
        dominators = _dominator_pool(graph, order, x, sig_x,
                                     candidate_set, visited)
        if not dominators:
            survivors.append(x)
    return survivors, sigs


def two_hop_filter_cached(
    graph: BipartiteGraph,
    order: DeletionOrder,
    candidates: Iterable[int],
    cache: "VerificationCache",
) -> Tuple[List[int], Dict[int, Set[int]]]:
    """:func:`two_hop_filter` with per-candidate memoization.

    Produces the identical ``(survivors, signatures)`` pair while reusing
    two things from ``cache``: follower signatures (valid until the order
    changes within one hop of the vertex) and per-candidate *survivor
    verdicts* (valid until it changes within three hops — see
    :mod:`repro.core.incremental` for both proofs).

    Caching the verdict per candidate is sound because Algorithm 3's
    "visited" bookkeeping is secretly pairwise: when ``x`` is processed,
    the unvisited candidates are exactly those with
    ``(|sig(w)|, w) > (|sig(x)|, x)``.  So ``x`` survives iff
    ``sig(x) ≠ ∅`` and no candidate ``w`` with a strictly larger
    ``(|sig|, id)`` key sits in ``x``'s order-obeying two-hop pool — a
    predicate of ``x`` alone, independent of the order candidates are
    visited in.  This function evaluates that predicate directly for
    cache misses (full pool first, key filter after; the pool is tiny
    once the neighbor-list intersection has run) and replays cached
    verdicts for hits.
    """
    side = order.side
    sigs: Dict[int, Set[int]] = {}
    for x in candidates:
        sig = cache.signature_for(side, x)
        if sig is None:
            sig = signature(graph, order, x)
            cache.store_signature(side, x, sig)
        sigs[x] = sig
    candidate_set = set(sigs)

    ordered = sorted(candidate_set, key=lambda x: (len(sigs[x]), x))
    survivors: List[int] = []
    for x in ordered:
        verdict = cache.survivor_verdict(side, x)
        if verdict is None:
            sig_x = sigs[x]
            if not sig_x:
                verdict = False
            else:
                key = (len(sig_x), x)
                pool = _dominator_pool(graph, order, x, sig_x,
                                       candidate_set, _NO_VISITED)
                # Order-free: an existence test over the pool.
                verdict = not any(
                    (len(sigs[w]), w) > key for w in pool)
            cache.store_survivor(side, x, verdict)
        if verdict:
            survivors.append(x)
    return survivors, sigs


def _dominator_pool(
    graph: BipartiteGraph,
    order: DeletionOrder,
    x: int,
    sig_x: Set[int],
    candidate_set: Set[int],
    visited: AbstractSet[int],
) -> Set[int]:
    """Unvisited candidates whose signature covers ``sig_x`` (may be empty).

    Implements Algorithm 3 Lines 4–11: start from the neighbor list of the
    smallest-degree signature vertex and intersect with the remaining
    signature vertices' neighbor lists, choosing per vertex between a linear
    scan (``O(deg(v))``) and membership probing (``O(|D| log deg(v))`` in the
    paper; hash probing ``O(|D|)`` here) — whichever is estimated cheaper.
    """
    position = order.position
    # Hoisted accessors: row_of returns a list (list backend) or a memoryview
    # slice (CSR backend); both support iteration and membership probes.
    row_of = graph.adjacency.__getitem__
    degree = graph.degree
    has_edge = graph.has_edge

    by_degree = sorted(sig_x, key=degree)
    v1 = by_degree[0]
    p_v1 = position[v1]
    pool: Set[int] = set()
    for w in row_of(v1):
        if w == x or w in visited or w not in candidate_set:
            continue
        if position[w] < p_v1:
            pool.add(w)
    for v in by_degree[1:]:
        if not pool:
            return pool
        p_v = position[v]
        deg_v = degree(v)
        if len(pool) * max(1.0, log2(deg_v)) < deg_v:
            # Probe each pool member against N(v) (binary-search flavor; the
            # adjacency rows are sorted so has_edge() bisects).
            # Order-free: filters a set into a set, no tie-breaking involved.
            pool = {w for w in pool  # repro: ignore[determinism]
                    if position[w] < p_v and has_edge(w, v)}
        else:
            neighbors_ok = {w for w in row_of(v)
                            if w in pool and position[w] < p_v}
            pool = neighbors_ok
    return pool
