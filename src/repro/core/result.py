"""Result types shared by every anchored (α,β)-core algorithm.

All algorithms — ``Exact``, ``Naive``, the baselines, and the FILVER family —
return an :class:`AnchoredCoreResult` so the experiment harness can compare
them uniformly.  Per-iteration :class:`IterationRecord` entries expose the
internal counters (candidate-pool sizes, verification counts) that the
paper's filter-stage claims are about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

__all__ = ["IterationRecord", "AnchoredCoreResult"]


@dataclass
class IterationRecord:
    """Bookkeeping for one greedy iteration.

    Attributes
    ----------
    anchors:
        The anchors placed in this iteration (one for FILVER/FILVER+, up to
        ``t`` for FILVER++).
    marginal_followers:
        How many new followers this iteration's anchors brought in, including
        cumulative effects among them.
    candidates_total:
        Size of the candidate pool before any filtering.
    candidates_after_filter:
        Pool size after the filter stage (r-score pruning and, for FILVER+
        and FILVER++, two-hop domination filtering).
    verifications:
        Number of follower-set computations performed (Algorithm 1 calls for
        the FILVER family; global peels for Naive).
    elapsed:
        Wall-clock seconds spent in this iteration.
    """

    anchors: List[int]
    marginal_followers: int
    candidates_total: int
    candidates_after_filter: int
    verifications: int
    elapsed: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dump, shared by the export layer and checkpoints."""
        return {
            "anchors": list(self.anchors),
            "marginal_followers": self.marginal_followers,
            "candidates_total": self.candidates_total,
            "candidates_after_filter": self.candidates_after_filter,
            "verifications": self.verifications,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "IterationRecord":
        """Inverse of :meth:`to_dict` (used when resuming a checkpoint)."""
        return cls(
            anchors=[int(a) for a in data["anchors"]],  # type: ignore[union-attr]
            marginal_followers=int(data["marginal_followers"]),  # type: ignore[arg-type]
            candidates_total=int(data["candidates_total"]),  # type: ignore[arg-type]
            candidates_after_filter=int(data["candidates_after_filter"]),  # type: ignore[arg-type]
            verifications=int(data["verifications"]),  # type: ignore[arg-type]
            elapsed=float(data["elapsed"]),  # type: ignore[arg-type]
        )


@dataclass
class AnchoredCoreResult:
    """Outcome of one reinforcement run.

    ``followers`` is measured against the *original* graph, exactly as in
    Definition 3: ``F(A) = C_{α,β}(G_A) \\ (C_{α,β}(G) ∪ A)``.
    """

    algorithm: str
    alpha: int
    beta: int
    b1: int
    b2: int
    anchors: List[int]
    followers: Set[int]
    base_core_size: int
    final_core_size: int
    elapsed: float
    iterations: List[IterationRecord] = field(default_factory=list)
    timed_out: bool = False
    #: ``True`` when the campaign stopped early but gracefully — an observer
    #: raised :class:`repro.exceptions.AbortCampaign`, or a
    #: ``KeyboardInterrupt``/``MemoryError`` was caught at an iteration
    #: boundary.  The anchors/followers are the verified best-so-far.
    interrupted: bool = False

    @property
    def n_followers(self) -> int:
        """``|F(A)|`` — the objective value of the problem."""
        return len(self.followers)

    @property
    def n_anchors(self) -> int:
        """How many anchors were actually placed (≤ ``b1 + b2``)."""
        return len(self.anchors)

    @property
    def total_verifications(self) -> int:
        """Total follower-set computations across all iterations."""
        return sum(record.verifications for record in self.iterations)

    def upper_anchors(self, n_upper: int) -> List[int]:
        """The placed anchors that belong to the upper layer."""
        return [a for a in self.anchors if a < n_upper]

    def lower_anchors(self, n_upper: int) -> List[int]:
        """The placed anchors that belong to the lower layer."""
        return [a for a in self.anchors if a >= n_upper]

    def cumulative_follower_counts(self) -> List[int]:
        """Running follower totals after each iteration (Fig. 10 series)."""
        totals: List[int] = []
        running = 0
        for record in self.iterations:
            running += record.marginal_followers
            totals.append(running)
        return totals

    def summary(self) -> str:
        """One-line human-readable summary used by examples and the CLI."""
        flags = ""
        if self.timed_out:
            flags += ", TIMED OUT"
        if self.interrupted:
            flags += ", INTERRUPTED"
        return ("%s: %d anchors -> %d followers "
                "(core %d -> %d, %.3fs%s)" % (
                    self.algorithm, self.n_anchors, self.n_followers,
                    self.base_core_size, self.final_core_size, self.elapsed,
                    flags))
