"""Local follower computation for a single anchor (Algorithm 1).

Instead of re-peeling the whole graph per candidate anchor (what ``Naive``
does), the verification stage only examines the order-reachable set
``rf(x)``, which by Lemma 1 contains every follower of ``x``.  The candidate
set is then peeled locally: a candidate survives while its support — counted
over surviving candidates, the current anchored core, and the anchor ``x``
itself — meets its layer's degree constraint.  Survivors are *exactly*
``F(x)``:

* soundness: survivors plus the core plus ``x`` satisfy all constraints with
  ``x`` exempt, so by maximality of the anchored core they are followers;
* completeness: every follower lies in ``rf(x)`` and is supported within
  ``F(x) ∪ C ∪ {x}``, so the local peel never removes it.

``tests/test_followers.py`` checks this equivalence against the global
recomputation on randomized graphs.

This module is the *reference* implementation: dict/set based, readable,
backend-agnostic.  Two layers reuse or replace it without changing a
single returned set:

* :class:`repro.bigraph.kernel.FollowerKernel` re-implements the same DFS
  and local peel over flat epoch-stamped arrays for CSR-backed graphs —
  set-identical, selected automatically by the engine;
* :class:`repro.core.incremental.VerificationCache` carries the returned
  follower sets across engine iterations, invalidated by the affected
  regions order maintenance reports (see ``docs/PERF.md``).

Both callers rely on documented properties of this function: it never
mutates ``candidates`` (the cache shares its stored ``rf(x)`` sets with
call sites), and its result depends only on ``(adjacency, position, core,
x)`` — the exact state the cache's dirty-region rule tracks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.bigraph.graph import BipartiteGraph
from repro.core.deletion_order import DeletionOrder

__all__ = ["compute_followers", "follower_count"]


def compute_followers(
    graph: BipartiteGraph,
    order: DeletionOrder,
    x: int,
    core: Optional[Set[int]] = None,
    candidates: Optional[Set[int]] = None,
) -> Set[int]:
    """Followers of anchor ``x`` under the deletion order ``order``.

    Parameters
    ----------
    graph:
        The input bipartite graph (never mutated).
    order:
        The deletion order for ``x``'s layer (``O_U`` for an upper anchor,
        ``O_L`` for a lower one), computed on the current anchored graph.
    x:
        The candidate anchor; must be present in ``order.position``.
    core:
        The current anchored (α,β)-core vertex set; defaults to
        ``order.core``.  Vertices in it support their neighbors and never
        peel.
    candidates:
        Pre-computed ``rf(x)`` if the caller already has it (the FILVER+
        filter stage computes ``|rf(x)|`` anyway); otherwise it is derived
        here.
    """
    if core is None:
        core = order.core
    position = order.position
    adjacency = graph.adjacency
    n_upper = graph.n_upper

    if candidates is None:
        candidates = _collect_reachable(adjacency, position, x)
    if not candidates:
        return set()

    # The thresholds come from the shell construction: every candidate is a
    # potential follower, i.e. a vertex of the relaxed core, and must meet its
    # own layer's (α,β) constraint to survive.  We recover α and β from the
    # order rather than passing them, keeping call sites small.
    alpha, beta = order.alpha, order.beta

    support: Dict[int, int] = {}
    row_of = adjacency.__getitem__  # hoisted: works for list and CSR rows
    for u in candidates:
        count = 0
        for w in row_of(u):
            if w == x or w in core or w in candidates:
                count += 1
        support[u] = count

    dead: List[int] = []
    alive: Set[int] = set(candidates)
    # Sorted so the worklist is seeded in vertex order: the surviving set
    # is order-free (peeling is confluent), but a deterministic queue keeps
    # traces and instrumentation reproducible.
    for u in sorted(candidates):  # hot-loop
        threshold = alpha if u < n_upper else beta
        if support[u] < threshold:
            dead.append(u)
            alive.discard(u)
    head = 0
    push = dead.append
    drop = alive.discard
    while head < len(dead):  # hot-loop
        u = dead[head]
        head += 1
        for w in row_of(u):
            if w not in alive:
                continue
            support[w] -= 1
            threshold = alpha if w < n_upper else beta
            if support[w] < threshold:
                drop(w)
                push(w)
    return alive


def follower_count(
    graph: BipartiteGraph,
    order: DeletionOrder,
    x: int,
    core: Optional[Set[int]] = None,
) -> int:
    """``|F(x)|`` without materializing the follower set for the caller."""
    return len(compute_followers(graph, order, x, core))


def _collect_reachable(adjacency, position: Dict[int, int], x: int) -> Set[int]:
    """Inline order-respecting DFS (mirrors ``deletion_order.reachable_from``).

    Duplicated here (rather than imported) because this is the hottest loop
    of the verification stage and the local version avoids attribute lookups.
    """
    px = position[x]
    reached: Set[int] = set()
    stack = [(x, px)]
    pop = stack.pop
    push = stack.append
    get = position.get
    mark = reached.add
    row_of = adjacency.__getitem__
    while stack:  # hot-loop
        v, pv = pop()
        for w in row_of(v):
            pw = get(w)
            if pw is None or pw <= pv or w in reached:
                continue
            mark(w)
            push((w, pw))
    return reached
