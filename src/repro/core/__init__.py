"""The paper's contribution: the anchored (α,β)-core algorithm family."""

from repro.core.anchor_set import AnchorSetMaintainer
from repro.core.api import METHODS, reinforce
from repro.core.batch import (
    CampaignSpec,
    SharedCampaignContext,
    context_key,
    run_batch,
)
from repro.core.budget_min import (
    minimize_anchors_for_growth,
    minimize_anchors_for_targets,
)
from repro.core.baselines import run_degree_greedy, run_random, run_top_degree
from repro.core.collapse import (
    CollapseResult,
    collapse_size,
    critical_edges,
    critical_vertices,
)
from repro.core.deletion_order import (
    DeletionOrder,
    compute_order,
    compute_orders,
    r_scores,
    reachable_from,
    signature,
)
from repro.core.edge_anchoring import (
    EdgePlan,
    EdgeReinforcementResult,
    edges_to_secure,
    run_edge_greedy,
)
from repro.core.engine import EngineOptions, run_engine
from repro.core.exact import run_exact
from repro.core.filver import run_filver
from repro.core.filver_plus import run_filver_plus
from repro.core.filver_plus_plus import run_filver_plus_plus
from repro.core.followers import compute_followers, follower_count
from repro.core.incremental import (
    SeedTables,
    VerificationCache,
    VerificationEntry,
)
from repro.core.naive import run_naive
from repro.core.order_maintenance import OrderState
from repro.core.reduction import (
    MaxCoverageInstance,
    ReducedInstance,
    reduce_max_coverage,
    solve_max_coverage_exact,
)
from repro.core.result import AnchoredCoreResult, IterationRecord
from repro.core.sharded import CampaignShard, plan_shards, run_sharded_engine
from repro.core.signatures import two_hop_filter, two_hop_filter_cached
from repro.core.verify import VerificationReport, verify_result

__all__ = [
    "METHODS",
    "AnchorSetMaintainer",
    "AnchoredCoreResult",
    "CampaignShard",
    "CampaignSpec",
    "CollapseResult",
    "EdgePlan",
    "EdgeReinforcementResult",
    "DeletionOrder",
    "EngineOptions",
    "IterationRecord",
    "MaxCoverageInstance",
    "OrderState",
    "ReducedInstance",
    "SeedTables",
    "SharedCampaignContext",
    "VerificationCache",
    "VerificationEntry",
    "collapse_size",
    "compute_followers",
    "critical_edges",
    "critical_vertices",
    "edges_to_secure",
    "minimize_anchors_for_growth",
    "minimize_anchors_for_targets",
    "compute_order",
    "compute_orders",
    "context_key",
    "follower_count",
    "run_batch",
    "plan_shards",
    "r_scores",
    "reachable_from",
    "reduce_max_coverage",
    "reinforce",
    "run_degree_greedy",
    "run_edge_greedy",
    "run_engine",
    "run_exact",
    "run_filver",
    "run_filver_plus",
    "run_filver_plus_plus",
    "run_naive",
    "run_random",
    "run_sharded_engine",
    "run_top_degree",
    "signature",
    "solve_max_coverage_exact",
    "two_hop_filter",
    "two_hop_filter_cached",
    "VerificationReport",
    "verify_result",
]
