"""Component-sharded campaigns with a byte-identical global merge.

Followers never cross connected components (Lemma 1: every follower of an
anchor is order-reachable from it, and reachability walks edges), so the
greedy filter–verification loop factorizes: each component can maintain its
own deletion orders, verification cache, and ranked candidate list, and the
global iteration only needs to merge per-shard rankings and route the
chosen anchors back to their shards.  This module implements that substrate
on top of the unsharded engine's stages:

* :func:`plan_shards` groups components into ``shards`` balanced groups;
* :class:`CampaignShard` owns one group's local state — an
  :class:`~repro.core.order_maintenance.OrderState` and
  :class:`~repro.core.incremental.VerificationCache` over the
  component-local subgraph — plus its ranked-candidate memo;
* :func:`run_sharded_engine` runs the global greedy loop, merging shard
  rankings with :func:`heapq.merge` and replaying the serial engine's exact
  decision sequence over the merged stream.

Why the merge is byte-identical (``docs/PERF.md`` carries the full
argument): local ids are assigned monotonically (ascending global order,
uppers first — :class:`~repro.bigraph.components.SubgraphView`), so every
id-ordered tie-break inside a shard resolves exactly as it would globally;
each shard's ranked list is sorted by ``(-bound, local id)`` which is
therefore also ``(-bound, global id)`` order, and a k-way merge under that
key reproduces the serial engine's globally sorted candidate list element
for element.  Candidate ``x`` ids are unique, so the sort key never ties
deeper.  The verification scan, the anchor-set maintainer, the fallback
rule, budget accounting, and the ``engine.filter`` / ``engine.verify``
fault cadence all run once per *global* iteration, exactly as unsharded.

What sharding buys: after an iteration anchors only components in the
winning shards, so every other shard's ranked list, cache, and deletion
orders are reused untouched next iteration — the serial engine re-filters
the whole graph.  Shards also bound peak memory (one component's working
set at a time) and give the parallel evaluator (:mod:`repro.parallel`)
shard-granular work units.
"""

from __future__ import annotations

import heapq
import time
import warnings
from dataclasses import asdict
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph.components import ComponentDecomposition, SubgraphView
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.kernel import FollowerKernel, kernel_for
from repro.bigraph.validation import validate_problem
from repro.core.anchor_set import AnchorSetMaintainer
from repro.core.engine import EngineOptions, ProgressCallback, _filter_stage
from repro.core.followers import compute_followers
from repro.core.incremental import VerificationCache
from repro.core.order_maintenance import OrderState
from repro.core.result import AnchoredCoreResult, IterationRecord
from repro.exceptions import AbortCampaign, CheckpointError, InvalidParameterError
from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    graph_fingerprint,
    load_checkpoint,
)
from repro.resilience.faults import active_plan, fault_site
from repro.resilience.signals import TerminationFlag
from repro.resilience.sharded import (
    ShardedCampaignCheckpoint,
    load_sharded_checkpoint,
    shard_checkpoint_path,
)

if TYPE_CHECKING:
    import os

    from repro.parallel.shards import ShardedEvaluator

__all__ = ["CampaignShard", "plan_shards", "run_sharded_engine"]

#: One merged ranked candidate:
#: ``((-bound, global_x), shard, local_x, order, rf_local)``.  The leading
#: pair is the serial engine's sort key, pre-negated so plain tuple
#: comparison orders candidates without a key function (``global_x`` is
#: unique, so the shard objects behind it are never compared); the rest
#: lets the verification scan evaluate the candidate inside its shard.
MergedCandidate = Tuple[Tuple[int, int], "CampaignShard", int, object,
                        Optional[Set[int]]]

#: A sharded-checkpoint source: envelope path or loaded envelope.
ShardedCheckpointSource = Union[
    str, "os.PathLike[str]", ShardedCampaignCheckpoint]


def plan_shards(sizes: Sequence[Tuple[int, int, int]],
                shards: int) -> List[Tuple[int, ...]]:
    """Group components into at most ``shards`` balanced groups.

    Greedy longest-processing-time assignment on edge counts: components in
    decreasing ``n_edges`` order (ties by component id) each go to the
    currently lightest group (ties by group index).  Deterministic by
    construction, and — like every planning choice here — irrelevant to
    results: grouping affects locality and schedule only, never values.

    Returns each group's component ids sorted ascending; groups are ordered
    by their first component id so shard numbering is itself canonical.
    """
    if shards < 1:
        raise InvalidParameterError("shards must be >= 1, got %d" % shards)
    n_components = len(sizes)
    n_groups = min(shards, n_components)
    if n_groups == 0:
        return []
    order = sorted(range(n_components),
                   key=lambda c: (-sizes[c][2], c))
    loads = [(0, g) for g in range(n_groups)]
    heapq.heapify(loads)
    groups: List[List[int]] = [[] for _ in range(n_groups)]
    for c in order:
        load, g = heapq.heappop(loads)
        groups[g].append(c)
        heapq.heappush(loads, (load + sizes[c][2], g))
    members = [tuple(sorted(group)) for group in groups if group]
    members.sort(key=lambda group: group[0])
    return members


class CampaignShard:
    """One shard's component-local campaign state.

    Owns the subgraph view, the local :class:`OrderState`, the optional
    local :class:`VerificationCache` and follower kernel, the ranked
    candidate memo, and the local-id bookkeeping (anchors, budget use,
    per-iteration batches) that per-shard checkpoints are built from.

    The ranked memo is the substrate's core saving: :meth:`ranked` reruns
    the filter stage only when an anchor batch touched this shard (or the
    budget situation changed which sides are eligible); otherwise the
    previous iteration's list — provably identical to a fresh recompute,
    because nothing it depends on changed — is returned as-is.
    """

    __slots__ = ("index", "view", "graph", "state", "cache", "kernel",
                 "local_anchors", "local_upper_used", "local_iterations",
                 "_ranked", "_fingerprint")

    def __init__(self, index: int, view: SubgraphView, alpha: int, beta: int,
                 options: EngineOptions, memoize: bool,
                 flat_kernel: Optional[bool]) -> None:
        self.index = index
        self.view = view
        self.graph = view.graph
        self.state = OrderState(self.graph, alpha, beta,
                                maintain=options.maintain_orders)
        self.cache = VerificationCache(self.graph) if memoize else None
        if flat_kernel is None:
            self.kernel: Optional[FollowerKernel] = kernel_for(self.graph)
        elif flat_kernel:
            self.kernel = FollowerKernel(self.graph)
        else:
            self.kernel = None
        self.local_anchors: List[int] = []
        self.local_upper_used = 0
        self.local_iterations: List[IterationRecord] = []
        # sides-key -> (entries, candidates_total); entries are merged-form
        # MergedCandidate tuples sorted by their (-bound, global_x) head.
        self._ranked: Dict[Tuple[bool, bool], Tuple[List, int]] = {}
        self._fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        """Structure fingerprint of the local graph (memoized)."""
        if self._fingerprint is None:
            self._fingerprint = graph_fingerprint(self.graph)
        return self._fingerprint

    def ranked(self, upper_left: int, lower_left: int,
               options: EngineOptions) -> Tuple[List, int]:
        """This shard's ranked candidates for the current budget situation.

        The memo key is only which *sides* still have budget — the filter
        stage uses the budgets for side eligibility, never for values — so
        a shard untouched since its last filter pass hits the memo even as
        the budgets shrink.
        """
        key = (upper_left > 0, lower_left > 0)
        hit = self._ranked.get(key)
        if hit is not None:
            return hit
        if self.kernel is not None:
            # Stamp lazily, only when this shard actually refilters: a
            # clean shard's previous stamp is still valid because its
            # positions and core are untouched since then.
            self.kernel.begin_iteration(self.state.upper.position,
                                        self.state.lower.position,
                                        self.state.core)
        scored, candidates_total = _filter_stage(
            self.graph, self.state, upper_left, lower_left, options,
            cache=self.cache, kernel=self.kernel)
        to_global = self.view.to_global
        # Stored directly in merged form so the per-iteration global merge
        # is a C-level concatenate-and-sort over memoized lists, with no
        # per-candidate Python work for clean shards.
        entries = [((-bound, to_global[x]), self, x, order, rf)
                   for bound, x, order, rf in scored]
        self._ranked[key] = (entries, candidates_total)
        return self._ranked[key]

    def apply(self, batch: Sequence[int]) -> None:
        """Anchor a local-id batch, invalidating caches and bookkeeping.

        Mirrors the serial engine's apply step on the shard's local state;
        the appended local record carries only the batch (per-shard
        checkpoints compare batches, nothing else), with the remaining
        fields fixed at zero so replayed and original bookkeeping are
        identical.
        """
        before = len(self.state.core)
        dirty = self.state.apply_anchors(list(batch))
        if self.cache is not None:
            self.cache.invalidate(dirty)
        self._ranked.clear()
        self.local_anchors.extend(batch)
        is_upper = self.graph.is_upper
        self.local_upper_used += sum(1 for x in batch if is_upper(x))
        self.local_iterations.append(IterationRecord(
            anchors=list(batch),
            marginal_followers=len(self.state.core) - before - len(batch),
            candidates_total=0, candidates_after_filter=0,
            verifications=0, elapsed=0.0))

    def checkpoint_payload(self, algorithm: str, alpha: int, beta: int,
                           b1: int, b2: int, options_dict: Dict[str, object],
                           exhausted: bool,
                           elapsed: float) -> CampaignCheckpoint:
        """A standard schema-1 checkpoint over the shard's local graph."""
        return CampaignCheckpoint(
            algorithm=algorithm, alpha=alpha, beta=beta, b1=b1, b2=b2,
            options=options_dict, graph_fingerprint=self.fingerprint(),
            anchors=list(self.local_anchors),
            upper_used=self.local_upper_used,
            iterations=list(self.local_iterations),
            exhausted=exhausted, elapsed=elapsed)


def _merged_stream(per_shard: List[List[MergedCandidate]],
                   ) -> List[MergedCandidate]:
    """K-way merge of shard rankings in the serial engine's sort order.

    Each shard's entries are sorted by ``(-bound, local_x)``; monotone
    renumbering makes that ``(-bound, global_x)`` order too, so merging
    under the global key reproduces the serial engine's single sorted
    list.  ``global_x`` is unique across shards — the order never ties, so
    any sort yields exactly what a streaming ``heapq.merge`` would.
    Entries carry their negated key as the leading tuple element, making
    this a key-function-free ``list.sort`` whose Timsort galloping mode
    merges the pre-sorted per-shard runs in C.
    """
    merged: List[MergedCandidate] = []
    for entries in per_shard:
        merged += entries
    merged.sort()
    return merged


def _merged_verification(
    graph: BipartiteGraph,
    merged: List[MergedCandidate],
    maintainer: AnchorSetMaintainer,
    t: int,
    alpha: int,
    beta: int,
    deadline: Optional[float],
) -> Tuple[int, bool]:
    """The serial verification scan over the merged candidate stream.

    Identical decision sequence to the unsharded ``_verification_stage``:
    deadline, coverage, threshold (with the ``t = 1`` early stop), then
    evaluate-or-reuse.  Follower sets are computed in the candidate's shard
    (local ids) and globalized for coverage and the maintainer — follower
    sets never leave their component, so the globalized union equals the
    serial scan's global set exactly.
    """
    covered: Set[int] = set()
    verifications = 0
    for (neg_bound, gx), shard, lx, order, rf in merged:
        if deadline is not None and time.perf_counter() > deadline:
            return verifications, True
        if gx in covered:
            continue
        if -neg_bound <= maintainer.skip_threshold():
            if t == 1:
                break
            continue
        side = order.side
        cache = shard.cache
        follower_set = (cache.followers_for(side, lx)
                        if cache is not None else None)
        if follower_set is None:
            if shard.kernel is not None:
                follower_set = shard.kernel.followers(side, lx, alpha, beta,
                                                      candidates=rf)
            else:
                follower_set = compute_followers(shard.graph, order, lx,
                                                 core=shard.state.core,
                                                 candidates=rf)
            if cache is not None:
                cache.store_followers(side, lx, follower_set)
        verifications += 1
        follower_global = shard.view.globalize(follower_set)
        covered |= follower_global
        if follower_global:
            maintainer.offer(gx, follower_global)
    return verifications, False


def _parallel_merged_verification(
    merged: List[MergedCandidate],
    maintainer: AnchorSetMaintainer,
    t: int,
    deadline: Optional[float],
    evaluator: "ShardedEvaluator",
    shard_states: Sequence[OrderState],
    dirty_shards: Set[int],
) -> Tuple[int, bool]:
    """The merged scan over pool-precomputed follower sets.

    The sharded analogue of the engine's parallel stage: cache misses are
    dispatched as ``(shard, side, local_x)`` items, the state broadcast
    carries only the shards anchored since the previous broadcast, and the
    scan splices cached sets with streamed ones in merged order.  Decision
    points and counting match :func:`_merged_verification` exactly.
    """
    from repro.parallel import EvaluationStopped

    covered: Set[int] = set()
    verifications = 0
    cached_sets: List[Optional[Set[int]]] = []
    items: List[Tuple[int, str, int]] = []
    for _key, shard, lx, order, _rf in merged:
        follower_set = (shard.cache.followers_for(order.side, lx)
                        if shard.cache is not None else None)
        cached_sets.append(follower_set)
        if follower_set is None:
            items.append((shard.index, order.side, lx))
    evaluator.begin_iteration(shard_states, dirty_shards, deadline)
    dirty_shards.clear()
    stream = evaluator.evaluate(items)
    try:
        for ((neg_bound, gx), shard, lx, order, _rf), follower_set in zip(
                merged, cached_sets):
            if follower_set is None:
                follower_set = next(stream)
                if shard.cache is not None:
                    shard.cache.store_followers(order.side, lx, follower_set)
            if deadline is not None and time.perf_counter() > deadline:
                return verifications, True
            if gx in covered:
                continue
            if -neg_bound <= maintainer.skip_threshold():
                if t == 1:
                    break
                continue
            verifications += 1
            follower_global = shard.view.globalize(follower_set)
            covered |= follower_global
            if follower_global:
                maintainer.offer(gx, follower_global)
    except EvaluationStopped:
        return verifications, True
    finally:
        stream.close()
    return verifications, False


def _merged_fallback(graph: BipartiteGraph, merged: List[MergedCandidate],
                     t: int, upper_left: int, lower_left: int) -> List[int]:
    """Top-bound candidates within budget — the zero-follower fallback.

    Same rule as the engine's ``_fallback_anchors``, walking the merged
    (= serial sorted) order with global ids.
    """
    chosen: List[int] = []
    for (_neg_bound, gx), _shard, _lx, _order, _rf in merged:
        if len(chosen) >= t:
            break
        if graph.is_upper(gx):
            if upper_left <= 0:
                continue
            upper_left -= 1
        else:
            if lower_left <= 0:
                continue
            lower_left -= 1
        chosen.append(gx)
    return chosen


def _expected_local_batches(
    campaign: CampaignCheckpoint,
    shard_list: List[CampaignShard],
    shard_of: Dict[int, int],
    labels: Sequence[int],
) -> List[List[List[int]]]:
    """Per-shard local anchor batches implied by global iteration records.

    Exactly the batches :func:`run_sharded_engine` would have handed each
    shard while producing those records — the envelope is therefore always
    sufficient to rebuild every shard's state, which is what makes a
    missing or stale per-shard file survivable.
    """
    expected: List[List[List[int]]] = [[] for _ in shard_list]
    for record in campaign.iterations:
        if not record.anchors:
            continue
        per_shard: Dict[int, List[int]] = {}
        for gx in record.anchors:
            per_shard.setdefault(shard_of[labels[gx]], []).append(gx)
        for sid in sorted(per_shard):
            expected[sid].append(
                shard_list[sid].view.localize(per_shard[sid]))
    return expected


def _replay_shard(shard: CampaignShard, batches: List[List[int]],
                  envelope_path: Optional[str], alpha: int, beta: int,
                  b1: int, b2: int,
                  options_dict: Dict[str, object]) -> None:
    """Restore one shard's state, preferring its own checkpoint file.

    The shard file is loaded and validated (fingerprint, parameters, and
    recorded batches against the envelope-derived ``batches``); when it is
    missing, corrupt, or disagrees — a *dead shard*, e.g. its file was lost
    with a failed node — the shard degrades to replaying the envelope's
    batches with a warning, mirroring how the parallel evaluator buries a
    dead worker and recomputes its chunk.  Both paths replay the same
    batches, so the rebuilt state is identical either way; the file adds
    integrity checking, not information.

    A shard file recorded one iteration *ahead* of the envelope (crash
    after the shard write, before the envelope write) is expected and
    accepted silently — the extra batch is simply not replayed.
    """
    if envelope_path is not None:
        path = shard_checkpoint_path(envelope_path, shard.index)
        try:
            restored = load_checkpoint(path)
            restored.validate_for(shard.graph, alpha, beta, b1, b2,
                                  options_dict)
            recorded = [record.anchors for record in restored.iterations
                        if record.anchors]
            if recorded[:len(batches)] != batches:
                raise CheckpointError(
                    "shard %d checkpoint disagrees with the campaign "
                    "envelope" % shard.index)
        except CheckpointError as error:
            warnings.warn(
                "shard %d checkpoint unusable (%s); replaying this shard "
                "from the campaign envelope" % (shard.index, error),
                RuntimeWarning, stacklevel=3)
    for batch in batches:
        shard.apply(batch)


def run_sharded_engine(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    options: EngineOptions,
    algorithm: str,
    shards: int,
    deadline: Optional[float] = None,
    on_iteration: Optional[ProgressCallback] = None,
    checkpoint: Optional[Union[str, "os.PathLike[str]"]] = None,
    resume_from: Optional[ShardedCheckpointSource] = None,
    workers: int = 1,
    memoize: bool = True,
    flat_kernel: Optional[bool] = None,
    handle_sigterm: bool = False,
) -> AnchoredCoreResult:
    """Run the greedy loop on a component-sharded substrate.

    Produces a result byte-identical (canonical form, ``elapsed``
    excluded) to :func:`~repro.core.engine.run_engine` with the same
    problem and options, for every ``shards``/``workers`` combination and
    every adjacency backend — the differential suite in
    ``tests/test_sharded_differential.py`` enforces exactly that.

    ``checkpoint``/``resume_from`` use the sharded envelope format
    (:mod:`repro.resilience.sharded`): one global envelope plus one file
    per shard, written shard-files-first.  ``workers > 1`` schedules
    verification chunks shard-by-shard on a process pool
    (:class:`repro.parallel.shards.ShardedEvaluator`), sharing each
    shard's CSR segment once.

    Parameters mirror ``run_engine`` — including ``handle_sigterm``,
    which converts ``SIGTERM`` at an iteration boundary into the graceful
    ``interrupted=True`` best-so-far path; ``shards`` is the maximum shard
    count (capped at the number of connected components).
    """
    validate_problem(graph, alpha, beta, b1, b2)
    t = options.anchors_per_iteration
    if t < 1:
        raise ValueError("anchors_per_iteration must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1, got %d" % workers)

    decomposition = ComponentDecomposition(graph)
    plan = plan_shards(decomposition.sizes, shards)
    shard_list = [
        CampaignShard(index, decomposition.subgraph_view(components),
                      alpha, beta, options, memoize, flat_kernel)
        for index, components in enumerate(plan)]
    # component label -> owning shard index, for routing chosen anchors.
    shard_of: Dict[int, int] = {}
    for shard_index, components in enumerate(plan):
        for component in components:
            shard_of[component] = shard_index
    labels = decomposition.labels

    evaluator: Optional["ShardedEvaluator"] = None
    if workers > 1 and shard_list:
        from repro.parallel.shards import create_sharded_evaluator

        fault_plan = active_plan()
        fault_specs = tuple(
            spec for spec in (fault_plan.specs if fault_plan is not None
                              else ())
            if spec.site.startswith("parallel."))
        evaluator = create_sharded_evaluator(
            [shard.graph for shard in shard_list], workers,
            fault_specs=fault_specs,
            use_flat_kernel=any(shard.kernel is not None
                                for shard in shard_list))
    # Shards anchored since the last evaluator broadcast; starts at "all"
    # so the first broadcast seeds every worker-side shard state.
    dirty_shards: Set[int] = set(range(len(shard_list)))

    start = time.perf_counter()
    base_core: Set[int] = set()
    for shard in shard_list:
        base_core |= shard.view.globalize(abcore(shard.graph, alpha, beta))

    anchors: List[int] = []
    upper_used = 0
    is_upper = graph.is_upper
    iterations: List[IterationRecord] = []
    timed_out = False
    interrupted = False
    exhausted = False
    elapsed_prior = 0.0
    options_dict = asdict(options)
    fingerprint = graph_fingerprint(graph) if checkpoint is not None else None

    if resume_from is not None:
        if isinstance(resume_from, ShardedCampaignCheckpoint):
            envelope, envelope_path = resume_from, None
        else:
            import os as _os

            envelope_path = _os.fspath(resume_from)
            envelope = load_sharded_checkpoint(envelope_path)
        envelope.validate_for(graph, alpha, beta, b1, b2, options_dict)
        expected = _expected_local_batches(envelope.campaign, shard_list,
                                           shard_of, labels)
        for shard in shard_list:
            _replay_shard(shard, expected[shard.index], envelope_path,
                          alpha, beta, b1, b2, options_dict)
        anchors = list(envelope.campaign.anchors)
        upper_used = envelope.campaign.upper_used
        iterations = list(envelope.campaign.iterations)
        exhausted = envelope.campaign.exhausted
        elapsed_prior = envelope.campaign.elapsed

    def save_checkpoint() -> None:
        if checkpoint is None:
            return
        elapsed = elapsed_prior + time.perf_counter() - start
        global_checkpoint = CampaignCheckpoint(
            algorithm=algorithm, alpha=alpha, beta=beta, b1=b1, b2=b2,
            options=options_dict, graph_fingerprint=fingerprint or "",
            anchors=list(anchors), upper_used=upper_used,
            iterations=list(iterations), exhausted=exhausted,
            elapsed=elapsed)
        ShardedCampaignCheckpoint(
            campaign=global_checkpoint, shards=len(shard_list),
            shard_fingerprints=[shard.fingerprint()
                                for shard in shard_list],
        ).save(checkpoint, [
            shard.checkpoint_payload(algorithm, alpha, beta, b1, b2,
                                     options_dict, exhausted, elapsed)
            for shard in shard_list])

    termination = TerminationFlag().install() if handle_sigterm else None
    try:
        while not (timed_out or exhausted):
            if termination is not None and termination.is_set():
                interrupted = True
                break
            if deadline is not None and time.perf_counter() > deadline:
                timed_out = True
                break
            upper_left = b1 - upper_used
            lower_left = b2 - (len(anchors) - upper_used)
            if upper_left <= 0 and lower_left <= 0:
                break
            iter_start = time.perf_counter()

            # One filter pass per *global* iteration (the serial fault
            # cadence), even though only dirty shards actually refilter.
            fault_site("engine.filter")
            candidates_total = 0
            per_shard: List[List[MergedCandidate]] = []
            for shard in shard_list:
                entries, shard_total = shard.ranked(upper_left, lower_left,
                                                    options)
                candidates_total += shard_total
                per_shard.append(entries)
            merged = _merged_stream(per_shard)

            maintainer = AnchorSetMaintainer(graph,
                                             min(t, upper_left + lower_left),
                                             upper_left, lower_left)
            fault_site("engine.verify")
            if evaluator is not None:
                verifications, timed_out = _parallel_merged_verification(
                    merged, maintainer, t, deadline, evaluator,
                    [shard.state for shard in shard_list], dirty_shards)
            else:
                verifications, timed_out = _merged_verification(
                    graph, merged, maintainer, t, alpha, beta, deadline)

            chosen = [x for x in maintainer.anchors
                      if maintainer.followers_of(x)]
            if not chosen:
                chosen = _merged_fallback(graph, merged, maintainer.t,
                                          upper_left, lower_left)
            if not chosen:
                record = IterationRecord(
                    anchors=[], marginal_followers=0,
                    candidates_total=candidates_total,
                    candidates_after_filter=len(merged),
                    verifications=verifications,
                    elapsed=time.perf_counter() - iter_start)
                iterations.append(record)
                exhausted = True
                save_checkpoint()
                if on_iteration is not None:
                    on_iteration(record)
                break

            core_before = sum(len(shard.state.core) for shard in shard_list)
            # Route the chosen batch to its shards; ascending shard order,
            # each sub-batch preserving the chosen order (which is what the
            # global apply would process).
            batch_of: Dict[int, List[int]] = {}
            for gx in chosen:
                batch_of.setdefault(shard_of[labels[gx]], []).append(gx)
            for shard_index in sorted(batch_of):
                shard = shard_list[shard_index]
                shard.apply(shard.view.localize(batch_of[shard_index]))
                dirty_shards.add(shard_index)
            core_after = sum(len(shard.state.core) for shard in shard_list)

            anchors.extend(chosen)
            upper_used += sum(1 for x in chosen if is_upper(x))
            record = IterationRecord(
                anchors=list(chosen),
                marginal_followers=core_after - core_before - len(chosen),
                candidates_total=candidates_total,
                candidates_after_filter=len(merged),
                verifications=verifications,
                elapsed=time.perf_counter() - iter_start)
            iterations.append(record)
            save_checkpoint()
            if on_iteration is not None:
                on_iteration(record)
    except AbortCampaign:
        interrupted = True
    except (KeyboardInterrupt, MemoryError):
        interrupted = True
    finally:
        if termination is not None:
            termination.restore()
        if evaluator is not None:
            evaluator.shutdown()

    # Authoritative objective, shard by shard: the anchored (α,β)-core of a
    # disjoint union is the disjoint union of anchored cores.
    final_core: Set[int] = set()
    for shard in shard_list:
        final_core |= shard.view.globalize(
            anchored_abcore(shard.graph, alpha, beta, shard.local_anchors))
    follower_set = final_core - base_core - set(anchors)
    return AnchoredCoreResult(
        algorithm=algorithm, alpha=alpha, beta=beta, b1=b1, b2=b2,
        anchors=anchors, followers=follower_set,
        base_core_size=len(base_core), final_core_size=len(final_core),
        elapsed=elapsed_prior + time.perf_counter() - start,
        iterations=iterations, timed_out=timed_out, interrupted=interrupted)
