"""The naive greedy algorithm (Section II-C).

``Naive`` runs ``b1 + b2`` iterations; in each one it considers *every*
vertex outside the current anchored (α,β)-core as a candidate, computes its
followers by a full anchored-core recomputation, and keeps the best.  This is
the ``O((b1+b2)·n·m)`` reference greedy: FILVER picks a follower-maximizing
anchor each round too, so the two agree on the objective whenever the greedy
choices are unambiguous (ties may break toward different anchors — Naive by
vertex id, FILVER by bound rank; ``tests/test_filver.py`` compares them
accordingly).
"""

from __future__ import annotations

import time
from typing import List, Optional, Set

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.validation import validate_problem
from repro.core.result import AnchoredCoreResult, IterationRecord

__all__ = ["run_naive"]


def _select_peel(graph: BipartiteGraph, accel: str):
    """Pick the global-peel backend for this run."""
    if accel not in ("auto", "on", "off"):
        raise ValueError("accel must be 'auto', 'on' or 'off', got %r" % accel)
    if accel == "off":
        return anchored_abcore
    from repro.abcore import accel as accel_mod

    if accel == "on":
        if not accel_mod.available():
            raise RuntimeError("accel='on' requires numpy")
        return accel_mod.fast_anchored_abcore
    if accel_mod.available() and graph.n_edges >= 2000:
        return accel_mod.fast_anchored_abcore
    return anchored_abcore


def run_naive(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    deadline: Optional[float] = None,
    accel: str = "auto",
) -> AnchoredCoreResult:
    """Solve the anchored (α,β)-core problem with the naive greedy.

    ``accel`` selects the global-peel backend: ``"auto"`` uses the numpy
    round-synchronous peel (:mod:`repro.abcore.accel`) when numpy is
    installed and the graph is non-trivial, ``"on"`` forces it, ``"off"``
    sticks to the pure-Python peel.  Both compute identical cores; Naive's
    cost is one global peel per candidate per iteration, so this is where
    vectorization pays the most.
    """
    validate_problem(graph, alpha, beta, b1, b2)
    peel = _select_peel(graph, accel)
    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)

    anchors: List[int] = []
    iterations: List[IterationRecord] = []
    timed_out = False
    current_core = set(base_core)

    while not timed_out:
        upper_used = sum(1 for a in anchors if graph.is_upper(a))
        upper_left = b1 - upper_used
        lower_left = b2 - (len(anchors) - upper_used)
        if upper_left <= 0 and lower_left <= 0:
            break
        iter_start = time.perf_counter()

        best_anchor = -1
        best_gain = -1
        verifications = 0
        candidates_total = 0
        for x in graph.vertices():
            if x in current_core or x in anchors:
                continue
            if graph.is_upper(x):
                if upper_left <= 0:
                    continue
            elif lower_left <= 0:
                continue
            candidates_total += 1
            if deadline is not None and time.perf_counter() > deadline:
                timed_out = True
                break
            trial = peel(graph, alpha, beta, anchors + [x])
            verifications += 1
            gain = len(trial) - len(current_core) - 1
            # Strict improvement keeps the first (lowest-id) maximizer; a
            # zero-gain anchor still gets placed (the budget is spent either
            # way, and anchors placed "for free" can combine with later ones).
            if gain > best_gain:
                best_gain = gain
                best_anchor = x

        if best_anchor < 0:
            iterations.append(IterationRecord(
                anchors=[], marginal_followers=0,
                candidates_total=candidates_total,
                candidates_after_filter=candidates_total,
                verifications=verifications,
                elapsed=time.perf_counter() - iter_start))
            break
        anchors.append(best_anchor)
        current_core = peel(graph, alpha, beta, anchors)
        iterations.append(IterationRecord(
            anchors=[best_anchor], marginal_followers=best_gain,
            candidates_total=candidates_total,
            candidates_after_filter=candidates_total,
            verifications=verifications,
            elapsed=time.perf_counter() - iter_start))

    final_core = anchored_abcore(graph, alpha, beta, anchors)
    follower_set = final_core - base_core - set(anchors)
    return AnchoredCoreResult(
        algorithm="naive", alpha=alpha, beta=beta, b1=b1, b2=b2,
        anchors=anchors, followers=follower_set,
        base_core_size=len(base_core), final_core_size=len(final_core),
        elapsed=time.perf_counter() - start, iterations=iterations,
        timed_out=timed_out)
