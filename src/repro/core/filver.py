"""FILVER — the basic filter–verification algorithm (Section III, Algorithm 2).

Each of the ``b1 + b2`` iterations recomputes the upper/lower deletion orders
from scratch, prunes candidates whose r-score bound is 0, then verifies the
survivors in non-increasing bound order with the local follower computation
(Algorithm 1), placing the single best anchor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.bigraph.graph import BipartiteGraph
from repro.core.engine import EngineOptions, ProgressCallback, run_engine
from repro.core.result import AnchoredCoreResult

if TYPE_CHECKING:
    from repro.core.batch import SharedCampaignContext

__all__ = ["run_filver", "FILVER_OPTIONS"]

FILVER_OPTIONS = EngineOptions(
    use_two_hop_filter=False,
    maintain_orders=False,
    use_rf_bound=False,
    anchors_per_iteration=1,
)


def run_filver(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    deadline: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume_from: Optional[str] = None,
    workers: int = 1,
    memoize: bool = True,
    flat_kernel: Optional[bool] = None,
    shards: Optional[int] = None,
    on_iteration: Optional[ProgressCallback] = None,
    handle_sigterm: bool = False,
    context: Optional["SharedCampaignContext"] = None,
) -> AnchoredCoreResult:
    """Solve the anchored (α,β)-core problem with FILVER.

    ``checkpoint`` / ``resume_from`` enable per-iteration snapshots and
    deterministic resume; ``workers > 1`` verifies candidates on a process
    pool with results identical to the serial scan, and ``memoize`` /
    ``flat_kernel`` control the cross-iteration verification cache and the
    flat-array CSR follower kernel — both byte-identity-preserving
    accelerations (see :func:`repro.core.engine.run_engine`).  ``shards``
    (an int ≥ 1) runs the campaign on the component-sharded substrate
    (:func:`repro.core.sharded.run_sharded_engine`, sharded checkpoint
    format) — results are byte-identical to the unsharded path.
    ``on_iteration`` streams each finished
    :class:`repro.core.result.IterationRecord` to an observer, and
    ``handle_sigterm`` converts ``SIGTERM`` at an iteration boundary into
    the graceful ``interrupted=True`` best-so-far result (see
    :func:`repro.core.engine.run_engine`).  ``context`` shares a batch's
    (α,β) substrate (:mod:`repro.core.batch`); the sharded substrate builds
    per-shard state, so sharded campaigns ignore it.
    """
    if shards is not None:
        from repro.core.sharded import run_sharded_engine

        return run_sharded_engine(graph, alpha, beta, b1, b2, FILVER_OPTIONS,
                                  algorithm="filver", shards=shards,
                                  deadline=deadline, checkpoint=checkpoint,
                                  resume_from=resume_from, workers=workers,
                                  memoize=memoize, flat_kernel=flat_kernel,
                                  on_iteration=on_iteration,
                                  handle_sigterm=handle_sigterm)
    return run_engine(graph, alpha, beta, b1, b2, FILVER_OPTIONS,
                      algorithm="filver", deadline=deadline,
                      checkpoint=checkpoint, resume_from=resume_from,
                      workers=workers, memoize=memoize,
                      flat_kernel=flat_kernel, on_iteration=on_iteration,
                      handle_sigterm=handle_sigterm, context=context)
