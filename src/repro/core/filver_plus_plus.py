"""FILVER++ — both filter- and verification-stage optimizations (Alg. 7).

On top of FILVER+, each iteration maintains a working set ``T`` of up to
``t`` anchors (Algorithm 6): candidates either join ``T`` or replace its
least-contribution member when that grows the in-shell follower set.  Placing
``t`` anchors per iteration cuts the iteration count to ``⌈(b1+b2)/t⌉``; the
order maintenance handles the batch by processing anchors in non-decreasing
core number and skipping anchors inside an already-repaired affected graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.bigraph.graph import BipartiteGraph
from repro.core.engine import EngineOptions, ProgressCallback, run_engine
from repro.core.result import AnchoredCoreResult

if TYPE_CHECKING:
    from repro.core.batch import SharedCampaignContext

__all__ = ["run_filver_plus_plus", "filver_plus_plus_options"]


def filver_plus_plus_options(t: int = 5) -> EngineOptions:
    """Engine configuration for FILVER++ with ``t`` anchors per iteration."""
    return EngineOptions(
        use_two_hop_filter=True,
        maintain_orders=True,
        use_rf_bound=True,
        anchors_per_iteration=t,
    )


def run_filver_plus_plus(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    t: int = 5,
    deadline: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume_from: Optional[str] = None,
    workers: int = 1,
    memoize: bool = True,
    flat_kernel: Optional[bool] = None,
    shards: Optional[int] = None,
    on_iteration: Optional[ProgressCallback] = None,
    handle_sigterm: bool = False,
    context: Optional["SharedCampaignContext"] = None,
) -> AnchoredCoreResult:
    """Solve the anchored (α,β)-core problem with FILVER++.

    ``t`` is the number of anchors placed per iteration (the paper sweeps
    1, 2, 4, 8, 16 and uses 5 as the default elsewhere).
    ``checkpoint`` / ``resume_from`` enable per-iteration snapshots and
    deterministic resume; ``workers > 1`` verifies candidates on a process
    pool with results identical to the serial scan, and ``memoize`` /
    ``flat_kernel`` control the cross-iteration verification cache and the
    flat-array CSR follower kernel — both byte-identity-preserving
    accelerations (see :func:`repro.core.engine.run_engine`).  ``shards``
    (an int ≥ 1) runs the campaign on the component-sharded substrate
    (:func:`repro.core.sharded.run_sharded_engine`, sharded checkpoint
    format) — results are byte-identical to the unsharded path.
    ``on_iteration`` streams each finished
    :class:`repro.core.result.IterationRecord` to an observer, and
    ``handle_sigterm`` converts ``SIGTERM`` at an iteration boundary into
    the graceful ``interrupted=True`` best-so-far result (see
    :func:`repro.core.engine.run_engine`).  ``context`` shares a
    batch's (α,β) substrate (:mod:`repro.core.batch`); the sharded
    substrate builds per-shard state, so sharded campaigns ignore
    it.
    """
    if shards is not None:
        from repro.core.sharded import run_sharded_engine

        return run_sharded_engine(graph, alpha, beta, b1, b2,
                                  filver_plus_plus_options(t),
                                  algorithm="filver++(t=%d)" % t,
                                  shards=shards, deadline=deadline,
                                  checkpoint=checkpoint,
                                  resume_from=resume_from, workers=workers,
                                  memoize=memoize, flat_kernel=flat_kernel,
                                  on_iteration=on_iteration,
                                  handle_sigterm=handle_sigterm)
    return run_engine(graph, alpha, beta, b1, b2,
                      filver_plus_plus_options(t),
                      algorithm="filver++(t=%d)" % t, deadline=deadline,
                      checkpoint=checkpoint, resume_from=resume_from,
                      workers=workers, memoize=memoize,
                      flat_kernel=flat_kernel, on_iteration=on_iteration,
                      handle_sigterm=handle_sigterm, context=context)
