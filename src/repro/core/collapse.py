"""Collapsed (α,β)-core — the attack dual of anchored reinforcement.

The related-work section cites Chen et al. (WWW Journal 2021) on the
*collapsed* (α,β)-core problem: find the elements whose removal shrinks the
(α,β)-core the most.  The dual matters operationally: the vertices an
attacker (or churn) would exploit are exactly the ones reinforcement should
shore up, and the examples use both directions together.

Two greedy identifiers are provided:

* :func:`critical_vertices` — the ``b`` core vertices whose (simulated)
  departure collapses the most of the core;
* :func:`critical_edges` — the ``b`` core edges with the same objective
  (closer to the cited paper, which removes edges).

Both are plain greedy loops over exact collapse evaluations — the point is
faithfulness and testability, not scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.abcore.decomposition import abcore, validate_degree_constraints
from repro.bigraph.csr import adjacency_arrays
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = ["CollapseResult", "collapse_size", "critical_vertices",
           "critical_edges"]


@dataclass
class CollapseResult:
    """Outcome of a greedy collapse search."""

    removed: List[object] = field(default_factory=list)  # vertices or edges
    base_core_size: int = 0
    final_core_size: int = 0
    elapsed: float = 0.0

    @property
    def collapsed(self) -> int:
        """How many vertices left the core beyond those removed directly."""
        return self.base_core_size - self.final_core_size


def collapse_size(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    removed_vertices: Sequence[int] = (),
    removed_edges: Sequence[Tuple[int, int]] = (),
) -> int:
    """Size of the (α,β)-core after removing vertices and/or edges.

    Removal is simulated on alive masks — the graph is not copied.
    """
    validate_degree_constraints(alpha, beta)
    cut = {(min(u, v), max(u, v)) for u, v in removed_edges}

    adj = graph.adjacency
    n_upper = graph.n_upper
    n = graph.n_vertices
    alive = bytearray(b"\x01") * n
    removed = sorted(set(removed_vertices))
    for v in removed:
        alive[v] = 0
    if not cut:
        # No edge cut: start from full degrees (cached for CSR) and retract
        # the removed vertices' contributions — O(n + Σ deg(removed))
        # instead of a full O(m) neighbor scan.
        arrays = adjacency_arrays(graph)
        deg = arrays[2].tolist() if arrays is not None else list(map(len, adj))
        for v in removed:
            for w in adj[v]:
                deg[w] -= 1
    else:
        deg = [0] * n
        for v in range(n):
            if not alive[v]:
                continue
            count = 0
            for w in adj[v]:
                if alive[w] and (min(v, w), max(v, w)) not in cut:
                    count += 1
            deg[v] = count

    queue = []
    for v in range(n):  # hot-loop
        if not alive[v]:
            continue
        threshold = alpha if v < n_upper else beta
        if deg[v] < threshold:
            queue.append(v)
            alive[v] = 0
    head = 0
    push = queue.append
    while head < len(queue):  # hot-loop
        v = queue[head]
        head += 1
        for w in adj[v]:
            if not alive[w] or (min(v, w), max(v, w)) in cut:
                continue
            deg[w] -= 1
            threshold = alpha if w < n_upper else beta
            if deg[w] < threshold:
                alive[w] = 0
                push(w)
    return sum(alive)


def critical_vertices(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    budget: int,
) -> CollapseResult:
    """Greedily pick core vertices whose removal shrinks the core most."""
    validate_degree_constraints(alpha, beta)
    if budget < 0:
        raise InvalidParameterError("budget must be >= 0")
    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)
    removed: List[int] = []
    current_size = len(base_core)

    for _ in range(budget):
        candidates = sorted(v for v in base_core if v not in removed)
        best = None
        best_size = current_size
        for v in candidates:
            size = collapse_size(graph, alpha, beta, removed + [v])
            if size < best_size or (size == best_size and best is None):
                best, best_size = v, size
        if best is None:
            break
        removed.append(best)
        current_size = best_size

    return CollapseResult(
        removed=removed, base_core_size=len(base_core),
        final_core_size=current_size,
        elapsed=time.perf_counter() - start)


def critical_edges(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    budget: int,
    candidate_limit: int = 500,
) -> CollapseResult:
    """Greedily pick core edges whose removal shrinks the core most.

    Candidate edges are those with both endpoints in the current core,
    preferring edges whose endpoints sit exactly at their thresholds (the
    fragile ones), capped at ``candidate_limit`` per round.
    """
    validate_degree_constraints(alpha, beta)
    if budget < 0:
        raise InvalidParameterError("budget must be >= 0")
    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)
    cut: List[Tuple[int, int]] = []
    current_size = len(base_core)

    def core_degree(v: int, core: Set[int]) -> int:
        return sum(1 for w in graph.neighbors(v)
                   if w in core and (min(v, w), max(v, w)) not in cut)

    for _ in range(budget):
        core = _current_core(graph, alpha, beta, cut)
        candidates = []
        for u, v in graph.edges():
            if u in core and v in core and (u, v) not in cut:
                slack = ((core_degree(u, core) - alpha)
                         + (core_degree(v, core) - beta))
                candidates.append((slack, u, v))
        candidates.sort()
        best = None
        best_size = current_size
        for _slack, u, v in candidates[:candidate_limit]:
            size = collapse_size(graph, alpha, beta, (), cut + [(u, v)])
            if size < best_size or (size == best_size and best is None):
                best, best_size = (u, v), size
        if best is None:
            break
        cut.append(best)
        current_size = best_size

    return CollapseResult(
        removed=list(cut), base_core_size=len(base_core),
        final_core_size=current_size,
        elapsed=time.perf_counter() - start)


def _current_core(graph, alpha, beta, cut) -> Set[int]:
    """Core membership under the current edge cut."""
    size = collapse_size(graph, alpha, beta, (), cut)
    # collapse_size only returns the count; recompute membership directly.
    dead_edges = {(min(u, v), max(u, v)) for u, v in cut}
    adj = graph.adjacency
    n_upper = graph.n_upper
    n = graph.n_vertices
    alive = bytearray(b"\x01") * n
    if dead_edges:
        deg = [0] * n
        for v in range(n):
            deg[v] = sum(1 for w in adj[v]
                         if (min(v, w), max(v, w)) not in dead_edges)
    else:
        arrays = adjacency_arrays(graph)
        deg = arrays[2].tolist() if arrays is not None else list(map(len, adj))
    queue = []
    for v in range(n):  # hot-loop
        threshold = alpha if v < n_upper else beta
        if deg[v] < threshold:
            queue.append(v)
            alive[v] = 0
    head = 0
    push = queue.append
    while head < len(queue):  # hot-loop
        v = queue[head]
        head += 1
        for w in adj[v]:
            if not alive[w] or (min(v, w), max(v, w)) in dead_edges:
                continue
            deg[w] -= 1
            threshold = alpha if w < n_upper else beta
            if deg[w] < threshold:
                alive[w] = 0
                push(w)
    assert sum(alive) == size
    return {v for v in range(n) if alive[v]}
