"""The Theorem-1 hardness gadgets: Maximum Coverage → anchored (α,β)-core.

The NP-hardness proof reduces a Maximum Coverage (MC) instance — sets
``T_1..T_c`` over elements ``e_1..e_d``, budget ``b`` — to an anchored
(α,β)-core instance built from three gadget families:

* ``B_i`` (one per element): ``(α-1)(β-1)`` upper vertices, ``α-1`` lower
  vertices ``L*`` adjacent to every upper vertex, and ``α-1`` lower vertices
  ``L'`` of degree ``β-1`` (the only vertices violating their constraint, so
  the whole gadget sits just outside the core);
* ``R_j`` (one per set): an all-or-nothing tree rooted at an upper vertex
  ``u_j`` in which every vertex *except the root and the leaves* meets its
  degree constraint exactly — anchoring the root pulls the entire tree in,
  and through its leaves every connected ``B_i``;
* ``J``: one ``K_{β,α}`` biclique that is a core by itself and props up the
  leaves left unused by the element wiring.

Anchoring root ``u_j`` therefore rescues ``R_j`` plus every ``B_i`` with
``e_i ∈ T_j``; since all trees have equal size and all element gadgets equal
size, choosing ``b`` roots to maximize followers is exactly MC.  (The paper's
prose swaps the child counts of the two layers; the construction here uses
the orientation that makes every internal vertex meet its constraint exactly,
which is what the proof requires.)

This module exists so the hardness argument is *executable*: tests build
small MC instances, run the exact solver on the reduced graph, and check the
optimum matches brute-force MC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.bigraph.builder import GraphBuilder
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = ["MaxCoverageInstance", "ReducedInstance", "reduce_max_coverage",
           "solve_max_coverage_exact"]


@dataclass(frozen=True)
class MaxCoverageInstance:
    """A Maximum Coverage instance: ``sets`` over ``0..n_elements-1``."""

    n_elements: int
    sets: Tuple[FrozenSet[int], ...]
    budget: int

    def __post_init__(self) -> None:
        for s in self.sets:
            for e in s:
                if not (0 <= e < self.n_elements):
                    raise InvalidParameterError(
                        "element %d out of range [0, %d)" % (e, self.n_elements))
        if not (0 <= self.budget <= len(self.sets)):
            raise InvalidParameterError("budget %d out of range" % self.budget)


@dataclass
class ReducedInstance:
    """The bipartite graph produced by the reduction plus its bookkeeping."""

    graph: BipartiteGraph
    alpha: int
    beta: int
    roots: List[int]            # vertex id of u_j for each set T_j
    element_gadgets: List[Set[int]]  # vertex ids of each B_i
    tree_vertices: List[Set[int]]    # vertex ids of each R_j (incl. root)
    tree_size: int              # |R_j| (identical across j)
    gadget_size: int            # |B_i| (identical across i)

    def followers_if_roots(self, chosen: Sequence[int]) -> int:
        """Predicted follower count when anchoring the given root indices.

        Each anchored root contributes its tree minus itself, plus one
        element gadget for every newly covered element.
        """
        covered_elements = self._covered_elements(chosen)
        return (len(chosen) * (self.tree_size - 1)
                + len(covered_elements) * self.gadget_size)

    def _covered_elements(self, chosen: Sequence[int]) -> Set[int]:
        covered: Set[int] = set()
        for j in chosen:
            covered |= self._set_elements[j]
        return covered

    _set_elements: List[FrozenSet[int]] = field(default_factory=list)


def solve_max_coverage_exact(instance: MaxCoverageInstance) -> Tuple[int, Tuple[int, ...]]:
    """Brute-force MC optimum: (covered count, chosen set indices)."""
    best = (-1, ())
    indices = range(len(instance.sets))
    for pick in combinations(indices, instance.budget):
        covered: Set[int] = set()
        for j in pick:
            covered |= instance.sets[j]
        if len(covered) > best[0]:
            best = (len(covered), pick)
    return best


def reduce_max_coverage(
    instance: MaxCoverageInstance,
    alpha: int = 3,
    beta: int = 2,
) -> ReducedInstance:
    """Build the Theorem-1 graph for an MC instance (requires α≥3, β≥2)."""
    if alpha < 3 or beta < 2:
        raise InvalidParameterError(
            "the reduction gadget needs alpha >= 3 and beta >= 2, got (%d, %d)"
            % (alpha, beta))
    builder = GraphBuilder()

    # --- biclique J: K_{β,α}; in the core on its own. -------------------
    j_upper = [("J", "u", i) for i in range(beta)]
    j_lower = [("J", "v", i) for i in range(alpha)]
    for u in j_upper:
        for v in j_lower:
            builder.add_edge(u, v)

    # --- element gadgets B_i. -------------------------------------------
    n_upper_b = (alpha - 1) * (beta - 1)
    element_lprime: List[List[tuple]] = []
    for i in range(instance.n_elements):
        uppers = [("B", i, "u", k) for k in range(n_upper_b)]
        lstar = [("B", i, "s", k) for k in range(alpha - 1)]
        lprime = [("B", i, "p", k) for k in range(alpha - 1)]
        for u in uppers:
            for v in lstar:
                builder.add_edge(u, v)
        # Each L' vertex takes β-1 distinct upper vertices; every upper
        # vertex receives exactly one L' edge, giving it degree exactly α.
        for k, v in enumerate(lprime):
            for u in uppers[k * (beta - 1):(k + 1) * (beta - 1)]:
                builder.add_edge(u, v)
        element_lprime.append(lprime)

    # --- set trees R_j. ---------------------------------------------------
    # All-or-nothing tree: the root (upper) has α-1 lower children and by
    # itself violates its constraint; internal lower vertices have β-1 upper
    # children (+ parent = β); internal upper vertices have α-1 lower
    # children (+ parent = α).  Leaves are upper vertices propped up by
    # either an element gadget or the biclique J.
    leaves_needed = max((len(s) for s in instance.sets), default=1)
    leaves_needed = max(leaves_needed, 1)

    tree_edges: List[Tuple[tuple, tuple]] = []
    tree_nodes: List[tuple] = []
    leaf_templates: List[tuple] = []
    counter = [0]

    def fresh(kind: str) -> tuple:
        counter[0] += 1
        return ("R", kind, counter[0])

    root_template = ("R", "root", 0)
    tree_nodes.append(root_template)
    frontier_upper = [root_template]
    expanded = False
    while True:
        # Expand every current upper leaf one double-level; stop as soon as
        # the upper frontier is big enough to serve as leaves.  The root is
        # never a leaf (an unanchored root must violate its constraint), so
        # at least one expansion always happens.
        if expanded and len(frontier_upper) >= leaves_needed:
            break
        expanded = True
        next_frontier: List[tuple] = []
        for u in frontier_upper:
            for _ in range(alpha - 1):
                low = fresh("low")
                tree_nodes.append(low)
                tree_edges.append((u, low))
                for _ in range(beta - 1):
                    up = fresh("up")
                    tree_nodes.append(up)
                    tree_edges.append((up, low))
                    next_frontier.append(up)
        frontier_upper = next_frontier
    leaf_templates = frontier_upper

    set_elements = [frozenset(s) for s in instance.sets]
    roots: List[int] = []
    tree_vertex_labels: List[List[tuple]] = []
    for j in range(len(instance.sets)):
        mapping: Dict[tuple, tuple] = {}

        def localized(node: tuple) -> tuple:
            if node not in mapping:
                mapping[node] = ("T", j) + node
            return mapping[node]

        for u, v in tree_edges:
            builder.add_edge(localized(u), localized(v))
        local_leaves = [localized(l) for l in leaf_templates]
        # Wire leaves: one leaf per element of T_j, leftovers go to J.
        elements = sorted(set_elements[j])
        for idx, leaf in enumerate(local_leaves):
            if idx < len(elements):
                for v in element_lprime[elements[idx]]:
                    builder.add_edge(leaf, v)
            else:
                for v in j_lower[:alpha - 1]:
                    builder.add_edge(leaf, v)
        tree_vertex_labels.append([localized(n) for n in tree_nodes])

    graph = builder.build()

    def upper_id(label: tuple) -> int:
        return graph.vertex_of("upper", label)

    def any_id(label: tuple) -> int:
        try:
            return graph.vertex_of("upper", label)
        except KeyError:
            return graph.vertex_of("lower", label)

    roots = [graph.vertex_of("upper", ("T", j, "R", "root", 0))
             for j in range(len(instance.sets))]
    element_gadgets: List[Set[int]] = []
    for i in range(instance.n_elements):
        ids: Set[int] = set()
        for k in range(n_upper_b):
            ids.add(graph.vertex_of("upper", ("B", i, "u", k)))
        for k in range(alpha - 1):
            ids.add(graph.vertex_of("lower", ("B", i, "s", k)))
            ids.add(graph.vertex_of("lower", ("B", i, "p", k)))
        element_gadgets.append(ids)
    tree_vertices = [set(any_id(lbl) for lbl in labels)
                     for labels in tree_vertex_labels]

    reduced = ReducedInstance(
        graph=graph, alpha=alpha, beta=beta, roots=roots,
        element_gadgets=element_gadgets, tree_vertices=tree_vertices,
        tree_size=len(tree_nodes), gadget_size=n_upper_b + 2 * (alpha - 1))
    reduced._set_elements = set_elements
    return reduced
