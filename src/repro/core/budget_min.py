"""Budget minimization — the dual objective from the paper's related work.

Liu et al. (ICDE'21, the paper's reference [15]) study the *anchored k-core
budget minimization* problem: instead of maximizing followers under a fixed
budget, find the smallest anchor set achieving a target.  The bipartite
version is a natural operational question ("how many sponsorships until the
community reaches N members / until these users are retained?") and falls
out of the same filter–verification machinery:

* :func:`minimize_anchors_for_growth` — smallest greedy anchor set whose
  followers reach a target count;
* :func:`minimize_anchors_for_targets` — smallest greedy anchor set pulling
  a given set of *specific* vertices into the anchored core.

Both are greedy (the exact problems inherit NP-hardness) and return the full
:class:`AnchoredCoreResult` trace, with anchors in placement order so any
prefix is itself a valid (smaller) plan.
"""

from __future__ import annotations

import time
from typing import Collection, Iterable, List, Optional, Set

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.validation import check_vertex
from repro.core.deletion_order import r_scores
from repro.core.followers import compute_followers
from repro.core.order_maintenance import OrderState
from repro.core.result import AnchoredCoreResult, IterationRecord
from repro.exceptions import InvalidParameterError

__all__ = ["minimize_anchors_for_growth", "minimize_anchors_for_targets"]


def minimize_anchors_for_growth(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    target_followers: int,
    max_anchors: Optional[int] = None,
) -> AnchoredCoreResult:
    """Place greedy anchors until ``target_followers`` vertices joined.

    Stops early (with ``timed_out=False`` and fewer followers) when no
    remaining candidate can make progress; ``max_anchors`` caps the budget
    outright (default: the number of non-core vertices).
    """
    if target_followers < 0:
        raise InvalidParameterError("target_followers must be >= 0")
    return _greedy_until(graph, alpha, beta,
                         goal=lambda state, base: len(state.core)
                         - len(base) - len(state.anchors) >= target_followers,
                         max_anchors=max_anchors,
                         algorithm="budget-min(growth>=%d)" % target_followers)


def minimize_anchors_for_targets(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    targets: Collection[int],
    max_anchors: Optional[int] = None,
) -> AnchoredCoreResult:
    """Place greedy anchors until every target vertex is in the anchored core.

    Targets already in the base core are satisfied from the start.  The
    greedy scores candidates by how many *unsatisfied targets* they rescue
    (ties by total followers), anchoring a remaining target directly when no
    candidate rescues any — so the loop always terminates with all targets
    in the core (a target that cannot be rescued becomes an anchor, which by
    definition is in the core).
    """
    target_set = set(targets)
    for t in sorted(target_set):
        check_vertex(graph, t)
    return _greedy_until(
        graph, alpha, beta,
        goal=lambda state, base: target_set <= state.core | state.anchors,
        max_anchors=max_anchors,
        algorithm="budget-min(targets)",
        targets=target_set)


def _greedy_until(graph, alpha, beta, goal, max_anchors, algorithm,
                  targets: Optional[Set[int]] = None) -> AnchoredCoreResult:
    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)
    state = OrderState(graph, alpha, beta, maintain=False)
    iterations: List[IterationRecord] = []
    limit = max_anchors if max_anchors is not None \
        else graph.n_vertices - len(base_core)

    while not goal(state, base_core) and len(state.anchors) < limit:
        iter_start = time.perf_counter()
        chosen = _best_anchor(graph, state, targets)
        if chosen is None:
            break
        before = len(state.core)
        state.apply_anchor(chosen)
        iterations.append(IterationRecord(
            anchors=[chosen],
            marginal_followers=len(state.core) - before - 1,
            candidates_total=len(state.upper.position)
            + len(state.lower.position),
            candidates_after_filter=-1, verifications=-1,
            elapsed=time.perf_counter() - iter_start))

    anchors = sorted(state.anchors)
    final_core = anchored_abcore(graph, alpha, beta, anchors)
    ordered_anchors = [a for record in iterations for a in record.anchors]
    return AnchoredCoreResult(
        algorithm=algorithm, alpha=alpha, beta=beta,
        b1=sum(1 for a in anchors if graph.is_upper(a)),
        b2=sum(1 for a in anchors if graph.is_lower(a)),
        anchors=ordered_anchors,
        followers=final_core - base_core - set(anchors),
        base_core_size=len(base_core), final_core_size=len(final_core),
        elapsed=time.perf_counter() - start, iterations=iterations)


def _best_anchor(graph, state: OrderState,
                 targets: Optional[Set[int]]) -> Optional[int]:
    """One greedy step: the candidate with the most valuable follower set."""
    best = None
    best_key = (0, 0)
    for order in (state.upper, state.lower):
        scores = r_scores(graph, order)
        for x in order.candidates(graph):
            if scores.get(x, 0) == 0 and targets is None:
                continue
            followers = compute_followers(graph, order, x, core=state.core)
            if targets is not None:
                unsatisfied = targets - state.core - state.anchors
                key = (len(followers & unsatisfied), len(followers))
            else:
                key = (len(followers), 0)
            if key > best_key:
                best_key = key
                best = x
    if best is not None:
        return best
    if targets is not None:
        remaining = sorted(targets - state.core - state.anchors)
        if remaining:
            return remaining[0]  # anchor an unrescuable target directly
    return None
