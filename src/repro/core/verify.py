"""Independent verification of reinforcement results.

``verify_result`` re-derives everything an :class:`AnchoredCoreResult`
claims — from nothing but the graph and the anchor list — and reports any
discrepancy.  The experiment harness runs it behind the scenes; users can
run it on results they loaded from JSON or received from elsewhere before
acting on a plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph.graph import BipartiteGraph
from repro.core.result import AnchoredCoreResult

__all__ = ["VerificationReport", "verify_result"]


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_result`."""

    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def __str__(self) -> str:
        if self.ok:
            return "result verified: no discrepancies"
        return "result has %d problem(s):\n%s" % (
            len(self.problems),
            "\n".join("  - " + p for p in self.problems))


def verify_result(graph: BipartiteGraph,
                  result: AnchoredCoreResult) -> VerificationReport:
    """Recompute and cross-check every claim in ``result``."""
    report = VerificationReport()
    say = report.problems.append

    # anchors must be valid vertices and respect the budgets
    valid_anchors = []
    for a in result.anchors:
        if a in graph.vertices():
            valid_anchors.append(a)
        else:
            say("anchor %d is not a vertex of the graph" % a)
    if len(set(result.anchors)) != len(result.anchors):
        say("anchor list contains duplicates")
    uppers = sum(1 for a in valid_anchors if graph.is_upper(a))
    lowers = len(valid_anchors) - uppers
    if uppers > result.b1:
        say("%d upper anchors exceed budget b1=%d" % (uppers, result.b1))
    if lowers > result.b2:
        say("%d lower anchors exceed budget b2=%d" % (lowers, result.b2))
    if report.problems:
        return report  # core recomputation would be meaningless

    base = abcore(graph, result.alpha, result.beta)
    final = anchored_abcore(graph, result.alpha, result.beta, result.anchors)
    expected_followers = final - base - set(result.anchors)

    if result.base_core_size != len(base):
        say("base core size is %d, result claims %d"
            % (len(base), result.base_core_size))
    if result.final_core_size != len(final):
        say("final core size is %d, result claims %d"
            % (len(final), result.final_core_size))
    if set(result.followers) != expected_followers:
        missing = expected_followers - set(result.followers)
        extra = set(result.followers) - expected_followers
        say("follower set mismatch (missing %d, extra %d)"
            % (len(missing), len(extra)))
    if result.iterations:
        claimed = sum(r.marginal_followers for r in result.iterations)
        if claimed != len(expected_followers):
            say("iteration marginals sum to %d, actual followers %d"
                % (claimed, len(expected_followers)))
        placed = [a for r in result.iterations for a in r.anchors]
        if sorted(placed) != sorted(result.anchors):
            say("iteration trace places different anchors than the result")
    return report
