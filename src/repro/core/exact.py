"""Exact (brute-force) solver for the anchored (α,β)-core problem.

Enumerates every admissible anchor combination — ``b1`` upper vertices and
``b2`` lower vertices drawn from outside the (α,β)-core — and keeps the
combination with the most followers.  The ``O(C(n1,b1)·C(n2,b2)·m)`` cost is
only practical on tiny instances (the paper evaluates it on the 1.26K-edge
Unicode dataset, Fig. 7(b)); the optional ``max_combinations`` guard makes
accidental blow-ups fail fast instead of hanging.
"""

from __future__ import annotations

import time
from itertools import combinations
from math import comb
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.validation import validate_problem
from repro.exceptions import InvalidParameterError
from repro.core.result import AnchoredCoreResult, IterationRecord

__all__ = ["run_exact"]


def run_exact(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    b1: int,
    b2: int,
    max_combinations: int = 2_000_000,
    deadline: Optional[float] = None,
) -> AnchoredCoreResult:
    """Optimal anchor placement by exhaustive search.

    Candidates are restricted to vertices outside ``C_{α,β}(G)`` (anchoring a
    core vertex changes nothing), which already shrinks the search space a
    lot on dense graphs.  When fewer candidates than the budget exist on a
    layer, all of them are anchored.
    """
    validate_problem(graph, alpha, beta, b1, b2)
    start = time.perf_counter()
    base_core = abcore(graph, alpha, beta)

    # Candidates: non-core vertices with at least one non-core neighbor.
    # Anchoring a vertex whose entire neighborhood already lies in the core
    # (or that has no neighbors) gives no vertex outside the core any new
    # support, under ANY combination of other anchors — so excluding such
    # vertices cannot change the optimal follower count, only which
    # zero-contribution vertices pad the anchor set.
    def _useful(v: int) -> bool:
        return v not in base_core and any(
            w not in base_core for w in graph.neighbors(v))

    upper_candidates = [u for u in graph.upper_vertices() if _useful(u)]
    lower_candidates = [v for v in graph.lower_vertices() if _useful(v)]
    k1 = min(b1, len(upper_candidates))
    k2 = min(b2, len(lower_candidates))

    # An optimal solution may anchor FEWER than b useful vertices (forcing a
    # would-be follower to become an anchor removes it from the objective);
    # the remaining budget is padded with harmless vertices, which never
    # changes the follower count.  So enumerate every subset size up to the
    # budget on each layer.
    total = sum(comb(len(upper_candidates), j) for j in range(k1 + 1)) \
        * sum(comb(len(lower_candidates), j) for j in range(k2 + 1))
    if total > max_combinations:
        raise InvalidParameterError(
            "exact search would enumerate %d combinations (limit %d); "
            "use a greedy algorithm for this instance" % (total, max_combinations))

    best_anchors: Tuple[int, ...] = ()
    best_count = -1
    evaluated = 0
    timed_out = False
    base_size = len(base_core)

    for j1 in range(k1 + 1):
        for upper_pick in combinations(upper_candidates, j1):
            for j2 in range(k2 + 1):
                for lower_pick in combinations(lower_candidates, j2):
                    if deadline is not None \
                            and time.perf_counter() > deadline:
                        timed_out = True
                        break
                    anchors = upper_pick + lower_pick
                    core = anchored_abcore(graph, alpha, beta, anchors)
                    evaluated += 1
                    count = len(core) - base_size - len(anchors)
                    if count > best_count:
                        best_count = count
                        best_anchors = anchors
                if timed_out:
                    break
            if timed_out:
                break
        if timed_out:
            break

    anchors_list: List[int] = list(best_anchors)
    final_core = anchored_abcore(graph, alpha, beta, anchors_list)
    follower_set = final_core - base_core - set(anchors_list)
    elapsed = time.perf_counter() - start
    record = IterationRecord(
        anchors=anchors_list, marginal_followers=len(follower_set),
        candidates_total=len(upper_candidates) + len(lower_candidates),
        candidates_after_filter=len(upper_candidates) + len(lower_candidates),
        verifications=evaluated, elapsed=elapsed)
    return AnchoredCoreResult(
        algorithm="exact", alpha=alpha, beta=beta, b1=b1, b2=b2,
        anchors=anchors_list, followers=follower_set,
        base_core_size=len(base_core), final_core_size=len(final_core),
        elapsed=elapsed, iterations=[record], timed_out=timed_out)
