"""Small shared utilities: timing, deterministic RNG, text rendering."""

from repro.utils.ascii_chart import bar_chart, sparkline
from repro.utils.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.utils.tables import render_series, render_table
from repro.utils.timer import Stopwatch, timed

__all__ = [
    "DEFAULT_SEED",
    "Stopwatch",
    "bar_chart",
    "derive_seed",
    "make_rng",
    "render_series",
    "sparkline",
    "render_table",
    "timed",
]
