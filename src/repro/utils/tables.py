"""Plain-text rendering of result tables and figure series.

The experiment harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent between the CLI, the examples and the
benchmark output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["render_table", "render_series"]


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    materialized: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialized:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series: Mapping[str, Sequence[object]],
                  x_label: str,
                  x_values: Sequence[object],
                  title: str = "") -> str:
    """Render figure-style series as a table with the x axis first."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] if i < len(series[name]) else ""
                           for name in series])
    return render_table(headers, rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return "%.1f" % cell
        return "%.4g" % cell
    return str(cell)
