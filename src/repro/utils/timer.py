"""Tiny timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock measurements.

    >>> sw = Stopwatch()
    >>> with sw.measure("phase-1"):
    ...     pass
    >>> "phase-1" in sw.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> float:
        """Average duration of one named measurement (0.0 when unseen)."""
        count = self.counts.get(name, 0)
        if not count:
            return 0.0
        return self.totals[name] / count

    def report(self) -> str:
        """Multi-line 'name: total (count)' report sorted by cost."""
        lines = []
        for name in sorted(self.totals, key=lambda n: -self.totals[n]):
            lines.append("%-30s %8.3fs  x%d" % (
                name, self.totals[name], self.counts[name]))
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[List[float]]:
    """Context manager yielding a one-element list set to elapsed seconds.

    >>> with timed() as t:
    ...     pass
    >>> t[0] >= 0.0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
