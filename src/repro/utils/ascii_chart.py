"""Terminal-friendly charts for the experiment harness.

The paper's figures are line/bar plots; the harness prints their data as
tables (exact) plus these ASCII charts (shape at a glance, no plotting
dependency).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

__all__ = ["bar_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(values: Mapping[str, float], width: int = 40,
              title: str = "", log: bool = False) -> str:
    """Horizontal bar chart; ``log=True`` scales bars logarithmically.

    >>> print(bar_chart({"a": 2.0, "b": 4.0}, width=4))
    a | ██   2
    b | ████ 4
    """
    if not values:
        return title or "(no data)"
    label_width = max(len(str(k)) for k in values)
    finite = [v for v in values.values() if v == v and v != float("inf")]
    peak = max(finite, default=0.0)
    lines = [title] if title else []
    for key, value in values.items():
        if value != value or value == float("inf"):
            bar, shown = "∞", "TIMEOUT"
        elif peak <= 0:
            bar, shown = "", _fmt(value)
        else:
            if log:
                floor = min(v for v in finite if v > 0) if any(
                    v > 0 for v in finite) else 1.0
                span = math.log10(peak / floor) if peak > floor else 1.0
                frac = (math.log10(max(value, floor) / floor) / span
                        if span else 1.0)
            else:
                frac = value / peak
            bar = "█" * max(1 if value > 0 else 0, int(round(frac * width)))
            shown = _fmt(value)
        lines.append("%-*s | %-*s %s" % (label_width, key, width, bar, shown))
    return "\n".join(lines)


def sparkline(series: Sequence[float]) -> str:
    """One-line trend glyph for a numeric series.

    >>> sparkline([1, 2, 3])
    '▁▄█'
    """
    if not series:
        return ""
    low = min(series)
    high = max(series)
    if high == low:
        return _SPARK_LEVELS[0] * len(series)
    out = []
    for value in series:
        idx = int((value - low) / (high - low) * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return "%.3g" % value
