"""Deterministic randomness helpers.

Every generator in :mod:`repro.generators` takes an integer seed and derives
an isolated ``random.Random`` from it, so dataset surrogates are reproducible
across processes and Python versions (``random.Random`` is stable for the
methods used here).
"""

from __future__ import annotations

import random
from typing import Optional, Union

__all__ = ["make_rng", "derive_seed"]


def make_rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    """Return a ``random.Random``: pass through instances, seed integers."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a stable child seed from a parent seed and labels.

    Uses a simple polynomial hash over the label reprs; avoids ``hash()``
    which is salted per process for strings.
    """
    acc = seed & 0xFFFFFFFF
    for label in labels:
        for ch in repr(label):
            acc = (acc * 1000003 + ord(ch)) & 0xFFFFFFFF
    return acc
