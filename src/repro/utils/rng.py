"""Deterministic randomness helpers.

Every generator in :mod:`repro.generators` takes an integer seed and derives
an isolated ``random.Random`` from it, so dataset surrogates are reproducible
across processes and Python versions (``random.Random`` is stable for the
methods used here).
"""

from __future__ import annotations

import random
from typing import Optional, Union

__all__ = ["DEFAULT_SEED", "make_rng", "derive_seed"]

#: Seed used when a caller passes ``None``: runs are reproducible by
#: default, and nondeterminism requires an explicit opt-in (pass your own
#: entropy-seeded ``random.Random``).
DEFAULT_SEED = 20220509  # ICDE 2022 opening day


def make_rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    """Return a ``random.Random``: pass through instances, seed integers.

    ``None`` seeds with :data:`DEFAULT_SEED` rather than OS entropy, so
    every generator in :mod:`repro.generators` is deterministic unless the
    caller explicitly provides varied seeds.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return random.Random(seed)


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a stable child seed from a parent seed and labels.

    Uses a simple polynomial hash over the label reprs; avoids ``hash()``
    which is salted per process for strings.
    """
    acc = seed & 0xFFFFFFFF
    for label in labels:
        for ch in repr(label):
            acc = (acc * 1000003 + ord(ch)) & 0xFFFFFFFF
    return acc
