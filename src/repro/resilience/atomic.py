"""Crash-safe file writes: temp file in the target directory, fsync, rename.

A campaign killed mid-write must never leave a truncated artifact behind —
a half-written checkpoint or CSV is worse than none, because a later resume
or analysis step would silently trust it.  Every path-taking writer in this
repository (:func:`repro.experiments.export.write_json` /
:func:`~repro.experiments.export.write_csv`,
:func:`repro.bigraph.io.write_edge_list`, and the checkpoint writer) funnels
through the two helpers here:

* the temp file lives in the *same directory* as the target, so the final
  ``os.replace`` is an atomic same-filesystem rename;
* the data is flushed and fsynced to disk before the rename, so a crash
  right after the rename cannot expose an empty file;
* on any failure the temp file is removed and the previous target (if any)
  is left untouched.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Callable, Iterator, Optional

__all__ = ["atomic_writer", "atomic_write_text"]


def _fsync_path(path: str) -> None:
    """Flush ``path``'s contents to disk via a short-lived read descriptor.

    Opening a fresh descriptor works for writers (gzip) that must be fully
    closed before their output is complete.
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(
    path: "os.PathLike[str] | str",
    opener: Optional[Callable[[str], IO[str]]] = None,
) -> Iterator[IO[str]]:
    """Context manager yielding a text handle whose contents replace ``path``
    atomically on success (and are discarded entirely on failure).

    ``opener`` customizes how the temp file is opened (e.g. gzip for ``.gz``
    targets); it receives the temp path and must return a writable text
    handle.  The default opens plain UTF-8 text.
    """
    target = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(target))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp")
    os.close(fd)
    try:
        if opener is None:
            handle: IO[str] = open(tmp_path, "w", encoding="utf-8", newline="")
        else:
            handle = opener(tmp_path)
        try:
            yield handle
        finally:
            handle.close()
        _fsync_path(tmp_path)
        os.replace(tmp_path, target)
    except BaseException:
        # Boundary site: any failure (including KeyboardInterrupt mid-write)
        # must remove the temp file before the exception continues.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: "os.PathLike[str] | str", text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    with atomic_writer(path) as handle:
        handle.write(text)
