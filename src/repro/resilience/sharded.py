"""Composable checkpoints for component-sharded campaigns.

A sharded campaign (:mod:`repro.core.sharded`) makes progress in two id
spaces at once: global greedy iterations (anchors in the full graph's ids)
and per-shard order-maintenance state (anchors in each shard's local ids).
Its checkpoint mirrors that split:

* one **envelope** file at the requested path — the familiar
  :class:`~repro.resilience.checkpoint.CampaignCheckpoint` payload holding
  global progress, wrapped in a checksummed JSON envelope with the distinct
  schema marker ``"sharded-1"`` (so a plain :func:`load_checkpoint` refuses
  it cleanly, and vice versa), plus the shard count and each shard's local
  graph fingerprint;
* one **per-shard** file next to it (``<path>.shard-<k>.json``) — a
  standard schema-1 :class:`CampaignCheckpoint` over the shard's *local*
  graph: local-id anchors, local per-iteration batches, local budget use.
  Each is independently loadable and validatable with the ordinary
  checkpoint tooling.

The envelope is written **last**, after every shard file, so a crash
mid-save leaves the previous envelope pointing at the previous consistent
shard set (a shard file may be one iteration ahead; resume detects and
ignores that).  The global record in the envelope is authoritative: a
missing, corrupt, or stale shard file never blocks a resume — the engine
degrades to replaying that shard's batches from the envelope's global
iteration records (with a warning), mirroring how the parallel evaluator
buries a dead worker and recomputes its chunk.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.exceptions import CheckpointError
from repro.resilience.atomic import atomic_write_text
from repro.resilience.checkpoint import (
    CHECKPOINT_WRITE_BACKOFF,
    CampaignCheckpoint,
    _checksum,
)
from repro.resilience.faults import fault_site
from repro.resilience.retry import Backoff, retry

__all__ = [
    "SHARDED_CHECKPOINT_SCHEMA",
    "ShardedCampaignCheckpoint",
    "load_sharded_checkpoint",
    "shard_checkpoint_path",
]

#: Deliberately a string, not an int: plain-checkpoint loaders compare
#: against ``CHECKPOINT_SCHEMA = 1`` and reject this marker outright.
SHARDED_CHECKPOINT_SCHEMA = "sharded-1"


def shard_checkpoint_path(path: Union[str, "os.PathLike[str]"],
                          index: int) -> str:
    """File name of shard ``index``'s checkpoint next to envelope ``path``."""
    return "%s.shard-%d.json" % (os.fspath(path), index)


@dataclass
class ShardedCampaignCheckpoint:
    """Envelope-level view of a sharded campaign's progress.

    ``campaign`` carries the global progress in global vertex ids — the
    same payload an unsharded run would checkpoint, which is what makes
    the envelope self-sufficient for resume.  ``shards`` is the shard
    count the saved plan was built with and ``shard_fingerprints[k]`` the
    structure fingerprint of shard ``k``'s local graph; both let a resume
    decide whether the per-shard files match its own plan before trusting
    them.
    """

    campaign: CampaignCheckpoint
    shards: int
    shard_fingerprints: List[str] = field(default_factory=list)

    def to_payload(self) -> Dict[str, object]:
        """The JSON-safe envelope body (without the checksum wrapper)."""
        return {
            "campaign": self.campaign.to_payload(),
            "shards": self.shards,
            "shard_fingerprints": list(self.shard_fingerprints),
        }

    @classmethod
    def from_payload(
            cls, payload: Dict[str, object]) -> "ShardedCampaignCheckpoint":
        """Rebuild the envelope from a parsed payload dict."""
        try:
            return cls(
                campaign=CampaignCheckpoint.from_payload(
                    payload["campaign"]),  # type: ignore[arg-type]
                shards=int(payload["shards"]),  # type: ignore[arg-type]
                shard_fingerprints=[
                    str(f) for f in payload["shard_fingerprints"]],  # type: ignore[union-attr]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                "malformed sharded checkpoint payload: %s" % error) from error

    def save(self, path: Union[str, "os.PathLike[str]"],
             shard_checkpoints: Sequence[CampaignCheckpoint],
             backoff: Optional[Backoff] = None,
             sleep: Callable[[float], None] = time.sleep) -> None:
        """Persist every shard file, then the envelope, all atomically.

        Write order is the crash-safety contract: shard files first, the
        envelope last, so a readable envelope always refers to shard files
        that are at least as new as itself.  Every file write — each shard
        checkpoint and the envelope — is retried on transient ``OSError``
        with deterministic backoff
        (:data:`repro.resilience.checkpoint.CHECKPOINT_WRITE_BACKOFF`),
        with the ``checkpoint.write`` fault site firing once per attempt.
        """
        if len(shard_checkpoints) != len(self.shard_fingerprints):
            raise CheckpointError(
                "got %d shard checkpoints for %d recorded fingerprints"
                % (len(shard_checkpoints), len(self.shard_fingerprints)))
        for index, shard_checkpoint in enumerate(shard_checkpoints):
            shard_checkpoint.save(shard_checkpoint_path(path, index),
                                  backoff=backoff, sleep=sleep)
        payload = self.to_payload()
        envelope = {
            "schema": SHARDED_CHECKPOINT_SCHEMA,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        text = json.dumps(envelope, indent=2, sort_keys=True) + "\n"

        def _write() -> None:
            fault_site("checkpoint.write")
            atomic_write_text(path, text)

        retry(_write, backoff=backoff or CHECKPOINT_WRITE_BACKOFF,
              retry_on=(OSError,), sleep=sleep)

    def validate_for(self, graph, alpha: int, beta: int, b1: int, b2: int,
                     options: Dict[str, object]) -> None:
        """Refuse to resume against a different graph or problem.

        Delegates to the embedded global checkpoint — shard count and
        grouping are deliberately *not* validated here, because they do
        not affect results; a resume under a different plan simply falls
        back to envelope replay for every shard.
        """
        self.campaign.validate_for(graph, alpha, beta, b1, b2, options)


def load_sharded_checkpoint(
        path: Union[str, "os.PathLike[str]"]) -> ShardedCampaignCheckpoint:
    """Read and verify a sharded-campaign envelope (schema + checksum)."""
    fault_site("checkpoint.load")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except OSError as error:
        raise CheckpointError(
            "cannot read sharded checkpoint %s: %s" % (path, error)) from error
    except json.JSONDecodeError as error:
        raise CheckpointError(
            "sharded checkpoint %s is not valid JSON (truncated write?): %s"
            % (path, error)) from error
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise CheckpointError(
            "sharded checkpoint %s has no payload envelope" % path)
    schema = envelope.get("schema")
    if schema != SHARDED_CHECKPOINT_SCHEMA:
        raise CheckpointError(
            "checkpoint %s has schema %r; expected %r (plain campaign "
            "checkpoints resume through run_engine, not the sharded path)"
            % (path, schema, SHARDED_CHECKPOINT_SCHEMA))
    payload = envelope["payload"]
    if envelope.get("checksum") != _checksum(payload):
        raise CheckpointError(
            "sharded checkpoint %s failed its checksum; the file is corrupt"
            % path)
    return ShardedCampaignCheckpoint.from_payload(payload)
