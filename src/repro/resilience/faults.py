"""Deterministic fault injection for resilience tests.

Long-campaign robustness claims ("a killed run resumes losslessly", "one
crashing method does not take down the suite") are only testable if faults
can be provoked *exactly* where and when the test wants them — no timing
races, no monkeypatching of internals.  This module provides that:

* production code marks each potential failure point with a cheap
  ``fault_site("name")`` call (a no-op unless a plan is active);
* tests build a :class:`FaultPlan` of :class:`FaultSpec` entries — *raise
  this exception at the Nth call of that site* — and activate it with a
  ``with plan.active():`` block.

Everything is counted, nothing is timed: a plan built from a seed via
:meth:`FaultPlan.from_seed` draws its injection points from
:func:`repro.utils.rng.make_rng`, so even "randomized" fault campaigns
replay identically.

Instrumented sites (see ``docs/RESILIENCE.md``):

=========================  ===============================================
site                       where it fires
=========================  ===============================================
``engine.filter``          start of each engine filter stage (1/iteration)
``engine.verify``          start of each engine verification stage
``checkpoint.write``       right before a campaign checkpoint is persisted
``io.read_edge_list``      entry of the edge-list loader (both backends)
``export.write``           entry of ``write_json`` / ``write_csv``
``runner.run_method``      entry of ``experiments.runner.run_method``
``parallel.dispatch``      parent side, before a chunk is sent to a worker
``parallel.chunk``         worker side, at the start of a received chunk
``service.admit``          service submission, before admission control
``service.dispatch``       service supervisor, before each job attempt
``service.heartbeat``      each supervision sweep of the service monitor
``service.result``         supervisor, before a finished result is posted
``service.cache_persist``  before each on-disk cache-entry write
=========================  ===============================================

The two ``parallel.*`` sites span a process boundary: ``run_engine``
forwards any active plan's ``parallel.``-prefixed specs into each worker,
where they replay against that worker's own counters (see
``docs/PARALLEL.md`` for how worker faults degrade).  The five
``service.*`` sites drive the campaign-service chaos suite
(``tests/test_service_faults.py``; see ``docs/SERVICE.md``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

from repro.exceptions import FaultInjected, InvalidParameterError

__all__ = ["FaultSpec", "FaultPlan", "fault_site", "active_plan",
           "deactivate_inherited_plan"]

#: What a spec raises: an exception instance, class, or zero-arg factory.
FaultFactory = Union[BaseException, Type[BaseException],
                     Callable[[], BaseException]]


@dataclass(frozen=True)
class FaultSpec:
    """Raise ``exc`` at the ``call``-th invocation (1-based) of ``site``."""

    site: str
    call: int = 1
    exc: Optional[FaultFactory] = None

    def __post_init__(self) -> None:
        if self.call < 1:
            raise InvalidParameterError(
                "fault call index must be >= 1, got %d" % self.call)

    def build(self) -> BaseException:
        """Instantiate the exception this spec injects."""
        exc = self.exc
        if exc is None:
            return FaultInjected("injected fault at %s#%d"
                                 % (self.site, self.call))
        if isinstance(exc, BaseException):
            return exc
        return exc()


@dataclass
class FaultPlan:
    """A deterministic schedule of injected faults, activated as a context.

    The plan keeps per-site call counters and a ``fired`` log, so a test can
    assert both *that* a fault fired and *when*.  Activation does not nest:
    exactly one plan may be active per process at a time (the instrumented
    sites are global), and :func:`fault_site` is O(1) when no plan is active.
    """

    specs: List[FaultSpec] = field(default_factory=list)
    calls: Dict[str, int] = field(default_factory=dict)
    fired: List[Tuple[str, int]] = field(default_factory=list)

    def add(self, site: str, call: int = 1,
            exc: Optional[FaultFactory] = None) -> "FaultPlan":
        """Append one injection; returns ``self`` for chaining."""
        self.specs.append(FaultSpec(site, call, exc))
        return self

    @classmethod
    def from_seed(cls, seed: int, sites: Sequence[str], n_faults: int = 1,
                  max_call: int = 5,
                  exc: Optional[FaultFactory] = None) -> "FaultPlan":
        """A seeded random plan: ``n_faults`` draws of (site, call index).

        Two processes building a plan from the same seed get the same plan —
        randomized fault campaigns stay replayable.
        """
        from repro.utils.rng import make_rng

        if not sites:
            raise InvalidParameterError("from_seed needs at least one site")
        rng = make_rng(seed)
        plan = cls()
        for _ in range(n_faults):
            plan.add(rng.choice(list(sites)), rng.randint(1, max_call), exc)
        return plan

    def call_count(self, site: str) -> int:
        """How many times ``site`` was reached while this plan was active."""
        return self.calls.get(site, 0)

    def _hit(self, site: str) -> None:
        count = self.calls.get(site, 0) + 1
        self.calls[site] = count
        for spec in self.specs:
            if spec.site == site and spec.call == count:
                self.fired.append((site, count))
                raise spec.build()

    @contextmanager
    def active(self) -> Iterator["FaultPlan"]:
        """Activate this plan for the duration of the ``with`` block."""
        global _ACTIVE
        if _ACTIVE is not None:
            raise InvalidParameterError(
                "a FaultPlan is already active; plans do not nest")
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = None


_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, if any (introspection for tests)."""
    return _ACTIVE


def deactivate_inherited_plan() -> None:
    """Forget a plan inherited across ``fork`` (worker processes only).

    A forked worker starts with the parent's ``_ACTIVE`` global still set;
    the counters in that plan belong to the parent and must not be shared.
    Workers call this once at startup before activating their own plan.
    """
    global _ACTIVE
    _ACTIVE = None


def fault_site(name: str) -> None:
    """Mark a potential failure point; near-zero cost without an active plan.

    Instrumented production code calls this unconditionally; the active
    :class:`FaultPlan` (if any) counts the call and raises when a spec's
    call index is reached.
    """
    plan = _ACTIVE
    if plan is not None:
        plan._hit(name)
