"""Campaign checkpoints: snapshot engine progress, resume deterministically.

A FILVER campaign on a KONECT-scale graph runs for hours; a crash at hour N
must not throw away every anchor already verified.  After each iteration the
engine can persist a :class:`CampaignCheckpoint` — everything needed to
replay the campaign's effects without redoing its verification work:

* the problem identity: algorithm, (α, β), budgets, engine options, and a
  SHA-256 fingerprint of the graph structure;
* the progress: anchors placed (in order), per-iteration records, the upper
  budget consumed, accumulated wall-clock time, and whether the greedy loop
  already exhausted its candidates.

Resuming replays ``apply_anchors`` per recorded iteration — the exact call
sequence the original run made — so the restored order-maintenance state,
and therefore every subsequent candidate ranking, is identical to the
uninterrupted run's.  Replay equivalence is asserted in
``tests/test_faults.py`` for a fault injected at every iteration boundary,
on both adjacency backends.

The file format is a checksummed JSON envelope (see ``docs/RESILIENCE.md``
for the schema); writes are atomic via :mod:`repro.resilience.atomic`.  A
checkpoint refuses to resume against a different graph, constraints,
budgets, or engine configuration.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import CheckpointError

if TYPE_CHECKING:
    # Runtime import would cycle: repro.bigraph.io → repro.resilience →
    # here → repro.core → ... → repro.resilience.checkpoint.
    from repro.core.result import IterationRecord
from repro.resilience.atomic import atomic_write_text
from repro.resilience.faults import fault_site
from repro.resilience.retry import Backoff, retry

__all__ = ["CHECKPOINT_SCHEMA", "CHECKPOINT_WRITE_BACKOFF",
           "CampaignCheckpoint", "graph_fingerprint", "load_checkpoint"]

#: Bump when the payload layout changes; loaders reject other versions.
CHECKPOINT_SCHEMA = 1

#: Default retry policy for checkpoint persistence.  Checkpoints are the
#: one artifact whose loss costs hours (a failed report write loses a
#: file; a failed checkpoint write loses the crash-recovery story), so
#: every save absorbs up to two transient ``OSError``\ s before giving up.
CHECKPOINT_WRITE_BACKOFF = Backoff(attempts=3, base=0.05)


def graph_fingerprint(graph: BipartiteGraph) -> str:
    """SHA-256 of the graph *structure* (layer sizes + edge set).

    Both adjacency backends number vertices identically, so a graph and its
    ``to_csr()`` twin share a fingerprint; labels are deliberately excluded
    (they never influence the algorithms).
    """
    digest = hashlib.sha256()
    digest.update(b"bip %d %d %d\n"
                  % (graph.n_upper, graph.n_lower, graph.n_edges))
    chunk: List[str] = []
    for u, v in graph.edges():
        chunk.append("%d %d" % (u, v))
        if len(chunk) >= 4096:
            digest.update("\n".join(chunk).encode("ascii"))
            chunk.clear()
    if chunk:
        digest.update("\n".join(chunk).encode("ascii"))
    return "sha256:%s" % digest.hexdigest()


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict[str, object]) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


@dataclass
class CampaignCheckpoint:
    """Engine progress after some prefix of greedy iterations."""

    algorithm: str
    alpha: int
    beta: int
    b1: int
    b2: int
    options: Dict[str, object]
    graph_fingerprint: str
    anchors: List[int] = field(default_factory=list)
    upper_used: int = 0
    iterations: List[IterationRecord] = field(default_factory=list)
    exhausted: bool = False
    elapsed: float = 0.0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """The JSON-safe checkpoint body (without the checksum envelope)."""
        return {
            "algorithm": self.algorithm,
            "alpha": self.alpha,
            "beta": self.beta,
            "b1": self.b1,
            "b2": self.b2,
            "options": dict(self.options),
            "graph_fingerprint": self.graph_fingerprint,
            "anchors": list(self.anchors),
            "upper_used": self.upper_used,
            "iterations": [record.to_dict() for record in self.iterations],
            "exhausted": self.exhausted,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CampaignCheckpoint":
        """Rebuild a checkpoint from a parsed payload dict."""
        from repro.core.result import IterationRecord

        try:
            return cls(
                algorithm=str(payload["algorithm"]),
                alpha=int(payload["alpha"]),  # type: ignore[arg-type]
                beta=int(payload["beta"]),  # type: ignore[arg-type]
                b1=int(payload["b1"]),  # type: ignore[arg-type]
                b2=int(payload["b2"]),  # type: ignore[arg-type]
                options=dict(payload["options"]),  # type: ignore[arg-type]
                graph_fingerprint=str(payload["graph_fingerprint"]),
                anchors=[int(a) for a in payload["anchors"]],  # type: ignore[union-attr]
                upper_used=int(payload["upper_used"]),  # type: ignore[arg-type]
                iterations=[IterationRecord.from_dict(d)
                            for d in payload["iterations"]],  # type: ignore[union-attr]
                exhausted=bool(payload["exhausted"]),
                elapsed=float(payload["elapsed"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                "malformed checkpoint payload: %s" % error) from error

    def save(self, path: Union[str, "os.PathLike[str]"],
             backoff: Optional[Backoff] = None,
             sleep: Callable[[float], None] = time.sleep) -> None:
        """Atomically persist this checkpoint (checksummed JSON envelope).

        The write is wrapped in :func:`repro.resilience.retry.retry`
        (:data:`CHECKPOINT_WRITE_BACKOFF` unless ``backoff`` overrides it):
        a transient ``OSError`` — flaky NFS, a busy volume — is retried
        with deterministic backoff instead of killing the campaign, and the
        ``checkpoint.write`` fault site fires once per *attempt* so the
        fault-injection suite can exercise both the absorbed-transient and
        the exhausted-retries path.  ``sleep`` is injectable for tests.
        """
        payload = self.to_payload()
        envelope = {
            "schema": CHECKPOINT_SCHEMA,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        text = json.dumps(envelope, indent=2, sort_keys=True) + "\n"

        def _write() -> None:
            fault_site("checkpoint.write")
            atomic_write_text(path, text)

        retry(_write, backoff=backoff or CHECKPOINT_WRITE_BACKOFF,
              retry_on=(OSError,), sleep=sleep)

    # ------------------------------------------------------------------
    # Resume-time validation
    # ------------------------------------------------------------------

    def validate_for(self, graph: BipartiteGraph, alpha: int, beta: int,
                     b1: int, b2: int, options: Dict[str, object]) -> None:
        """Refuse to resume against a different graph or problem.

        Raises :class:`CheckpointError` naming the first mismatch: graph
        fingerprint, (α, β), budgets, or engine options.
        """
        fingerprint = graph_fingerprint(graph)
        if fingerprint != self.graph_fingerprint:
            raise CheckpointError(
                "checkpoint was taken on a different graph "
                "(fingerprint %s != %s)"
                % (self.graph_fingerprint, fingerprint))
        expected = {"alpha": alpha, "beta": beta, "b1": b1, "b2": b2}
        recorded = {"alpha": self.alpha, "beta": self.beta,
                    "b1": self.b1, "b2": self.b2}
        if expected != recorded:
            raise CheckpointError(
                "checkpoint problem parameters %s do not match the resumed "
                "call %s" % (recorded, expected))
        if dict(options) != dict(self.options):
            raise CheckpointError(
                "checkpoint engine options %s do not match the resumed "
                "configuration %s" % (dict(self.options), dict(options)))


def load_checkpoint(
        path: Union[str, "os.PathLike[str]"]) -> CampaignCheckpoint:
    """Read and verify a checkpoint file (schema + checksum)."""
    fault_site("checkpoint.load")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except OSError as error:
        raise CheckpointError(
            "cannot read checkpoint %s: %s" % (path, error)) from error
    except json.JSONDecodeError as error:
        raise CheckpointError(
            "checkpoint %s is not valid JSON (truncated write?): %s"
            % (path, error)) from error
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise CheckpointError("checkpoint %s has no payload envelope" % path)
    schema = envelope.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            "checkpoint %s has schema version %r; this build reads version %d"
            % (path, schema, CHECKPOINT_SCHEMA))
    payload = envelope["payload"]
    if envelope.get("checksum") != _checksum(payload):
        raise CheckpointError(
            "checkpoint %s failed its checksum; the file is corrupt" % path)
    return CampaignCheckpoint.from_payload(payload)
