"""Bounded retry with deterministic exponential backoff.

Long experiment campaigns write artifacts (checkpoints, CSV/JSON exports,
reports) to network filesystems where transient ``OSError`` is a fact of
life.  :func:`retry` re-runs a callable a bounded number of times with
exponential backoff; the clock is injected so tests use a fake one — the
fault-injection suite contains no ``time.sleep`` and no wall-clock timing.

The backoff sequence is fully deterministic (no jitter): retries are about
surviving transient faults, and this repository's reproducibility bar (see
the ``determinism`` analysis rule) extends to its failure handling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.exceptions import InvalidParameterError

__all__ = ["Backoff", "retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff policy: ``base * multiplier**i``, capped.

    ``attempts`` counts *total* tries, so ``attempts=3`` means one initial
    try plus up to two retries, sleeping ``delays()`` seconds in between.
    """

    attempts: int = 3
    base: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise InvalidParameterError(
                "attempts must be >= 1, got %d" % self.attempts)
        if self.base < 0 or self.multiplier < 1 or self.max_delay < 0:
            raise InvalidParameterError(
                "backoff delays must be non-negative and non-shrinking")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``attempts - 1`` values)."""
        delay = self.base
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier


def retry(
    fn: Callable[[], T],
    backoff: Backoff = Backoff(),
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call ``fn`` until it succeeds or the attempt budget is exhausted.

    Only exceptions matching ``retry_on`` are retried; anything else
    propagates immediately.  The final failing exception propagates
    unchanged once attempts run out.  ``sleep`` is injectable (pass a fake
    for tests); ``on_retry(attempt, exc)`` is notified before each sleep.
    """
    delays = backoff.delays()
    for attempt in range(1, backoff.attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == backoff.attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(next(delays))
    raise AssertionError("unreachable")
