"""Cooperative termination: turn SIGTERM into graceful degradation.

``kill <pid>`` (the default, polite form) delivers ``SIGTERM`` — and
Python's default disposition is to die on the spot, which throws away a
campaign exactly like a crash would.  :class:`TerminationFlag` converts the
signal into a *checkable flag*: the engine polls it at iteration boundaries
and finalizes the verified best-so-far result (``interrupted=True``,
checkpoint already flushed for every completed iteration) instead of
leaving a dead process.

Signal handlers can only be installed from the main thread of the main
interpreter; elsewhere :meth:`TerminationFlag.install` is a documented
no-op (the flag simply never sets) so callers — notably service worker
threads, whose process-level signal handling lives in
:mod:`repro.service` — do not need to special-case their thread identity.
The previous handler is restored on :meth:`TerminationFlag.restore`, and
the flag can also be set programmatically with
:meth:`TerminationFlag.set`, which is what makes the behavior testable
without ever delivering a real signal.
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import Iterable, Optional

__all__ = ["TerminationFlag"]


class TerminationFlag:
    """A context manager mapping termination signals onto an event.

    While installed, each configured signal (default: ``SIGTERM``) sets an
    internal :class:`threading.Event` instead of killing the process.  The
    code being protected polls :meth:`is_set` at its own safe points —
    nothing is raised asynchronously, so no invariant can be torn mid-update.
    """

    def __init__(self,
                 signals: Iterable[int] = (signal.SIGTERM,)) -> None:
        self._signals = tuple(signals)
        self._event = threading.Event()
        self._previous: dict = {}
        self._installed = False

    def _handler(self, signum: int,
                 frame: Optional[FrameType]) -> None:
        self._event.set()

    def install(self) -> "TerminationFlag":
        """Install the handlers; a no-op outside the main thread."""
        if self._installed:
            return self
        if threading.current_thread() is not threading.main_thread():
            return self
        try:
            for signum in self._signals:
                self._previous[signum] = signal.signal(signum, self._handler)
        except ValueError:
            # Non-main interpreter or exotic embedding: same contract as
            # the non-main-thread case — the flag just never fires.
            self._previous.clear()
            return self
        self._installed = True
        return self

    def restore(self) -> None:
        """Put the previous handlers back; safe to call twice."""
        if not self._installed:
            return
        self._installed = False
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()

    def set(self) -> None:
        """Set the flag programmatically (tests, in-process drains)."""
        self._event.set()

    def is_set(self) -> bool:
        """Whether a configured signal arrived (or :meth:`set` was called)."""
        return self._event.is_set()

    def __enter__(self) -> "TerminationFlag":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.restore()
