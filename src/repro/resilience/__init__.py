"""Resilience layer: checkpoint/resume, crash-safe writes, fault injection.

Long reinforcement campaigns (hours on KONECT-scale graphs) must survive
crashes, OOM, and Ctrl-C without losing verified progress.  This package
holds the pieces, each usable on its own:

* :mod:`repro.resilience.atomic` — write-temp/fsync/rename file writes;
* :mod:`repro.resilience.checkpoint` — :class:`CampaignCheckpoint` with a
  graph fingerprint, checksummed persistence, and resume validation;
* :mod:`repro.resilience.faults` — deterministic seeded fault injection
  (:class:`FaultPlan` + instrumented ``fault_site`` calls);
* :mod:`repro.resilience.retry` — bounded deterministic backoff for
  transient artifact-write failures;
* :mod:`repro.resilience.signals` — :class:`TerminationFlag`, the
  cooperative SIGTERM latch behind ``run_engine(handle_sigterm=True)``
  and the campaign service's graceful drain.

The engine hooks (``run_engine(checkpoint=..., resume_from=...)``, graceful
``interrupted=True`` degradation, :class:`repro.exceptions.AbortCampaign`)
are documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from repro.resilience.atomic import atomic_write_text, atomic_writer
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CampaignCheckpoint,
    graph_fingerprint,
    load_checkpoint,
)
from repro.resilience.faults import FaultPlan, FaultSpec, active_plan, fault_site
from repro.resilience.retry import Backoff, retry
from repro.resilience.signals import TerminationFlag
from repro.resilience.sharded import (
    SHARDED_CHECKPOINT_SCHEMA,
    ShardedCampaignCheckpoint,
    load_sharded_checkpoint,
    shard_checkpoint_path,
)

__all__ = [
    "atomic_write_text",
    "atomic_writer",
    "CHECKPOINT_SCHEMA",
    "SHARDED_CHECKPOINT_SCHEMA",
    "CampaignCheckpoint",
    "ShardedCampaignCheckpoint",
    "graph_fingerprint",
    "load_checkpoint",
    "load_sharded_checkpoint",
    "shard_checkpoint_path",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "fault_site",
    "Backoff",
    "retry",
    "TerminationFlag",
]
