"""Upper/lower shells and potential followers (Definitions 4–6).

* upper shell  ``S_up(G)  = C_{α,β-1}(G) \\ C_{α,β}(G)``
* lower shell  ``S_low(G) = C_{α-1,β}(G) \\ C_{α,β}(G)``

A degree constraint of ``β - 1 = 0`` (or ``α - 1 = 0``) means "no constraint"
on that layer, which the peeling engine handles natively (a threshold of 0 is
never violated).  The shells bound where followers can come from: anchoring
an upper vertex only rescues vertices of the upper shell, and symmetrically
for the lower side — the basis of the filter stage.
"""

from __future__ import annotations

from typing import Collection, Optional, Set, Tuple

from repro.abcore.decomposition import anchored_abcore, validate_degree_constraints
from repro.bigraph.graph import BipartiteGraph

__all__ = [
    "upper_shell",
    "lower_shell",
    "potential_followers",
    "promising_anchors",
]


def upper_shell(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int] = (),
    core: Optional[Set[int]] = None,
) -> Set[int]:
    """Vertices of ``C_{α,β-1}(G_A) \\ C_{α,β}(G_A)`` (both layers included)."""
    validate_degree_constraints(alpha, beta)
    if core is None:
        core = anchored_abcore(graph, alpha, beta, anchors)
    relaxed = anchored_abcore(graph, alpha, beta - 1, anchors)
    return relaxed - core


def lower_shell(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int] = (),
    core: Optional[Set[int]] = None,
) -> Set[int]:
    """Vertices of ``C_{α-1,β}(G_A) \\ C_{α,β}(G_A)`` (both layers included)."""
    validate_degree_constraints(alpha, beta)
    if core is None:
        core = anchored_abcore(graph, alpha, beta, anchors)
    relaxed = anchored_abcore(graph, alpha - 1, beta, anchors)
    return relaxed - core


def potential_followers(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int] = (),
) -> Set[int]:
    """Union of the upper and lower shells (Definition 5)."""
    core = anchored_abcore(graph, alpha, beta, anchors)
    return (upper_shell(graph, alpha, beta, anchors, core)
            | lower_shell(graph, alpha, beta, anchors, core))


def promising_anchors(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int] = (),
) -> Tuple[Set[int], Set[int]]:
    """Promising upper and lower anchors (Definition 6).

    Upper promising anchors are upper vertices outside the (anchored) core
    adjacent to the upper shell: ``N(S_up) \\ C_{α,β}`` intersected with the
    upper layer, plus the upper-shell's own upper vertices (which are in
    ``C_{α,β-1}`` and can likewise be anchored).  Symmetrically for the lower
    side.  Returned as ``(upper_candidates, lower_candidates)``.
    """
    core = anchored_abcore(graph, alpha, beta, anchors)
    placed = set(anchors)
    s_up = upper_shell(graph, alpha, beta, anchors, core)
    s_low = lower_shell(graph, alpha, beta, anchors, core)

    neighbors = graph.neighbors  # hoisted: one row fetch per shell vertex
    is_upper = graph.is_upper
    is_lower = graph.is_lower
    upper_candidates: Set[int] = set()
    for v in s_up:
        if is_upper(v):
            upper_candidates.add(v)
        for w in neighbors(v):
            if is_upper(w) and w not in core:
                upper_candidates.add(w)
    lower_candidates: Set[int] = set()
    for v in s_low:
        if is_lower(v):
            lower_candidates.add(v)
        for w in neighbors(v):
            if is_lower(w) and w not in core:
                lower_candidates.add(w)
    return upper_candidates - placed, lower_candidates - placed
