"""Linear-time (anchored) (α,β)-core computation by iterative peeling.

The (α,β)-core (Definition 1 of the paper) is the maximal subgraph in which
every upper vertex has degree at least ``α`` and every lower vertex degree at
least ``β``.  *Anchored* vertices (Definition 2) are exempt from the degree
constraints — they are never peeled and keep supporting their neighbors, which
is how the anchored (α,β)-core ``C_{α,β}(G_A)`` is obtained.

Everything here works on a vertex *set* level: peeling never mutates the
graph; it tracks alive flags and residual degrees.  All functions accept an
optional ``subset`` restricting computation to an induced subgraph, which the
order-maintenance optimization (Algorithm 4) relies on.
"""

from __future__ import annotations

from typing import Collection, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.bigraph.csr import adjacency_arrays
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = [
    "abcore",
    "anchored_abcore",
    "followers",
    "peel_with_order",
    "delta",
    "validate_degree_constraints",
]


def validate_degree_constraints(alpha: int, beta: int) -> None:
    """Reject negative degree constraints.

    The anchored (α,β)-core *problem* assumes α, β ≥ 1, but the substrate
    accepts 0 (an unconstrained layer) because shell computation peels to the
    (α,β-1)- and (α-1,β)-cores, which may have a 0 on one side.
    """
    if alpha < 0 or beta < 0:
        raise InvalidParameterError(
            "degree constraints must be >= 0, got alpha=%d beta=%d" % (alpha, beta))


def _peel(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int],
    subset: Optional[Iterable[int]],
    record_order: bool,
) -> Tuple[Set[int], List[int]]:
    """Shared peeling worker.

    Returns the surviving vertex set and (when ``record_order``) the list of
    deleted vertices in deletion order.  Deletion proceeds in rounds — all
    currently violating vertices are queued, processed FIFO, and cascading
    violations join the back of the queue — which matches the
    ``OrderComputation`` procedure (Algorithm 2, Lines 17-22).
    """
    adj = graph.adjacency
    n_upper = graph.n_upper
    n = graph.n_vertices
    anchor_set = frozenset(anchors)
    queue: List[int] = []

    if subset is None:
        alive = bytearray(b"\x01") * n
        arrays = adjacency_arrays(graph)
        if arrays is not None:
            # CSR backend: the cached degree buffer replaces a full row scan.
            deg = arrays[2].tolist()
        else:
            deg = list(map(len, adj))
        # Seed the queue layer by layer (avoids a per-vertex layer branch).
        for v in range(n_upper):
            if deg[v] < alpha and v not in anchor_set:
                queue.append(v)
                alive[v] = 0
        for v in range(n_upper, n):
            if deg[v] < beta and v not in anchor_set:
                queue.append(v)
                alive[v] = 0
        members: Optional[List[int]] = None
    else:
        alive = bytearray(n)
        deg = [0] * n
        # Sorted so the round-robin seed order is a canonical function of the
        # subset *as a set*: callers pass regions and relaxed cores built in
        # whatever order their traversal produced, and the deletion order must
        # not depend on that history.  Id-ascending seeding also makes the
        # subset path consistent with the full-graph path above — which is
        # what lets a component-local peel reproduce the global peel's
        # relative order under monotone renumbering (repro.core.sharded).
        members = sorted(subset)
        for v in members:
            alive[v] = 1
        alive_at = alive.__getitem__
        for v in members:
            # sum(map(...)) keeps this hot loop in C.
            deg[v] = sum(map(alive_at, adj[v]))
        for v in members:  # hot-loop
            if v in anchor_set:
                continue
            threshold = alpha if v < n_upper else beta
            if deg[v] < threshold:
                queue.append(v)
                alive[v] = 0

    head = 0
    push = queue.append
    while head < len(queue):  # hot-loop
        v = queue[head]
        head += 1
        for w in adj[v]:
            if not alive[w]:
                continue
            deg[w] -= 1
            if w in anchor_set:
                continue
            threshold = alpha if w < n_upper else beta
            if deg[w] < threshold:
                alive[w] = 0
                push(w)

    if members is None:
        from itertools import compress

        survivors = set(compress(range(n), alive))
    else:
        survivors = {v for v in members if alive[v]}
    order = queue if record_order else []
    return survivors, order


def _fast_full_core(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int],
) -> Optional[Set[int]]:
    """Vectorized full-graph core for CSR-backed graphs, or ``None``.

    The CSR buffers wrap zero-copy into numpy (when installed), so routing
    full-graph core queries through :mod:`repro.abcore.accel` costs no
    conversion — this is where the CSR backend's decomposition speedup
    comes from.  Subset peels stay scalar: they run over small regions
    where numpy's per-call overhead dominates.
    """
    if adjacency_arrays(graph) is None:
        return None
    from repro.abcore import accel

    if not accel.available():
        return None
    return accel.fast_anchored_abcore(graph, alpha, beta, anchors)


def abcore(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    subset: Optional[Iterable[int]] = None,
) -> Set[int]:
    """Vertex set of the (α,β)-core ``C_{α,β}(G)``.

    When ``subset`` is given, computes the core of the induced subgraph —
    note that this is *not* generally the intersection of the global core
    with the subset.
    """
    validate_degree_constraints(alpha, beta)
    if subset is None:
        fast = _fast_full_core(graph, alpha, beta, ())
        if fast is not None:
            return fast
    survivors, _ = _peel(graph, alpha, beta, (), subset, record_order=False)
    return survivors


def anchored_abcore(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int],
    subset: Optional[Iterable[int]] = None,
) -> Set[int]:
    """Vertex set of the anchored (α,β)-core ``C_{α,β}(G_A)``.

    Anchors are included in the result regardless of degree (the paper's
    "degree set to +∞" convention).
    """
    validate_degree_constraints(alpha, beta)
    if subset is None:
        fast = _fast_full_core(graph, alpha, beta, anchors)
        if fast is not None:
            return fast
    survivors, _ = _peel(graph, alpha, beta, anchors, subset, record_order=False)
    return survivors


def followers(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int],
    base_core: Optional[Set[int]] = None,
) -> Set[int]:
    """Followers of an anchor set (Definition 3), computed globally.

    ``F(A) = C_{α,β}(G_A) \\ (C_{α,β}(G) ∪ A)``.  Pass ``base_core`` when
    ``C_{α,β}(G)`` is already known to avoid recomputing it.  This is the
    reference implementation every optimized follower computation is tested
    against.
    """
    if base_core is None:
        base_core = abcore(graph, alpha, beta)
    anchored = anchored_abcore(graph, alpha, beta, anchors)
    return anchored - base_core - set(anchors)


def peel_with_order(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int],
    subset: Optional[Iterable[int]] = None,
) -> Tuple[Set[int], List[int]]:
    """Peel ``subset`` (default: whole graph) to the anchored (α,β)-core.

    Returns ``(core_vertices, deleted_in_order)``; the second component is
    the raw material for the upper/lower deletion orders of Section III.
    """
    validate_degree_constraints(alpha, beta)
    return _peel(graph, alpha, beta, anchors, subset, record_order=True)


def delta(graph: BipartiteGraph) -> int:
    """The dataset statistic δ: the maximum k such that the (k,k)-core exists.

    Matches Table II of the paper.  Computed by peeling with increasing k,
    reusing the shrinking survivor set so total work stays near-linear for
    the skewed graphs this library targets.
    """
    k = 0
    survivors: Optional[Set[int]] = None
    while True:
        next_k = k + 1
        if survivors is None:
            # Full-graph level: eligible for the CSR/numpy fast path.
            nxt = abcore(graph, next_k, next_k)
        else:
            nxt, _ = _peel(graph, next_k, next_k, (), survivors,
                           record_order=False)
        if not nxt:
            return k
        k = next_k
        survivors = nxt
