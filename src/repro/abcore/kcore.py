"""Unipartite k-core utilities.

The anchored (α,β)-core problem degenerates to a unipartite problem when
``α = β`` is small: the paper's Theorem 1 notes that the (2,2)-core equals the
2-core of the graph viewed as unipartite, where the anchored 2-core problem is
polynomial-time solvable.  This module supplies the k-core machinery used by
that special case and by tests that cross-check the bipartite peeling against
a generic implementation.

Graphs here are plain adjacency dicts ``{vertex: set(neighbors)}``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.bigraph.graph import BipartiteGraph

__all__ = ["k_core", "core_numbers", "bipartite_as_unipartite", "anchored_two_core_followers"]

Adjacency = Dict[Hashable, Set[Hashable]]


def k_core(adjacency: Adjacency, k: int,
           anchors: Iterable[Hashable] = ()) -> Set[Hashable]:
    """Vertex set of the k-core (anchors exempt from the degree constraint)."""
    anchor_set = set(anchors)
    deg = {v: len(neigh) for v, neigh in adjacency.items()}
    alive = {v: True for v in adjacency}
    queue: List[Hashable] = [v for v in adjacency
                             if deg[v] < k and v not in anchor_set]
    for v in queue:
        alive[v] = False
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        for w in adjacency[v]:
            if not alive[w]:
                continue
            deg[w] -= 1
            if deg[w] < k and w not in anchor_set:
                alive[w] = False
                queue.append(w)
    return {v for v, ok in alive.items() if ok}


def core_numbers(adjacency: Adjacency) -> Dict[Hashable, int]:
    """Classic Batagelj–Zaveršnik core decomposition (bucket peeling)."""
    deg = {v: len(neigh) for v, neigh in adjacency.items()}
    if not deg:
        return {}
    max_deg = max(deg.values())
    buckets: List[List[Hashable]] = [[] for _ in range(max_deg + 1)]
    for v, d in deg.items():
        buckets[d].append(v)
    result: Dict[Hashable, int] = {}
    current = 0
    removed: Set[Hashable] = set()
    pending = len(deg)
    while pending:
        while current <= max_deg and not buckets[current]:
            current += 1
        v = buckets[current].pop()
        if v in removed or deg[v] != current:
            # Stale bucket entry: the vertex moved to a lower bucket already.
            if v in removed:
                continue
            buckets[deg[v]].append(v)
            continue
        result[v] = current
        removed.add(v)
        pending -= 1
        for w in adjacency[v]:
            if w in removed:
                continue
            if deg[w] > current:
                deg[w] -= 1
                buckets[deg[w]].append(w)
                if deg[w] < current:
                    current = deg[w]
    return result


def bipartite_as_unipartite(graph: BipartiteGraph) -> Adjacency:
    """View a bipartite graph as a generic graph on its global vertex ids.

    Works for both adjacency backends: CSR rows are ``memoryview`` slices,
    which ``set()`` consumes directly.
    """
    neighbors = graph.neighbors
    return {v: set(neighbors(v)) for v in graph.vertices()}


def anchored_two_core_followers(
    graph: BipartiteGraph,
    anchors: Iterable[int],
) -> Set[int]:
    """Followers of an anchor set under the (2,2)-core ≡ 2-core equivalence.

    Used by tests to confirm the Theorem-1 observation that the bipartite
    machinery agrees with plain k-core when α = β = 2.
    """
    adjacency = bipartite_as_unipartite(graph)
    base = k_core(adjacency, 2)
    anchored = k_core(adjacency, 2, anchors)
    return set(anchored) - set(base) - set(anchors)
