"""(α,β)-core substrate: peeling, core numbers, shells, unipartite k-core."""

from repro.abcore.core_numbers import lower_core_numbers, upper_core_numbers
from repro.abcore.index import CoreIndex
from repro.abcore.decomposition import (
    abcore,
    anchored_abcore,
    delta,
    followers,
    peel_with_order,
)
from repro.abcore.kcore import core_numbers, k_core
from repro.abcore.shells import (
    lower_shell,
    potential_followers,
    promising_anchors,
    upper_shell,
)

__all__ = [
    "CoreIndex",
    "abcore",
    "anchored_abcore",
    "core_numbers",
    "delta",
    "followers",
    "k_core",
    "lower_core_numbers",
    "lower_shell",
    "peel_with_order",
    "potential_followers",
    "promising_anchors",
    "upper_core_numbers",
    "upper_shell",
]
