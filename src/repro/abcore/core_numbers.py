"""Upper/lower core numbers (Definition 10) for the order-maintenance stage.

The upper core number of a vertex ``u`` is the largest ``k`` such that
``u ∈ (α,k)-core``; the lower core number is the largest ``k`` with
``u ∈ (k,β)-core``.  Algorithm 4 only ever compares core numbers against
values below the target constraint, so this module computes *capped* core
numbers: every vertex still in the anchored (α,β)-core — anchors included —
receives the cap (``β`` on the upper side, ``α`` on the lower side), exactly
as Algorithm 4, Line 8 prescribes.
"""

from __future__ import annotations

from typing import Collection, Dict, Iterable, List, Optional

from repro.abcore.decomposition import anchored_abcore, validate_degree_constraints
from repro.bigraph.graph import BipartiteGraph

__all__ = ["upper_core_numbers", "lower_core_numbers", "core_number_of"]


def _capped_core_numbers(
    graph: BipartiteGraph,
    fixed: int,
    cap: int,
    anchors: Collection[int],
    vary_upper_side: bool,
    subset: Optional[Iterable[int]] = None,
    start_level: int = 0,
) -> Dict[int, int]:
    """Peel with an increasing varied constraint and record drop-out levels.

    ``fixed`` is the constraint on the non-varied layer; the varied constraint
    sweeps ``start_level + 1 .. cap``.  A vertex removed while raising the
    varied constraint to ``k`` gets core number ``k - 1``; survivors of the
    final round get ``cap``.  Each round peels only within the previous
    round's survivors, so the sweep costs a small constant number of passes.

    ``start_level > 0`` asserts that every subset member already belongs to
    the varied-``start_level`` core of the subset (true for the affected
    graphs of Algorithm 4, whose members all have core number ≥ the placed
    anchor's) — the sweep then skips the lower levels entirely.
    """
    members = None if subset is None else list(subset)
    numbers: Dict[int, int] = {
        v: start_level
        for v in (graph.vertices() if members is None else members)}
    # The first round runs on the full graph when no subset was given, which
    # keeps it eligible for the CSR/numpy fast path in anchored_abcore.
    survivors: Optional[Iterable[int]] = members
    for k in range(start_level + 1, cap + 1):
        if vary_upper_side:
            alpha, beta = fixed, k
        else:
            alpha, beta = k, fixed
        core = anchored_abcore(graph, alpha, beta, anchors, survivors)
        for v in core:
            numbers[v] = k
        if not core:
            break
        survivors = core
    return numbers


def upper_core_numbers(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int] = (),
    subset: Optional[Iterable[int]] = None,
    start_level: int = 0,
) -> Dict[int, int]:
    """``core_U`` capped at ``β``: ``min(β, max{k | v ∈ (α,k)-core of G_A})``.

    Anchors never peel and therefore always receive the cap.
    """
    validate_degree_constraints(alpha, beta)
    return _capped_core_numbers(graph, alpha, beta, anchors,
                                vary_upper_side=True, subset=subset,
                                start_level=start_level)


def lower_core_numbers(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int] = (),
    subset: Optional[Iterable[int]] = None,
    start_level: int = 0,
) -> Dict[int, int]:
    """``core_L`` capped at ``α``: ``min(α, max{k | v ∈ (k,β)-core of G_A})``."""
    validate_degree_constraints(alpha, beta)
    return _capped_core_numbers(graph, beta, alpha, anchors,
                                vary_upper_side=False, subset=subset,
                                start_level=start_level)


def core_number_of(
    graph: BipartiteGraph,
    vertex: int,
    alpha: int,
    beta: int,
    upper_side: bool,
    anchors: Collection[int] = (),
) -> int:
    """Capped core number of a single vertex (reference/testing helper)."""
    table = (upper_core_numbers if upper_side else lower_core_numbers)(
        graph, alpha, beta, anchors)
    return table[vertex]
