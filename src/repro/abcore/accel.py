"""Vectorized (numpy) (α,β)-core peeling — the scale escape hatch.

Pure-Python peeling is the reproduction's known bottleneck (the paper's
artifact is C++).  This module provides a round-synchronous, numpy-vectorized
peel that computes the exact same cores 10-50× faster on large graphs:
each round removes *all* currently violating vertices at once and updates
degrees with one scatter-add over the affected edges.  Round-synchronous
deletion converges to the same unique (α,β)-core as vertex-at-a-time peeling
(the core is the unique maximal fixed point; `tests/test_accel.py` checks
equality on random graphs).

numpy is optional: :func:`available` reports whether the fast path can be
used, and the Naive greedy — whose cost is one global peel per candidate —
takes an ``accel="auto"`` knob that picks it up automatically.

The FILVER family does not use this path: its peels run over small subsets
(orders, affected graphs) where numpy's per-call overhead dominates.
"""

from __future__ import annotations

from typing import Collection, Optional, Set, Tuple

from repro.bigraph.csr import adjacency_arrays
from repro.bigraph.graph import BipartiteGraph

try:  # pragma: no cover - exercised implicitly by available()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["available", "CsrCache", "fast_anchored_abcore", "fast_abcore",
           "fast_delta"]

import weakref

_csr_cache: "weakref.WeakKeyDictionary[BipartiteGraph, Tuple[object, object, object]]" \
    = weakref.WeakKeyDictionary()


def available() -> bool:
    """Whether the numpy fast path can be used."""
    return _np is not None


class CsrCache:
    """Per-graph CSR arrays (indptr, indices, edge-source), built lazily.

    Entries are held in a ``WeakKeyDictionary`` keyed by the (immutable)
    graph itself, so they are dropped exactly when the graph is collected.

    A CSR-backed graph already holds the flat buffers; those wrap into numpy
    zero-copy via the buffer protocol (``indptr`` stays int64, ``indices``
    int32).  Only list-backed graphs pay the row-by-row conversion.
    """

    @staticmethod
    def get(graph: BipartiteGraph):
        hit = _csr_cache.get(graph)
        if hit is not None:
            return hit
        if _np is None:  # pragma: no cover - guarded by available()
            raise RuntimeError("numpy is not available")
        arrays = adjacency_arrays(graph)
        if arrays is not None:
            offsets, neighbor_buf, degree_buf = arrays
            indptr = _np.asarray(offsets)
            indices = _np.asarray(neighbor_buf)
            edge_src = _np.repeat(
                _np.arange(graph.n_vertices, dtype=_np.int64),
                _np.asarray(degree_buf, dtype=_np.int64))
        else:
            degrees = [len(row) for row in graph.adjacency]
            indptr = _np.zeros(graph.n_vertices + 1, dtype=_np.int64)
            _np.cumsum(_np.asarray(degrees, dtype=_np.int64), out=indptr[1:])
            indices = _np.empty(int(indptr[-1]), dtype=_np.int64)
            position = 0
            for row in graph.adjacency:
                indices[position:position + len(row)] = row
                position += len(row)
            edge_src = _np.repeat(
                _np.arange(graph.n_vertices, dtype=_np.int64), degrees)
        # Every caller shares these cached arrays (and in the CSR branch
        # they may alias the graph's own buffers): freeze them so a stray
        # in-place op raises instead of corrupting the graph for everyone.
        indptr.setflags(write=False)
        indices.setflags(write=False)
        edge_src.setflags(write=False)
        entry = (indptr, indices, edge_src)
        _csr_cache[graph] = entry
        return entry


def fast_anchored_abcore(
    graph: BipartiteGraph,
    alpha: int,
    beta: int,
    anchors: Collection[int] = (),
) -> Set[int]:
    """Anchored (α,β)-core via round-synchronous vectorized peeling."""
    if _np is None:  # pragma: no cover
        raise RuntimeError("numpy is not available; use anchored_abcore")
    n = graph.n_vertices
    if n == 0:
        return set()
    indptr, indices, edge_src = CsrCache.get(graph)

    thresholds = _np.full(n, beta, dtype=_np.int64)
    thresholds[:graph.n_upper] = alpha
    exempt = _np.zeros(n, dtype=bool)
    anchor_list = list(anchors)
    if anchor_list:
        exempt[_np.asarray(anchor_list, dtype=_np.int64)] = True

    deg = (indptr[1:] - indptr[:-1]).astype(_np.int64)
    alive = _np.ones(n, dtype=bool)

    # Each round removes all violating vertices, gathers exactly their
    # adjacency slices (the multi-slice arange trick), and decrements the
    # touched neighbors via unique-with-counts.  Every edge is processed at
    # most twice over the whole peel and each round costs O(t log t) in the
    # round's touched edges t — not O(n) (a per-round bincount over all
    # vertices loses badly on long cascade tails of small waves).
    removing = _np.flatnonzero(~exempt & (deg < thresholds))
    while removing.size:
        alive[removing] = False
        starts = indptr[removing]
        counts = indptr[removing + 1] - starts
        nonempty = counts > 0
        starts, counts = starts[nonempty], counts[nonempty]
        if starts.size:
            boundaries = _np.cumsum(counts)
            seq = _np.ones(int(boundaries[-1]), dtype=_np.int64)
            seq[0] = starts[0]
            seq[boundaries[:-1]] = starts[1:] - starts[:-1] - counts[:-1] + 1
            touched = indices[_np.cumsum(seq)]
            affected, hits = _np.unique(touched, return_counts=True)
            deg[affected] -= hits
            mask = (alive[affected] & ~exempt[affected]
                    & (deg[affected] < thresholds[affected]))
            removing = affected[mask]
        else:
            removing = _np.empty(0, dtype=_np.int64)
    return set(_np.flatnonzero(alive).tolist())


def fast_abcore(graph: BipartiteGraph, alpha: int, beta: int) -> Set[int]:
    """(α,β)-core via the vectorized peel."""
    return fast_anchored_abcore(graph, alpha, beta, ())


def fast_delta(graph: BipartiteGraph) -> int:
    """δ (max k with a non-empty (k,k)-core) via the vectorized peel.

    Unlike :func:`repro.abcore.decomposition.delta` this recomputes from the
    full graph per level; the vectorized constant keeps it competitive and
    the implementation trivially correct.
    """
    k = 0
    while True:
        if not fast_abcore(graph, k + 1, k + 1):
            return k
        k += 1
