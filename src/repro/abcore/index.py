"""Full (α,β)-core decomposition index (the structure of Liu et al., WWW'19).

The paper's (α,β)-core computations (reference [19]) are index-based: for
every vertex ``v`` and every ``α``, store the maximal ``β`` such that
``v ∈ (α,β)-core``.  With that table any (α,β)-core query is answered in
output time, δ falls out directly, and sweeps over many (α,β) settings (the
Fig. 9 experiments; parameter exploration by users) stop re-peeling the
graph from scratch.

The index is built by one peel sweep per α level — ``O(δ·m)`` overall, since
the survivor set shrinks as α grows — and is immutable afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.abcore.decomposition import abcore, peel_with_order
from repro.bigraph.graph import BipartiteGraph
from repro.exceptions import InvalidParameterError

__all__ = ["CoreIndex"]


class CoreIndex:
    """Queryable full (α,β)-core decomposition of one bipartite graph.

    Build once with :meth:`build`; then

    * :meth:`core` — any (α,β)-core vertex set, no peeling;
    * :meth:`max_beta` — the largest β with ``v ∈ (α,β)-core``;
    * :meth:`vertex_profile` — a vertex's full (α, max-β) staircase;
    * :meth:`delta` — the Table-II δ statistic;
    * :meth:`alpha_max` — the largest α with a non-empty (α,1)-core.
    """

    def __init__(self, graph: BipartiteGraph,
                 levels: List[Dict[int, int]]) -> None:
        self._graph = graph
        # levels[a-1][v] = max beta with v in (a, beta)-core; vertices not in
        # the (a,1)-core are absent from the dict.
        self._levels = levels

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, graph: BipartiteGraph) -> "CoreIndex":
        """Build the index with one increasing-β sweep per α level."""
        levels: List[Dict[int, int]] = []
        alpha = 1
        survivors: Optional[Set[int]] = None
        while True:
            level = cls._beta_profile(graph, alpha, survivors)
            if not level:
                break
            levels.append(level)
            survivors = set(level)
            alpha += 1
        return cls(graph, levels)

    @staticmethod
    def _beta_profile(graph: BipartiteGraph, alpha: int,
                      within: Optional[Set[int]]) -> Dict[int, int]:
        """``{v: max beta}`` for one α, peeling β upward until empty."""
        profile: Dict[int, int] = {}
        if within is None:
            # Full-graph level (α = 1): eligible for the CSR/numpy fast path.
            current: Set[int] = abcore(graph, alpha, 1)
        else:
            current, _ = peel_with_order(graph, alpha, 1, (), within)
        beta = 1
        while current:
            for v in current:
                profile[v] = beta
            beta += 1
            current, _ = peel_with_order(graph, alpha, beta, (), current)
        return profile

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def graph(self) -> BipartiteGraph:
        return self._graph

    def alpha_max(self) -> int:
        """Largest α such that the (α,1)-core is non-empty."""
        return len(self._levels)

    def max_beta(self, v: int, alpha: int) -> int:
        """Largest β with ``v ∈ (α,β)-core`` (0 when v is in none)."""
        if alpha < 1:
            raise InvalidParameterError("alpha must be >= 1")
        if alpha > len(self._levels):
            return 0
        return self._levels[alpha - 1].get(v, 0)

    def core(self, alpha: int, beta: int) -> Set[int]:
        """The (α,β)-core vertex set, answered from the index."""
        if alpha < 1 or beta < 1:
            raise InvalidParameterError(
                "index queries need alpha, beta >= 1, got (%d, %d)"
                % (alpha, beta))
        if alpha > len(self._levels):
            return set()
        level = self._levels[alpha - 1]
        return {v for v, max_beta in level.items() if max_beta >= beta}

    def vertex_profile(self, v: int) -> List[Tuple[int, int]]:
        """``[(α, max β)]`` for every α level that still contains ``v``.

        The staircase is non-increasing in α — a handy engagement summary
        of a single user/item.
        """
        profile = []
        for alpha_minus_1, level in enumerate(self._levels):
            max_beta = level.get(v)
            if max_beta is None:
                break
            profile.append((alpha_minus_1 + 1, max_beta))
        return profile

    def delta(self) -> int:
        """Max k with a non-empty (k,k)-core (Table II's δ)."""
        best = 0
        for alpha_minus_1, level in enumerate(self._levels):
            alpha = alpha_minus_1 + 1
            if any(max_beta >= alpha for max_beta in level.values()):
                best = alpha
        return best

    def shell_sizes(self, alpha: int) -> Dict[int, int]:
        """``{β: |(α,β)-core| - |(α,β+1)-core|}`` — the β-shell histogram."""
        if alpha < 1 or alpha > len(self._levels):
            return {}
        histogram: Dict[int, int] = {}
        for max_beta in self._levels[alpha - 1].values():
            histogram[max_beta] = histogram.get(max_beta, 0) + 1
        return histogram
