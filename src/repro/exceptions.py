"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from :class:`ReproError`
so that callers can catch library failures with a single ``except`` clause
while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphConstructionError",
    "InvalidParameterError",
    "DatasetError",
    "ExperimentError",
    "CheckpointError",
    "AbortCampaign",
    "FaultInjected",
    "ServiceError",
    "AdmissionError",
    "QuarantinedJobError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphConstructionError(ReproError):
    """Raised when a bipartite graph cannot be built from the given input."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when algorithm parameters (alpha, beta, budgets, t) are invalid."""


class DatasetError(ReproError):
    """Raised when a dataset surrogate cannot be generated or located."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""


class CheckpointError(ReproError):
    """Raised when a campaign checkpoint cannot be written, read, or safely
    resumed (corrupt file, schema mismatch, or a different graph/problem)."""


class AbortCampaign(ReproError):
    """Raised by an ``on_iteration`` observer to stop a campaign gracefully.

    The engine treats it as a controlled stop: the best-so-far result is
    finalized and returned with ``interrupted=True`` instead of the
    exception propagating (see ``docs/RESILIENCE.md``).
    """


class FaultInjected(ReproError):
    """Default exception raised by the deterministic fault-injection harness
    (:mod:`repro.resilience.faults`) when a plan does not specify one."""


class ServiceError(ReproError):
    """Base class for campaign-service failures (:mod:`repro.service`):
    draining shutdowns, unusable persisted queue state, jobs that the
    service could not carry to completion."""


class AdmissionError(ServiceError):
    """Raised when the campaign service refuses to accept a job: the
    service is draining, the pending queue is full, or the memory budget
    cannot ever accommodate the job (see ``docs/SERVICE.md``)."""


class QuarantinedJobError(ServiceError):
    """Raised by :meth:`repro.service.JobHandle.result` for a poison job.

    Carries the job's structured :class:`repro.service.FailureRecord` list
    in ``failures`` so callers can inspect every attempt that was made
    before the job was quarantined.
    """

    def __init__(self, message: str, failures=()):  # type: ignore[no-untyped-def]
        super().__init__(message)
        #: The per-attempt failure records accumulated before quarantine.
        self.failures = list(failures)
