#!/usr/bin/env python3
"""Attack-and-defend: collapse analysis plus targeted reinforcement.

Combines three parts of the library the paper's related work connects:

1. *attack* — find the critical core vertices whose loss collapses the most
   of the (α,β)-core (the collapsed-core dual, `repro.core.collapse`);
2. *impact* — measure that collapse as a departure cascade
   (`repro.dynamics`);
3. *defense* — compute the cheapest greedy anchor plan that keeps the
   collapsed vertices in the core even after the attack
   (`repro.core.budget_min`).

Run:  python examples/attack_and_defend.py
"""

from repro.abcore import abcore
from repro.bigraph import remove_vertices
from repro.core.budget_min import minimize_anchors_for_targets
from repro.core.collapse import collapse_size, critical_vertices
from repro.dynamics import simulate_cascade
from repro.generators import chung_lu_bipartite

ALPHA, BETA = 3, 2


def main() -> None:
    graph = chung_lu_bipartite(n_upper=150, n_lower=100, n_edges=520, seed=21)
    core = abcore(graph, ALPHA, BETA)
    print("network: %s" % graph)
    print("stable core at (%d,%d): %d vertices" % (ALPHA, BETA, len(core)))

    # --- attack: which 2 members hurt the most if they leave? -----------
    attack = critical_vertices(graph, ALPHA, BETA, budget=2)
    print("\nmost critical core members:", attack.removed)
    print("their departure collapses the core %d -> %d"
          % (attack.base_core_size, attack.final_core_size))

    cascade = simulate_cascade(graph, ALPHA, BETA, attack.removed)
    print("as a cascade: %d departures over %d waves"
          % (cascade.departed, cascade.n_rounds))

    # --- defense: keep the collateral damage in the core ----------------
    collateral = sorted(core - cascade.survivors - set(attack.removed))
    if not collateral:
        print("\nno collateral damage to defend against — core is robust")
        return
    print("\ncollateral members to protect: %d" % len(collateral))

    # Plan on the *attacked* graph (the critical vertices gone) — in the
    # intact graph the collateral is still comfortably in the core and no
    # anchors would be needed.  remove_vertices keeps original ids as
    # labels, so the plan maps back to the original graph.
    attacked = remove_vertices(graph, attack.removed)
    target_ids = []
    for v in collateral[:10]:
        layer = "upper" if graph.is_upper(v) else "lower"
        try:
            target_ids.append(attacked.vertex_of(layer, v))
        except KeyError:
            continue  # the victim itself
    plan = minimize_anchors_for_targets(attacked, ALPHA, BETA, target_ids)
    plan_original = [graph.vertex_of(
        "upper" if attacked.is_upper(a) else "lower",
        attacked.label_of(a)) for a in plan.anchors]
    print("defense plan: anchor %d vertices %s"
          % (len(plan_original), plan_original))

    # --- re-run the attack with the defense in place --------------------
    defended = simulate_cascade(graph, ALPHA, BETA, attack.removed,
                                anchors=plan_original)
    saved = cascade.departed - defended.departed
    print("\nre-running the attack with the defense: %d departures "
          "(was %d) — %d members saved"
          % (defended.departed, cascade.departed, saved))


if __name__ == "__main__":
    main()
