#!/usr/bin/env python3
"""Reinforcing a plant-pollinator network against extinction cascades (§I, app 2).

The paper's second application: in a mutualistic network, the (α,β)-core is
the resilient nucleus — each plant relying on at least α animals, each animal
on at least β plants.  Conservation effort ("anchoring" species by improving
their habitat) can expand that nucleus and blunt extinction cascades.

This example

1. generates a plant-animal network (skewed, like real pollination webs);
2. picks conservation targets with FILVER;
3. simulates the same extinction shock with and without the conservation
   program and reports the species saved.

Run:  python examples/mutualistic_network.py
"""

import random

from repro import abcore, reinforce
from repro.dynamics import resilience_gain, simulate_cascade
from repro.generators import chung_lu_bipartite

ALPHA, BETA = 3, 2   # plants need >= 3 pollinators; animals >= 2 food plants


def main() -> None:
    graph = chung_lu_bipartite(n_upper=120, n_lower=80, n_edges=420, seed=13)
    print("mutualistic network: %d plants, %d animals, %d interactions"
          % (graph.n_upper, graph.n_lower, graph.n_edges))

    core = abcore(graph, ALPHA, BETA)
    print("resilient nucleus (the (%d,%d)-core): %d species"
          % (ALPHA, BETA, len(core)))

    # Conservation program: protect 3 plants and 3 animals.
    plan = reinforce(graph, ALPHA, BETA, b1=3, b2=3, method="filver")
    plants = plan.upper_anchors(graph.n_upper)
    animals = plan.lower_anchors(graph.n_upper)
    print("\nconservation targets: plants %s, animals %s"
          % (plants, [a - graph.n_upper for a in animals]))
    print("species added to the nucleus: %d" % plan.n_followers)

    # Extinction shock: a random 10% of species outside the nucleus die off.
    rng = random.Random(99)
    outside = [v for v in graph.vertices() if v not in core]
    shock = rng.sample(outside, max(1, len(outside) // 10))
    print("\nsimulating an extinction shock of %d species..." % len(shock))

    unprotected = simulate_cascade(graph, ALPHA, BETA, shock)
    print("  without protection: %d species leave over %d cascade waves"
          % (unprotected.departed, unprotected.n_rounds))

    protected = simulate_cascade(graph, ALPHA, BETA, shock,
                                 anchors=plan.anchors)
    print("  with protection   : %d species leave over %d waves"
          % (protected.departed, protected.n_rounds))

    report = resilience_gain(graph, ALPHA, BETA, shock, plan.anchors)
    print("\nsurvivors: %d -> %d (the program saves %d species beyond the "
          "%d it protects directly)"
          % (report["unprotected"], report["protected"], report["gain"],
             len(plan.anchors)))


if __name__ == "__main__":
    main()
