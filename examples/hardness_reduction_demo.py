#!/usr/bin/env python3
"""The NP-hardness proof, executed: Maximum Coverage as anchored (α,β)-core.

Theorem 1 reduces Maximum Coverage to the anchored (α,β)-core problem via
gadget graphs (element gadgets B_i, all-or-nothing trees R_j, a biclique J).
This demo builds the reduction for a small MC instance, solves both sides
exactly, and shows the correspondence the proof relies on: the optimal
anchors are exactly the roots of the trees for an optimal MC set selection.

Run:  python examples/hardness_reduction_demo.py
"""

from itertools import combinations

from repro.abcore import abcore, anchored_abcore
from repro.core import (
    MaxCoverageInstance,
    reduce_max_coverage,
    solve_max_coverage_exact,
)

ALPHA, BETA = 3, 2


def main() -> None:
    instance = MaxCoverageInstance(
        n_elements=5,
        sets=(frozenset({0, 1}), frozenset({1, 2, 3}),
              frozenset({3, 4}), frozenset({0, 4})),
        budget=2)
    print("Maximum Coverage instance:")
    for j, s in enumerate(instance.sets):
        print("  T_%d = %s" % (j, sorted(s)))
    mc_opt, mc_pick = solve_max_coverage_exact(instance)
    print("MC optimum: cover %d elements with sets %s" % (mc_opt, mc_pick))

    red = reduce_max_coverage(instance, alpha=ALPHA, beta=BETA)
    g = red.graph
    print("\nreduced anchored (%d,%d)-core instance: %s" % (ALPHA, BETA, g))
    print("tree gadget size %d, element gadget size %d"
          % (red.tree_size, red.gadget_size))

    base = abcore(g, ALPHA, BETA)
    print("base core (the biclique J): %d vertices" % len(base))

    best = (-1, ())
    for pick in combinations(range(len(instance.sets)), instance.budget):
        anchors = [red.roots[j] for j in pick]
        f = anchored_abcore(g, ALPHA, BETA, anchors) - base - set(anchors)
        if len(f) > best[0]:
            best = (len(f), pick)
    followers, pick = best
    print("\nbest root-anchor pair: trees %s -> %d followers" % (pick,
                                                                 followers))
    predicted = (instance.budget * (red.tree_size - 1)
                 + mc_opt * red.gadget_size)
    print("predicted from MC optimum: %d * (|R|-1) + %d * |B| = %d"
          % (instance.budget, mc_opt, predicted))
    assert followers == predicted
    covered = set()
    for j in pick:
        covered |= instance.sets[j]
    print("\nanchoring the roots of %s covers elements %s — the same "
          "selection\nthat solves Maximum Coverage. QED, executably."
          % (pick, sorted(covered)))


if __name__ == "__main__":
    main()
