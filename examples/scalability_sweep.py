#!/usr/bin/env python3
"""Scalability sweep: the "billion scale" trend at laptop sizes.

The paper's synthetic experiment runs FILVER/FILVER+/FILVER++ on a
1.9-billion-edge Erdős–Rényi graph.  A pure-Python laptop run cannot hold
that graph, but the *shape* that makes it feasible — near-linear growth of
the filter–verification algorithms versus the explosive growth of Naive —
shows up at any scale.  This sweep doubles the edge count several times and
prints the trend.

Run:  python examples/scalability_sweep.py [max_edges]
"""

import sys
import time

from repro import reinforce
from repro.experiments.runner import default_constraints
from repro.generators import erdos_renyi_bipartite


def main() -> None:
    max_edges = int(sys.argv[1]) if len(sys.argv) > 1 else 32_000
    sizes = []
    m = 2000
    while m <= max_edges:
        sizes.append(m)
        m *= 2

    print("%10s %10s %12s %12s %12s" % ("edges", "vertices", "filver",
                                        "filver+", "filver++"))
    naive_shown = False
    for m in sizes:
        n = max(200, m // 8)
        graph = erdos_renyi_bipartite(n, n, n_edges=m, seed=2022)
        alpha, beta = default_constraints(graph)
        times = {}
        for method in ("filver", "filver+", "filver++"):
            start = time.perf_counter()
            reinforce(graph, alpha, beta, 5, 5, method=method, t=5)
            times[method] = time.perf_counter() - start
        print("%10d %10d %11.2fs %11.2fs %11.2fs"
              % (m, graph.n_vertices, times["filver"], times["filver+"],
                 times["filver++"]))
        if not naive_shown and m <= 2000:
            start = time.perf_counter()
            reinforce(graph, alpha, beta, 5, 5, method="naive",
                      time_limit=60.0)
            print("%10s %10s naive on the smallest size: %.2fs "
                  "(not run further — the paper's point)"
                  % ("", "", time.perf_counter() - start))
            naive_shown = True

    print("\nEach doubling of |E| should roughly double the "
          "filter-verification runtimes (near-linear scaling).")


if __name__ == "__main__":
    main()
