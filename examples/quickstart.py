#!/usr/bin/env python3
"""Quickstart: reinforce a tiny user-item network.

Builds the paper's Figure-1 style scenario — a tight community (the
(α,β)-core) surrounded by at-risk users and items — and uses FILVER to pick
the anchors (sponsored users / promoted items) that grow the community most.

Run:  python examples/quickstart.py
"""

from repro import GraphBuilder, abcore, reinforce

ALPHA, BETA = 4, 3  # users want >= 4 items of interest; items need >= 3 fans


def build_network():
    """A K_{3,4} community plus a periphery held together by thin support."""
    b = GraphBuilder()
    community_users = ["Ann", "Bob", "Cat"]
    community_items = ["Tea", "Milk", "Bread", "Rice"]
    for user in community_users:
        for item in community_items:
            b.add_edge(user, item)

    # A support chain hanging off the community: Drink is one fan short,
    # Hank leans on Drink and Soda, Soda leans on Hank and Gus, ...
    b.add_edges([
        ("Ann", "Drink"),
        ("Hank", "Tea"), ("Hank", "Milk"),
        ("Hank", "Drink"), ("Hank", "Soda"),
        ("Ann", "Soda"),
        ("Gus", "Tea"), ("Gus", "Milk"), ("Gus", "Bread"), ("Gus", "Soda"),
        # Joey's side chain
        ("Joey", "Tea"), ("Joey", "Milk"), ("Joey", "Cake"),
        ("Ann", "Cake"), ("Bob", "Cake"),
    ])
    return b.build()


def main():
    graph = build_network()
    print("network:", graph)

    core = abcore(graph, ALPHA, BETA)
    print("\nstable community (the (%d,%d)-core):" % (ALPHA, BETA))
    print("  ", sorted(str(graph.label_of(v)) for v in core))

    result = reinforce(graph, ALPHA, BETA, b1=1, b2=1, method="filver")
    print("\n" + result.summary())
    print("anchors:  ", [graph.label_of(a) for a in result.anchors])
    print("followers:", sorted(str(graph.label_of(f))
                               for f in result.followers))

    print("\nWith one sponsored user and one promoted item, the community "
          "grows\nfrom %d to %d members." % (result.base_core_size,
                                             result.final_core_size))


if __name__ == "__main__":
    main()
