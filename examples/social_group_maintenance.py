#!/usr/bin/env python3
"""Maintaining social groups on a customer-product network (paper §I, app 1).

Scenario: an e-commerce platform wants its engaged community — customers who
buy at least α distinct products, products bought by at least β distinct
customers — to be as large as possible.  The platform can sponsor a handful
of customers (influencer deals) and promote a handful of products
(discounts); both correspond to anchoring vertices of the bipartite
customer-product graph.

This example runs FILVER++ on a BookCrossing-like surrogate and reports what
a growth team would act on: which customers to sponsor, which products to
promote, and how much the engaged community grows.

Run:  python examples/social_group_maintenance.py [scale]
"""

import sys

from repro import abcore, reinforce
from repro.experiments.runner import default_constraints
from repro.generators import load_dataset


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    graph = load_dataset("BX", scale=scale)
    alpha, beta = default_constraints(graph)
    print("customer-product network: %d customers, %d products, %d purchases"
          % (graph.n_upper, graph.n_lower, graph.n_edges))
    print("engagement thresholds: customers >= %d products, "
          "products >= %d customers" % (alpha, beta))

    core = abcore(graph, alpha, beta)
    customers_in = sum(1 for v in core if graph.is_upper(v))
    print("\nengaged community today: %d customers + %d products"
          % (customers_in, len(core) - customers_in))

    budget_customers, budget_products = 5, 5
    result = reinforce(graph, alpha, beta,
                       b1=budget_customers, b2=budget_products,
                       method="filver++", t=3)

    sponsored = result.upper_anchors(graph.n_upper)
    promoted = result.lower_anchors(graph.n_upper)
    print("\ncampaign plan (budget: %d sponsorships, %d promotions):"
          % (budget_customers, budget_products))
    print("  sponsor customers :", [graph.label_of(a) for a in sponsored])
    print("  promote products  :", [graph.label_of(a) for a in promoted])

    new_customers = sum(1 for f in result.followers if graph.is_upper(f))
    new_products = result.n_followers - new_customers
    print("\nprojected effect: +%d engaged customers, +%d engaged products"
          % (new_customers, new_products))
    print("community size: %d -> %d (%.3fs, %s)"
          % (result.base_core_size, result.final_core_size,
             result.elapsed, result.algorithm))

    print("\nper-iteration breakdown:")
    for i, record in enumerate(result.iterations, 1):
        print("  round %d: placed %d anchor(s), +%d followers "
              "(%d candidates -> %d after filtering, %d verified)"
              % (i, len(record.anchors), record.marginal_followers,
                 record.candidates_total, record.candidates_after_filter,
                 record.verifications))


if __name__ == "__main__":
    main()
