"""Tests for the collapsed (α,β)-core (attack-dual) utilities."""

import pytest

from repro.abcore import abcore
from repro.bigraph import from_biadjacency
from repro.core import collapse_size, critical_edges, critical_vertices
from repro.exceptions import InvalidParameterError

from conftest import random_bigraph


class TestCollapseSize:
    def test_no_removal_is_the_core(self, k34_with_periphery):
        g = k34_with_periphery
        assert collapse_size(g, 4, 3) == len(abcore(g, 4, 3))

    def test_vertex_removal_cascades(self):
        # K_{2,2} at (2,2): removing any vertex collapses everything.
        g = from_biadjacency([[1, 1], [1, 1]])
        assert collapse_size(g, 2, 2) == 4
        assert collapse_size(g, 2, 2, removed_vertices=[0]) == 0

    def test_edge_removal_cascades(self):
        g = from_biadjacency([[1, 1], [1, 1]])
        # cutting one edge of the 4-cycle drops both endpoints below 2
        assert collapse_size(g, 2, 2, removed_edges=[(0, 2)]) == 0

    def test_redundant_edge_removal_is_absorbed(self):
        # K_{3,3} at (2,2): one missing edge leaves degree 2 everywhere.
        g = from_biadjacency([[1, 1, 1]] * 3)
        assert collapse_size(g, 2, 2, removed_edges=[(0, 3)]) == 6

    def test_matches_abcore_on_remainder(self):
        from repro.bigraph import remove_vertices

        for seed in range(4):
            g = random_bigraph(seed)
            victim = g.n_vertices // 2
            expected = len(abcore(remove_vertices(g, [victim]), 2, 2))
            assert collapse_size(g, 2, 2, removed_vertices=[victim]) == expected


class TestCriticalVertices:
    def test_k22_single_vertex_collapse(self):
        g = from_biadjacency([[1, 1], [1, 1]])
        result = critical_vertices(g, 2, 2, budget=1)
        assert len(result.removed) == 1
        assert result.final_core_size == 0
        assert result.collapsed == 4

    def test_budget_zero(self, k34_with_periphery):
        result = critical_vertices(k34_with_periphery, 4, 3, budget=0)
        assert result.removed == []
        assert result.collapsed == 0

    def test_negative_budget_rejected(self, k34_with_periphery):
        with pytest.raises(InvalidParameterError):
            critical_vertices(k34_with_periphery, 4, 3, budget=-1)

    def test_greedy_is_at_least_single_best(self, k34_with_periphery):
        g = k34_with_periphery
        core = abcore(g, 4, 3)
        single_best = min(
            collapse_size(g, 4, 3, [v]) for v in core)
        result = critical_vertices(g, 4, 3, budget=1)
        assert result.final_core_size == single_best

    def test_removals_come_from_the_core(self, k34_with_periphery):
        g = k34_with_periphery
        core = abcore(g, 4, 3)
        result = critical_vertices(g, 4, 3, budget=2)
        assert set(result.removed) <= core


class TestCriticalEdges:
    def test_fragile_cycle(self):
        g = from_biadjacency([[1, 1], [1, 1]])
        result = critical_edges(g, 2, 2, budget=1)
        assert len(result.removed) == 1
        assert result.final_core_size == 0

    def test_robust_biclique_needs_more_cuts(self):
        g = from_biadjacency([[1, 1, 1]] * 3)  # K_{3,3} at (2,2)
        one_cut = critical_edges(g, 2, 2, budget=1)
        assert one_cut.final_core_size == 6  # single cut absorbed
        more = critical_edges(g, 2, 2, budget=3)
        assert more.final_core_size < 6

    def test_attack_then_defend_round_trip(self, k34_with_periphery):
        """The dual workflow: find the fragile spot, then reinforce it."""
        from repro.core import reinforce

        g = k34_with_periphery
        attack = critical_vertices(g, 4, 3, budget=1)
        assert attack.collapsed > 1  # the core has a fragile member
        defense = reinforce(g, 4, 3, 1, 1, method="filver")
        assert defense.n_followers > 0
