"""Narrative tests mirroring the paper's worked examples.

The paper illustrates its machinery on a small user-item graph (Fig. 1 /
Fig. 3, Examples 1-2) and on a hand-drawn anchor-set update (Fig. 5,
Example 3).  These tests walk the same narratives on this repository's
fixture, asserting each statement the paper makes about its example:
shells, zero-order anchors, domination, and the anchor-set replacement.
"""

from repro.abcore import abcore
from repro.core import (
    AnchorSetMaintainer,
    compute_order,
    compute_orders,
    r_scores,
    run_filver,
    signature,
    two_hop_filter,
)
from repro.core.followers import compute_followers

from conftest import K34


class TestExample1DeletionOrder:
    """Example 1: computing O_U by peeling the (α,β-1)-core."""

    def test_order_contains_exactly_shell_plus_zero_anchors(
            self, k34_with_periphery):
        g = k34_with_periphery
        order = compute_order(g, 4, 3, "upper")
        shell = order.relaxed_core - order.core
        zero = {v for v, p in order.position.items() if p == 0}
        assert set(order.position) == shell | zero

    def test_vertices_not_connected_to_potential_followers_are_excluded(
            self, k34_with_periphery):
        """The paper: 'u1 is not connected to any potential followers, it is
        excluded from O_U and is not a promising anchor' — our u5."""
        g = k34_with_periphery
        order = compute_order(g, 4, 3, "upper")
        assert K34["u5"] not in order.position

    def test_lower_vertices_are_not_upper_anchor_candidates(
            self, k34_with_periphery):
        """The paper: 'v1 is also excluded from O_U since it is neither an
        upper vertex nor a potential follower'."""
        g = k34_with_periphery
        order = compute_order(g, 4, 3, "upper")
        candidates = set(order.candidates(g))
        assert all(g.is_upper(x) for x in candidates)


class TestExample2TwoHopFilter:
    """Example 2: anchors with dominated signatures are pruned."""

    def test_zero_signature_anchors_pruned_like_u3_u4(self,
                                                      k34_with_periphery):
        """The paper prunes u3/u4 because sig = ∅; our u7 is the analogue
        (a chain tail reaches nobody)."""
        g = k34_with_periphery
        order = compute_order(g, 4, 3, "upper")
        survivors, sigs = two_hop_filter(g, order, order.candidates(g))
        assert sigs[K34["u7"]] == set()
        assert K34["u7"] not in survivors

    def test_surviving_anchor_keeps_the_best_followers(self,
                                                       k34_with_periphery):
        g = k34_with_periphery
        order = compute_order(g, 4, 3, "upper")
        survivors, _ = two_hop_filter(g, order, order.candidates(g))
        best = max((len(compute_followers(g, order, x)) for x in survivors),
                   default=0)
        assert best == 2  # u3's chain suffix


class TestExample3AnchorSet:
    """Example 3 / Fig. 5 verbatim: u9 replaces u1 in T = {u1, u6}."""

    def test_fig5_replacement(self):
        from repro.bigraph import from_edge_list

        g = from_edge_list([], n_upper=10, n_lower=10)
        maintainer = AnchorSetMaintainer(g, t=2, upper_budget=3,
                                         lower_budget=3)
        f_u1 = {2, 3, 13, 14}              # {u2, u3, v3, v4}
        f_u6 = {3, 4, 5, 15, 16, 17}       # {u3, u4, u5, v5, v6, v7}
        f_u9 = {7, 8, 11, 12}              # {u7, u8, v1, v2}
        maintainer.offer(1, f_u1)
        maintainer.offer(6, f_u6)
        # |F_ex(u1, T)| = 3 (u2, v3, v4 — u3 is shared with u6)
        assert maintainer.exclusive_size(1) == 3
        assert maintainer.least_contribution_anchor() == 1
        # |F_ex(u9, T')| = 4 > 3 -> replacement accepted
        assert maintainer.offer(9, f_u9)
        assert maintainer.anchors == [6, 9]


class TestFig1Story:
    """Fig. 1's narrative: one upper + one lower anchor grow the community
    to everyone except one stubborn vertex."""

    def test_best_pair_leaves_one_vertex_out(self, k34_with_periphery):
        g = k34_with_periphery
        result = run_filver(g, 4, 3, 1, 1)
        final = abcore(g, 4, 3) | set(result.anchors) | result.followers
        outside = set(g.vertices()) - final
        # u5 (core-only attachment), u6 (isolated) and l4 (the chain head,
        # which nobody rescues when u4+l4 are not both picked) stay out --
        # our fixture's 'Joey' analogues.
        assert K34["u6"] in outside
        assert result.n_followers == 4
