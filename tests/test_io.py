"""Tests for edge-list I/O."""

import io

import pytest

from repro.bigraph import read_edge_list, write_edge_list
from repro.bigraph.io import dumps, loads, parse_edge_lines
from repro.exceptions import GraphConstructionError


SAMPLE = """\
% KONECT-style header
% bip user item
alice bread
alice milk
bob milk
# trailing comment
"""


class TestRead:
    def test_reads_labels_and_skips_comments(self):
        g = loads(SAMPLE)
        assert (g.n_upper, g.n_lower, g.n_edges) == (2, 2, 3)
        assert g.vertex_of("upper", "alice") == 0

    def test_extra_columns_ignored(self):
        g = loads("u1 v1 5 1234567\nu2 v1 1 7654321\n")
        assert g.n_edges == 2

    def test_csv_separator_accepted(self):
        g = loads("u1,v1\nu2,v2\n")
        assert g.n_edges == 2

    def test_malformed_line_raises(self):
        with pytest.raises(GraphConstructionError):
            loads("only-one-column\n")

    def test_duplicate_edges_collapse(self):
        g = loads("u v\nu v\n")
        assert g.n_edges == 1

    def test_read_from_path(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text(SAMPLE)
        g = read_edge_list(path)
        assert g.n_edges == 3


class TestWrite:
    def test_round_trip_preserves_structure(self):
        g = loads(SAMPLE)
        again = loads(dumps(g))
        assert again.n_upper == g.n_upper
        assert again.n_lower == g.n_lower
        assert sorted(again.edges()) == sorted(g.edges())

    def test_header_is_commented(self):
        g = loads("a x\n")
        text = dumps(g, header="my dataset\nsecond line")
        assert text.startswith("% my dataset\n% second line\n")
        assert loads(text).n_edges == 1

    def test_write_to_path(self, tmp_path):
        g = loads("a x\nb x\n")
        path = tmp_path / "out.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).n_edges == 2


class TestParse:
    def test_parse_edge_lines_reports_line_numbers(self):
        with pytest.raises(GraphConstructionError) as err:
            list(parse_edge_lines(["a b", "broken"]))
        assert "line 2" in str(err.value)
