"""Tests for the whole-program flow analysis (repro.analysis.flow).

Three layers: the symbol table / call graph substrate (built from inline
two-module programs), the three program-scoped rules against fixture
pairs under ``tests/analysis_fixtures/``, and the runner integration —
suppression filtering, stale-pragma warnings, ``--strict-pragmas``, and
the SARIF reporter.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    ModuleContext,
    analyze_module,
    analyze_program,
    get_rule,
    report_to_sarif,
    rule_names,
    run_analysis,
    stale_pragma_warnings,
)
from repro.analysis.flow import ProgramContext

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def ctx_from(source: str, module: str, name: str = "snippet.py"):
    return ModuleContext.from_source(source, Path(name), module=module)


def load(fixture: str, module: str = "repro.core.fixture") -> ModuleContext:
    path = FIXTURES / fixture
    return ModuleContext.from_source(path.read_text(encoding="utf-8"),
                                     path, module=module)


def flow_violations(fixture: str, rule: str,
                    module: str = "repro.core.fixture"):
    return analyze_program([load(fixture, module)], [get_rule(rule)])


def marked_lines(fixture: str):
    """Line numbers of fixture lines carrying a ``# ... violation`` comment."""
    text = (FIXTURES / fixture).read_text(encoding="utf-8")
    return sorted(i for i, line in enumerate(text.splitlines(), 1)
                  if "#" in line and "violation" in line.split("#", 1)[1])


def line_of(source: str, needle: str) -> int:
    for i, line in enumerate(source.splitlines(), 1):
        if needle in line:
            return i
    raise AssertionError("needle %r not in source" % needle)


# ----------------------------------------------------------------------
# Symbol table + call graph
# ----------------------------------------------------------------------

ENGINE_SRC = '''\
"""Engine fixture module."""

from repro.core.helpers import compute
import repro.core.helpers as helpers


class Engine:
    """Fixture class with methods calling across modules."""

    def __init__(self, graph):
        self.graph = graph

    def run(self):
        """Calls a sibling method, an import, and an unknown object."""
        self.step()
        compute(self.graph)
        mystery.call()

    def step(self):
        """No-op."""


def make():
    """Constructor call resolves to Engine.__init__."""
    return Engine(None)
'''

HELPERS_SRC = '''\
"""Helpers fixture module."""


def compute(graph):
    """Identity."""
    return graph
'''


def two_module_program() -> ProgramContext:
    return ProgramContext.build([
        ctx_from(ENGINE_SRC, "repro.core.engine", "engine.py"),
        ctx_from(HELPERS_SRC, "repro.core.helpers", "helpers.py"),
    ])


class TestSymbolTable:
    def test_functions_and_methods_indexed_by_qualname(self):
        table = two_module_program().symbols
        for qualname in ("repro.core.engine.make",
                         "repro.core.engine.Engine.run",
                         "repro.core.engine.Engine.__init__",
                         "repro.core.helpers.compute"):
            assert table.function(qualname) is not None
        run = table.function("repro.core.engine.Engine.run")
        assert run.name == "run"
        assert run.owner_class == "repro.core.engine.Engine"
        assert table.function("repro.core.helpers.compute").arg_names() \
            == ["graph"]

    def test_import_aliases_resolve_across_modules(self):
        table = two_module_program().symbols
        aliases = table.aliases["repro.core.engine"]
        assert aliases["compute"] == "repro.core.helpers.compute"
        assert aliases["helpers"] == "repro.core.helpers"
        assert table.resolve("repro.core.engine", "helpers.compute") \
            == "repro.core.helpers.compute"
        assert table.resolve("repro.core.engine", "mystery.call") is None

    def test_class_info_tracks_methods(self):
        table = two_module_program().symbols
        info = table.class_of("repro.core.engine.Engine")
        assert info is not None
        assert info.has_method("run", "step")
        assert not info.has_method("close")


class TestCallGraph:
    def test_self_method_and_imported_call_edges(self):
        graph = two_module_program().callgraph
        assert graph.callees("repro.core.engine.Engine.run") == {
            "repro.core.engine.Engine.step",
            "repro.core.helpers.compute",
        }
        assert graph.callers("repro.core.helpers.compute") == {
            "repro.core.engine.Engine.run",
        }

    def test_constructor_call_resolves_to_init(self):
        graph = two_module_program().callgraph
        assert graph.callees("repro.core.engine.make") == {
            "repro.core.engine.Engine.__init__",
        }

    def test_unresolved_attribute_call_is_recorded_not_dropped(self):
        graph = two_module_program().callgraph
        sites = graph.call_sites("repro.core.engine.Engine.run")
        unresolved = [s for s in sites if s.callee is None]
        assert [s.text for s in unresolved] == ["mystery.call"]


# ----------------------------------------------------------------------
# ordering-flow
# ----------------------------------------------------------------------

class TestOrderingFlow:
    def test_bad_fixture_flags_every_marked_line(self):
        found = flow_violations("ordering_flow_bad.py", "ordering-flow")
        assert sorted(v.line for v in found) == \
            marked_lines("ordering_flow_bad.py")
        assert all(v.rule == "ordering-flow" for v in found)

    def test_ok_fixture_is_clean(self):
        assert flow_violations("ordering_flow_ok.py", "ordering-flow") == []

    def test_messages_name_the_origin_and_the_action(self):
        found = flow_violations("ordering_flow_bad.py", "ordering-flow")
        joined = " | ".join(v.message for v in found)
        assert "order-sensitive loop" in joined
        assert "byte-identity sink" in joined
        assert "filesystem order" in joined

    def test_taint_crosses_module_boundaries(self):
        prod_src = ('"""Producer."""\n\n\n'
                    "def fresh_ids(graph):\n"
                    '    """Unordered return."""\n'
                    "    return {v for v in graph}\n")
        cons_src = ('"""Consumer."""\n\n'
                    "from repro.core.prod import fresh_ids\n\n\n"
                    "def ordered(graph):\n"
                    '    """Order-sensitive consumption."""\n'
                    "    out = []\n"
                    "    for v in fresh_ids(graph):\n"
                    "        out.append(v)\n"
                    "    return out\n")
        prod = ctx_from(prod_src, "repro.core.prod", "prod.py")
        cons = ctx_from(cons_src, "repro.core.cons", "cons.py")
        found = analyze_program([prod, cons], [get_rule("ordering-flow")])
        assert len(found) == 1
        assert found[0].path == "cons.py"
        assert found[0].line == line_of(cons_src, "for v in fresh_ids")
        assert "fresh_ids" in found[0].message

    def test_sorted_wrapper_sanitizes_cross_module_taint(self):
        prod_src = ('"""Producer."""\n\n\n'
                    "def fresh_ids(graph):\n"
                    '    """Unordered return."""\n'
                    "    return {v for v in graph}\n")
        cons_src = ('"""Consumer."""\n\n'
                    "from repro.core.prod import fresh_ids\n\n\n"
                    "def ordered(graph):\n"
                    '    """sorted() canonicalizes at the boundary."""\n'
                    "    out = []\n"
                    "    for v in sorted(fresh_ids(graph)):\n"
                    "        out.append(v)\n"
                    "    return out\n")
        prod = ctx_from(prod_src, "repro.core.prod", "prod.py")
        cons = ctx_from(cons_src, "repro.core.cons", "cons.py")
        assert analyze_program([prod, cons],
                               [get_rule("ordering-flow")]) == []

    def test_outside_order_critical_packages_loops_are_not_flagged(self):
        # Sinks are policed everywhere, but plain iteration only matters
        # where it feeds deletion orders / exports.
        found = flow_violations("ordering_flow_bad.py", "ordering-flow",
                                module="tools.fixture")
        assert all("sink" in v.message for v in found)

    def test_analyze_module_skips_program_scoped_rules(self):
        ctx = load("ordering_flow_bad.py")
        assert analyze_module(ctx, [get_rule("ordering-flow")]) == []

    def test_shared_context_tables_flag_every_marked_line(self):
        found = flow_violations("batch_flow_bad.py", "ordering-flow")
        assert sorted(v.line for v in found) == \
            marked_lines("batch_flow_bad.py")
        joined = " | ".join(v.message for v in found)
        assert "shared-context table" in joined

    def test_sanitized_shared_context_tables_are_clean(self):
        assert flow_violations("batch_flow_ok.py", "ordering-flow") == []


# ----------------------------------------------------------------------
# resource-lifecycle
# ----------------------------------------------------------------------

class TestResourceLifecycle:
    def test_bad_fixture_flags_every_marked_line(self):
        found = flow_violations("resource_lifecycle_bad.py",
                                "resource-lifecycle")
        assert sorted(v.line for v in found) == \
            marked_lines("resource_lifecycle_bad.py")
        assert all(v.rule == "resource-lifecycle" for v in found)

    def test_ok_fixture_is_clean(self):
        assert flow_violations("resource_lifecycle_ok.py",
                               "resource-lifecycle") == []

    def test_happy_path_release_gets_the_distinct_message(self):
        found = flow_violations("resource_lifecycle_bad.py",
                                "resource-lifecycle")
        messages = [v.message for v in found]
        assert any("non-exception path" in m for m in messages)
        assert any("never bound" in m for m in messages)
        assert any("never released" in m for m in messages)

    def test_numpy_memmap_acquisitions_are_tracked(self):
        found = flow_violations("resource_lifecycle_bad.py",
                                "resource-lifecycle")
        memmap_messages = [v.message for v in found
                           if "numpy.memmap" in v.message]
        assert any("never bound" in m for m in memmap_messages)
        assert any("never released" in m for m in memmap_messages)
        # The clean idioms (owning class, container escape, ownership
        # transfer) must not fire for memmap either.
        assert flow_violations("resource_lifecycle_ok.py",
                               "resource-lifecycle") == []

    def test_owning_class_without_releaser_is_flagged(self):
        src = ('"""Holder without a close method leaks its segment."""\n\n'
               "from multiprocessing.shared_memory import SharedMemory\n\n\n"
               "class Holder:\n"
               '    """No releaser."""\n\n'
               "    def __init__(self, name):\n"
               "        self._shm = SharedMemory(name=name)\n")
        found = analyze_program(
            [ctx_from(src, "repro.parallel.holder", "holder.py")],
            [get_rule("resource-lifecycle")])
        assert len(found) == 1
        assert found[0].line == line_of(src, "SharedMemory(name=name)")


# ----------------------------------------------------------------------
# shared-mutation
# ----------------------------------------------------------------------

class TestSharedMutation:
    def test_bad_fixture_flags_every_marked_line(self):
        found = flow_violations("shared_mutation_bad.py", "shared-mutation")
        assert sorted(v.line for v in found) == \
            marked_lines("shared_mutation_bad.py")
        assert all(v.rule == "shared-mutation" for v in found)

    def test_ok_fixture_is_clean(self):
        assert flow_violations("shared_mutation_ok.py",
                               "shared-mutation") == []

    def test_bigraph_package_is_exempt(self):
        found = flow_violations("shared_mutation_bad.py", "shared-mutation",
                                module="repro.bigraph.fixture")
        assert found == []

    def test_messages_explain_the_borrow_contract(self):
        found = flow_violations("shared_mutation_bad.py", "shared-mutation")
        joined = " | ".join(v.message for v in found)
        assert "read-only" in joined
        assert "setflags(write=True)" in joined
        assert ".sort() mutates" in joined


# ----------------------------------------------------------------------
# Suppressions, stale pragmas, strict mode
# ----------------------------------------------------------------------

class TestFlowSuppressions:
    SUPPRESSED = ('"""Suppressed consumer."""\n\n\n'
                  "def ordered(vertices):\n"
                  '    """Suppressed on the loop line."""\n'
                  "    out = []\n"
                  "    for v in {x for x in vertices}:"
                  "  # repro: ignore[ordering-flow]\n"
                  "        out.append(v)\n"
                  "    return out\n")

    def test_program_rule_violations_respect_line_pragmas(self):
        ctx = ctx_from(self.SUPPRESSED, "repro.core.snip")
        assert analyze_program([ctx], [get_rule("ordering-flow")]) == []

    def test_used_suppression_is_not_reported_stale(self):
        ctx = ctx_from(self.SUPPRESSED, "repro.core.snip")
        analyze_program([ctx], [get_rule("ordering-flow")])
        assert stale_pragma_warnings(ctx, {"ordering-flow"}) == []


class TestStalePragmas:
    def test_unused_ignore_warns_only_when_its_rule_ran(self):
        ctx = ctx_from("X = 1  # repro: ignore[determinism]\n",
                       "repro.core.snip")
        assert len(stale_pragma_warnings(ctx, {"determinism"})) == 1
        assert stale_pragma_warnings(ctx, {"exports"}) == []

    def test_unknown_rule_name_always_warns(self):
        ctx = ctx_from("X = 1  # repro: ignore[bogus-rule]\n",
                       "repro.core.snip")
        warnings = stale_pragma_warnings(ctx, set())
        assert len(warnings) == 1
        assert "unknown rule" in warnings[0].message

    def test_consumed_suppression_is_not_stale(self):
        ctx = ctx_from(
            "from random import shuffle  # repro: ignore[determinism]\n",
            "repro.core.snip")
        assert analyze_module(ctx, [get_rule("determinism")]) == []
        assert stale_pragma_warnings(ctx, {"determinism"}) == []

    def test_blanket_ignore_judged_only_on_full_runs(self):
        ctx = ctx_from("Y = 2  # repro: ignore\n", "repro.core.snip")
        assert stale_pragma_warnings(ctx, {"determinism"}) == []
        full = stale_pragma_warnings(ctx, set(rule_names()))
        assert len(full) == 1 and "blanket" in full[0].message

    def test_attached_structural_pragmas_do_not_warn(self):
        src = ("def f(items, queue, adjacency):\n"
               '    """Attached pragmas."""\n'
               "    # hot-loop\n"
               "    for v in items:\n"
               "        queue.append(adjacency[v])\n"
               "    try:\n"
               "        return queue\n"
               "    except Exception:  # repro: boundary\n"
               "        return None\n")
        ctx = ctx_from(src, "repro.core.snip")
        assert stale_pragma_warnings(ctx, set()) == []

    def test_fixture_reports_all_three_stale_shapes(self):
        report = run_analysis([FIXTURES / "stale_pragmas.py"],
                              rules=[get_rule("determinism")])
        assert report.ok
        messages = " | ".join(w.message for w in report.warnings)
        assert len(report.warnings) == 3
        assert "no longer suppresses" in messages
        assert "not attached to an except handler" in messages
        assert "not attached to a" in messages and "loop header" in messages

    def test_strict_pragmas_promotes_warnings_to_violations(self):
        report = run_analysis([FIXTURES / "stale_pragmas.py"],
                              rules=[get_rule("determinism")],
                              strict_pragmas=True)
        assert not report.ok
        assert report.warnings == []
        assert {v.rule for v in report.violations} == {"stale-pragma"}


# ----------------------------------------------------------------------
# SARIF reporter
# ----------------------------------------------------------------------

class TestSarif:
    def test_log_shape_and_rule_descriptors(self):
        report = run_analysis([FIXTURES / "encapsulation_bad.py"])
        sarif = report_to_sarif(report)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(rule_names()) | {"stale-pragma"} <= ids
        assert run["columnKind"] == "utf16CodeUnits"

    def test_violations_become_error_results_with_one_based_columns(self):
        report = run_analysis([FIXTURES / "encapsulation_bad.py"])
        sarif = report_to_sarif(report)
        results = sarif["runs"][0]["results"]
        assert results
        first = results[0]
        assert first["level"] == "error"
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == report.violations[0].line
        assert region["startColumn"] == report.violations[0].col + 1

    def test_warnings_become_warning_results(self):
        report = run_analysis([FIXTURES / "stale_pragmas.py"],
                              rules=[get_rule("determinism")])
        results = report_to_sarif(report)["runs"][0]["results"]
        assert results
        assert {r["level"] for r in results} == {"warning"}
        assert {r["ruleId"] for r in results} == {"stale-pragma"}

    def test_errors_become_failed_invocation_notifications(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        sarif = report_to_sarif(run_analysis([tmp_path]))
        invocation = sarif["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"]


class TestCliFlow:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})

    def test_sarif_output_parses_and_reports_violations(self):
        proc = self.run_cli(
            "--sarif", "tests/analysis_fixtures/encapsulation_bad.py")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"]

    def test_json_and_sarif_are_mutually_exclusive(self):
        proc = self.run_cli("--json", "--sarif", "src/")
        assert proc.returncode == 2

    def test_strict_pragmas_gates_stale_suppressions(self):
        lenient = self.run_cli("--rules", "determinism",
                               "tests/analysis_fixtures/stale_pragmas.py")
        assert lenient.returncode == 0, lenient.stdout + lenient.stderr
        assert "(warning)" in lenient.stdout
        strict = self.run_cli("--strict-pragmas", "--rules", "determinism",
                              "tests/analysis_fixtures/stale_pragmas.py")
        assert strict.returncode == 1
        assert "stale-pragma" in strict.stdout
