"""Tests for follower signatures and the two-hop domination filter."""

from hypothesis import given, settings

from repro.abcore import abcore
from repro.abcore.decomposition import followers as global_followers
from repro.core import compute_orders, signature, two_hop_filter
from repro.core.signatures import signatures_of

from conftest import graphs_with_constraints, random_bigraph


@settings(max_examples=30, deadline=None)
@given(graphs_with_constraints())
def test_lemma2_signature_containment_implies_follower_containment(data):
    """Lemma 2: sig(x1) ⊆ sig(x2) ⟹ F(x1) ⊆ F(x2), same layer."""
    g, alpha, beta = data
    core = abcore(g, alpha, beta)
    upper, lower = compute_orders(g, alpha, beta)
    for order in (upper, lower):
        candidates = order.candidates(g)
        sigs = signatures_of(g, order, candidates)
        cached = {x: global_followers(g, alpha, beta, [x], base_core=core)
                  for x in candidates}
        for x1 in candidates:
            for x2 in candidates:
                if x1 == x2 or not sigs[x1] <= sigs[x2]:
                    continue
                assert cached[x1] <= cached[x2], (x1, x2)


@settings(max_examples=30, deadline=None)
@given(graphs_with_constraints())
def test_filter_preserves_the_best_follower_count(data):
    """Discarding dominated anchors never loses the optimal single anchor."""
    g, alpha, beta = data
    core = abcore(g, alpha, beta)
    upper, lower = compute_orders(g, alpha, beta)
    for order in (upper, lower):
        candidates = order.candidates(g)
        if not candidates:
            continue
        survivors, sigs = two_hop_filter(g, order, candidates)
        best_all = max((len(global_followers(g, alpha, beta, [x], base_core=core))
                        for x in candidates), default=0)
        best_kept = max((len(global_followers(g, alpha, beta, [x], base_core=core))
                         for x in survivors), default=0)
        assert best_kept == best_all


@settings(max_examples=30, deadline=None)
@given(graphs_with_constraints())
def test_every_discarded_anchor_is_dominated_by_a_candidate(data):
    """Lemma 3: a discarded anchor's followers are covered by some other
    candidate's (transitively, by some survivor)."""
    g, alpha, beta = data
    core = abcore(g, alpha, beta)
    upper, lower = compute_orders(g, alpha, beta)
    for order in (upper, lower):
        candidates = order.candidates(g)
        survivors, sigs = two_hop_filter(g, order, candidates)
        survivor_set = set(survivors)
        for x in candidates:
            if x in survivor_set:
                continue
            fx = global_followers(g, alpha, beta, [x], base_core=core)
            if not fx:
                continue  # empty-signature anchors have no followers
            assert any(
                fx <= global_followers(g, alpha, beta, [y], base_core=core)
                for y in survivors), x


class TestFilterMechanics:
    def test_empty_signatures_never_survive(self, k34_with_periphery):
        g = k34_with_periphery
        upper, _ = compute_orders(g, 4, 3)
        survivors, sigs = two_hop_filter(g, upper, upper.candidates(g))
        for x in survivors:
            assert sigs[x]

    def test_filter_is_deterministic(self):
        g = random_bigraph(3)
        upper, _ = compute_orders(g, 2, 2)
        first = two_hop_filter(g, upper, upper.candidates(g))[0]
        second = two_hop_filter(g, upper, upper.candidates(g))[0]
        assert first == second

    def test_equal_signatures_keep_exactly_one(self):
        # Two uppers with identical single-vertex signatures.
        from repro.bigraph import from_biadjacency

        # core: K_{2,3} with alpha=3, beta=2; one deficient lower rescued by
        # either of two twin uppers.
        g = from_biadjacency([
            [1, 1, 1, 0],
            [1, 1, 1, 0],
            [1, 1, 0, 1],
            [1, 1, 0, 1],
        ])
        upper, lower = compute_orders(g, 3, 2)
        candidates = upper.candidates(g)
        survivors, sigs = two_hop_filter(g, upper, candidates)
        twins = [x for x in candidates if sigs[x]]
        same_sig = {frozenset(sigs[x]) for x in twins}
        if len(same_sig) == 1 and len(twins) > 1:
            assert len(survivors) == 1
