"""Tests for maximal biclique enumeration."""

from itertools import chain, combinations

import pytest
from hypothesis import given, settings

from repro.bigraph import from_biadjacency, from_edge_list
from repro.cohesion.biclique import Biclique, maximal_bicliques, maximum_biclique
from repro.exceptions import InvalidParameterError

from conftest import bipartite_graphs


def brute_force_maximal_bicliques(graph, min_upper=1, min_lower=1):
    """Reference: closures of all non-empty upper subsets, kept if maximal."""
    uppers = [u for u in graph.upper_vertices() if graph.degree(u) > 0]
    neighbors = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    seen = set()
    for r in range(1, len(uppers) + 1):
        for subset in combinations(uppers, r):
            common_lowers = set.intersection(*(neighbors[u] for u in subset)) \
                if subset else set()
            if not common_lowers:
                continue
            # close the upper side
            closed_uppers = set.intersection(
                *(neighbors[v] for v in common_lowers))
            if len(closed_uppers) >= min_upper \
                    and len(common_lowers) >= min_lower:
                seen.add((frozenset(closed_uppers), frozenset(common_lowers)))
    return {Biclique(u, l) for u, l in seen}


class TestSmallCases:
    def test_single_butterfly(self):
        g = from_biadjacency([[1, 1], [1, 1]])
        found = maximal_bicliques(g)
        assert len(found) == 1
        assert found[0].uppers == frozenset({0, 1})
        assert found[0].lowers == frozenset({2, 3})

    def test_two_overlapping_bicliques(self):
        g = from_biadjacency([
            [1, 1, 0],
            [1, 1, 1],
            [0, 1, 1],
        ])
        found = maximal_bicliques(g)
        assert set(found) == brute_force_maximal_bicliques(g)

    def test_size_thresholds(self):
        g = from_biadjacency([[1, 1], [1, 1], [1, 0]])
        big_only = maximal_bicliques(g, min_upper=2, min_lower=2)
        assert all(len(b.uppers) >= 2 and len(b.lowers) >= 2
                   for b in big_only)

    def test_empty_graph(self):
        g = from_edge_list([], n_upper=3, n_lower=3)
        assert maximal_bicliques(g) == []
        assert maximum_biclique(g) is None

    def test_invalid_thresholds(self):
        g = from_biadjacency([[1]])
        with pytest.raises(InvalidParameterError):
            maximal_bicliques(g, min_upper=0)

    def test_limit_guard(self):
        # a crown-like graph with many maximal bicliques
        rows = [[1 if i != j else 0 for j in range(6)] for i in range(6)]
        g = from_biadjacency(rows)
        with pytest.raises(InvalidParameterError):
            maximal_bicliques(g, limit=2)

    def test_maximum_biclique_is_edge_max(self):
        g = from_biadjacency([
            [1, 1, 1, 0],
            [1, 1, 1, 0],
            [0, 0, 1, 1],
        ])
        best = maximum_biclique(g)
        assert best.n_edges == 6  # the 2x3 block


@settings(max_examples=25, deadline=None)
@given(bipartite_graphs(max_upper=6, max_lower=6))
def test_matches_brute_force(g):
    found = set(maximal_bicliques(g))
    reference = brute_force_maximal_bicliques(g)
    assert found == reference


@settings(max_examples=20, deadline=None)
@given(bipartite_graphs(max_upper=6, max_lower=6))
def test_results_are_bicliques_and_maximal(g):
    neighbors = {v: set(g.neighbors(v)) for v in g.vertices()}
    for b in maximal_bicliques(g):
        for u in b.uppers:
            assert b.lowers <= neighbors[u]
        # maximal: no vertex can be added on either side
        for u in g.upper_vertices():
            if u not in b.uppers:
                assert not b.lowers <= neighbors[u]
        for v in g.lower_vertices():
            if v not in b.lowers:
                assert not b.uppers <= neighbors[v]
