"""Differential byte-identity: the service must be a transparent executor.

For every engine method, adjacency backend, and execution strategy
(serial, multi-worker verification, sharded checkpoints), a job served by
:class:`CampaignService` must produce *exactly* the canonical result of a
one-shot :func:`repro.core.api.reinforce` call — including jobs that were
killed mid-campaign and resumed, and jobs interrupted by a drain and
finished by a restarted service."""

import json

import pytest

from repro.bigraph import from_edge_list
from repro.core.api import reinforce
from repro.experiments.export import canonical_result_dict
from repro.resilience import FaultPlan
from repro.service import CampaignService, JobSpec, JobState

from conftest import random_bigraph

ALPHA, BETA, B1, B2 = 3, 3, 3, 3


def canonical(result):
    return json.dumps(canonical_result_dict(result), sort_keys=True)


def build_graph(backend, tmp_path):
    base = random_bigraph(7, n1_range=(12, 16), n2_range=(12, 16),
                          density=0.2)
    if backend == "list":
        return base
    edges = [(u, v - base.n_upper) for u, v in base.edges()]
    kwargs = {}
    if backend == "memmap":
        kwargs["memmap_dir"] = str(tmp_path / "graph")
    return from_edge_list(edges, n_upper=base.n_upper, n_lower=base.n_lower,
                          backend=backend, **kwargs)


def serve_one(graph, spec):
    with CampaignService(graph, sleep=lambda s: None) as service:
        handle = service.submit(spec)
        assert service.run_until_idle() == 1
        assert handle.state == JobState.COMPLETED
        return handle.result()


SPECS = [
    pytest.param(JobSpec(alpha=ALPHA, beta=BETA, b1=B1, b2=B2,
                         method="filver"), id="filver"),
    pytest.param(JobSpec(alpha=ALPHA, beta=BETA, b1=B1, b2=B2,
                         method="filver+"), id="filver+"),
    pytest.param(JobSpec(alpha=ALPHA, beta=BETA, b1=B1, b2=B2,
                         method="filver++", t=2), id="filver++"),
    pytest.param(JobSpec(alpha=ALPHA, beta=BETA, b1=B1, b2=B2,
                         method="filver++", t=2, workers=2),
                 id="filver++/workers2"),
    pytest.param(JobSpec(alpha=ALPHA, beta=BETA, b1=B1, b2=B2,
                         method="filver++", t=2, shards=2),
                 id="filver++/shards2"),
]


class TestServedEqualsOneShot:
    @pytest.mark.parametrize("backend", ["list", "csr", "memmap"])
    @pytest.mark.parametrize("spec", SPECS)
    def test_service_result_is_byte_identical(self, backend, spec,
                                              tmp_path):
        graph = build_graph(backend, tmp_path)
        reference = reinforce(graph, spec.alpha, spec.beta, spec.b1,
                              spec.b2, method=spec.method, t=spec.t,
                              workers=spec.workers, shards=spec.shards)
        assert reference.n_followers > 0
        served = serve_one(graph, spec)
        assert canonical(served) == canonical(reference)
        if hasattr(graph.adjacency, "close"):
            graph.adjacency.close()


class TestKilledAndResumed:
    @pytest.mark.parametrize("spec", SPECS)
    def test_mid_campaign_kill_resumes_to_identical_bytes(self, spec,
                                                          tmp_path):
        graph = build_graph("csr", tmp_path)
        reference = reinforce(graph, spec.alpha, spec.beta, spec.b1,
                              spec.b2, method=spec.method, t=spec.t,
                              workers=spec.workers, shards=spec.shards)
        assert len(reference.iterations) >= 2
        with CampaignService(graph, sleep=lambda s: None) as service:
            handle = service.submit(spec)
            # Attempt 1 dies at iteration 2's filter stage with iteration
            # 1 checkpointed; attempt 2 resumes from that checkpoint.
            with FaultPlan().add("engine.filter", call=2).active():
                service.run_until_idle()
            assert handle.state == JobState.COMPLETED
            assert len(handle.failures) == 1
            assert canonical(handle.result()) == canonical(reference)


class TestDrainRestartPipeline:
    @pytest.mark.parametrize("spec", SPECS)
    def test_interrupted_then_restarted_service_matches_one_shot(
            self, spec, tmp_path):
        graph = build_graph("csr", tmp_path)
        reference = reinforce(graph, spec.alpha, spec.beta, spec.b1,
                              spec.b2, method=spec.method, t=spec.t,
                              workers=spec.workers, shards=spec.shards)
        assert len(reference.iterations) >= 2
        state = str(tmp_path / "state")

        service = None

        def drain_after_first_iteration(job, record):
            service.request_drain()

        service = CampaignService(graph, state_dir=state,
                                  sleep=lambda s: None,
                                  on_iteration=drain_after_first_iteration)
        handle = service.submit(spec)
        service.run_until_idle()
        partial = handle.result()
        assert partial.interrupted
        assert len(partial.iterations) < len(reference.iterations)
        service.shutdown()

        restarted = CampaignService(graph, state_dir=state,
                                    sleep=lambda s: None)
        assert restarted.run_until_idle() == 1
        resumed = restarted.handle(handle.job_id).result()
        assert canonical(resumed) == canonical(reference)
        restarted.shutdown()
