"""Differential tests for batched multi-campaign execution.

The contract under test throughout: a campaign run against a
:class:`~repro.core.batch.SharedCampaignContext` — shared pristine order
state, warm verification seed, leased kernels/evaluators — produces
canonical JSON byte-identical to the same campaign run alone, across
backends, worker counts, methods, sharding, kill/resume, and service
restarts over the persisted cache."""

import json

import pytest

from repro.bigraph.memmap import load_graph_memmap, save_graph_memmap
from repro.bigraph.mutation import disjoint_union
from repro.core import CampaignSpec, SharedCampaignContext, run_batch
from repro.core.api import reinforce
from repro.core.incremental import SeedTables
from repro.core.order_maintenance import OrderState
from repro.exceptions import FaultInjected, InvalidParameterError
from repro.experiments.export import canonical_result_dict
from repro.generators import planted_core_graph
from repro.resilience import FaultPlan
from repro.service import CampaignService, JobSpec

ALPHA = BETA = 3


def canonical(result):
    return json.dumps(canonical_result_dict(result), sort_keys=True)


def batch_graph(seed=3):
    parts = [planted_core_graph(ALPHA, BETA, n_chains=6, max_chain_length=5,
                                seed=seed + i) for i in range(2)]
    return disjoint_union(parts)


#: A mixed-method batch: different budgets, methods, and t values, all
#: sharing one (α, β).
MIXED_SPECS = (
    CampaignSpec(b1=2, b2=2, method="filver++", t=2),
    CampaignSpec(b1=1, b2=2, method="filver+"),
    CampaignSpec(b1=2, b2=1, method="filver"),
    CampaignSpec(b1=1, b2=1, method="filver++", t=3),
)


def run_standalone(graph, spec):
    return reinforce(graph, ALPHA, BETA, spec.b1, spec.b2,
                     method=spec.method, t=spec.t, seed=spec.seed,
                     time_limit=spec.time_limit, workers=spec.workers,
                     memoize=spec.memoize, flat_kernel=spec.flat_kernel,
                     shards=spec.shards)


class TestPristineClone:
    def test_clone_matches_a_fresh_state(self):
        graph = batch_graph()
        for maintain in (True, False):
            seed = OrderState(graph, ALPHA, BETA, maintain=True)
            clone = seed.clone_pristine(maintain=maintain)
            fresh = OrderState(graph, ALPHA, BETA, maintain=maintain)
            assert clone.upper.position == fresh.upper.position
            assert clone.lower.position == fresh.lower.position
            assert clone.core == fresh.core
            assert clone.maintain == maintain
            assert clone.anchors == set()

    def test_clones_are_independent(self):
        graph = batch_graph()
        seed = OrderState(graph, ALPHA, BETA, maintain=True)
        one = seed.clone_pristine()
        two = seed.clone_pristine()
        one.apply_anchors([next(iter(one.upper.position))])
        assert two.anchors == set()
        assert seed.anchors == set()

    def test_non_pristine_state_refuses_to_clone(self):
        graph = batch_graph()
        state = OrderState(graph, ALPHA, BETA, maintain=True)
        state.apply_anchors([next(iter(state.upper.position))])
        with pytest.raises(ValueError):
            state.clone_pristine()

    def test_maintaining_clone_needs_a_maintaining_seed(self):
        graph = batch_graph()
        state = OrderState(graph, ALPHA, BETA, maintain=False)
        with pytest.raises(ValueError):
            state.clone_pristine(maintain=True)


class TestSeedTables:
    def test_context_warms_once_and_serves_a_frozen_seed(self):
        graph = batch_graph().to_csr()
        with SharedCampaignContext(graph, ALPHA, BETA) as ctx:
            seed = ctx.seed_tables()
            assert isinstance(seed, SeedTables)
            assert seed.entries() > 0
            assert ctx.seed_tables() is seed  # warmed exactly once

    def test_payload_round_trip_preserves_every_entry(self):
        graph = batch_graph().to_csr()
        with SharedCampaignContext(graph, ALPHA, BETA) as ctx:
            seed = ctx.seed_tables()
            rebuilt = SeedTables.from_payload(seed.to_payload())
            assert rebuilt.rf == seed.rf
            assert rebuilt.sigs == seed.sigs
            assert rebuilt.survivors == seed.survivors
            assert rebuilt.r_scores == seed.r_scores

    def test_incompatible_problems_are_rejected(self):
        graph = batch_graph().to_csr()
        other = batch_graph(seed=9).to_csr()
        with SharedCampaignContext(graph, ALPHA, BETA) as ctx:
            with pytest.raises(InvalidParameterError):
                ctx.check_compatible(graph, ALPHA + 1, BETA)
            with pytest.raises(InvalidParameterError):
                ctx.check_compatible(other, ALPHA, BETA)


class TestBatchEquivalence:
    """batch ≡ sequential, byte for byte, across the execution matrix."""

    @pytest.mark.parametrize("backend", ["list", "csr", "memmap"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_mixed_batch_matches_standalone(self, backend, workers,
                                            tmp_path):
        graph = batch_graph()
        if backend == "csr":
            graph = graph.to_csr()
        elif backend == "memmap":
            graph = load_graph_memmap(save_graph_memmap(graph,
                                                        tmp_path / "g"))
        specs = [CampaignSpec(b1=s.b1, b2=s.b2, method=s.method, t=s.t,
                              workers=workers) for s in MIXED_SPECS]
        standalone = [canonical(run_standalone(graph, spec))
                      for spec in specs]
        with SharedCampaignContext(graph, ALPHA, BETA) as ctx:
            batched = run_batch(graph, ALPHA, BETA, specs, context=ctx)
            stats = ctx.stats()
        assert [canonical(r) for r in batched] == standalone
        assert stats["warm"]
        assert stats["state_clones"] == len(specs)

    def test_sharded_and_baseline_jobs_ride_along_unchanged(self):
        graph = batch_graph().to_csr()
        specs = [
            CampaignSpec(b1=2, b2=2, method="filver++", t=2),
            CampaignSpec(b1=1, b2=1, method="filver++", t=2, shards=2),
            CampaignSpec(b1=1, b2=1, method="degree-greedy"),
        ]
        standalone = [canonical(run_standalone(graph, spec))
                      for spec in specs]
        batched = run_batch(graph, ALPHA, BETA, specs)
        assert [canonical(r) for r in batched] == standalone

    def test_memoize_off_jobs_share_state_but_not_the_seed(self):
        graph = batch_graph().to_csr()
        spec = CampaignSpec(b1=2, b2=2, method="filver++", t=2,
                            memoize=False)
        standalone = canonical(run_standalone(graph, spec))
        with SharedCampaignContext(graph, ALPHA, BETA) as ctx:
            [result] = run_batch(graph, ALPHA, BETA, [spec], context=ctx)
            stats = ctx.stats()
        assert canonical(result) == standalone
        assert not stats["warm"]  # nothing warmed the seed
        assert stats["state_clones"] == 1

    def test_seed_payload_moves_between_contexts_byte_identically(self):
        graph = batch_graph().to_csr()
        specs = list(MIXED_SPECS)
        with SharedCampaignContext(graph, ALPHA, BETA) as warm:
            reference = [canonical(r) for r in
                         run_batch(graph, ALPHA, BETA, specs, context=warm)]
            payload = warm.seed_payload()
        assert payload is not None
        restored_payload = json.loads(json.dumps(payload))  # disk round trip
        with SharedCampaignContext(graph, ALPHA, BETA) as cold:
            assert cold.install_seed_payload(restored_payload)
            assert cold.stats()["seed_restored"]
            replayed = [canonical(r) for r in
                        run_batch(graph, ALPHA, BETA, specs, context=cold)]
        assert replayed == reference

    def test_kill_and_resume_mid_batch_inside_one_context(self, tmp_path):
        graph = batch_graph().to_csr()
        standalone = canonical(reinforce(graph, ALPHA, BETA, 2, 2,
                                         method="filver++", t=1))
        ckpt = str(tmp_path / "c.json")
        with SharedCampaignContext(graph, ALPHA, BETA) as ctx:
            # Warm the context with a sibling campaign first.
            reinforce(graph, ALPHA, BETA, 1, 1, method="filver+",
                      context=ctx)
            with FaultPlan().add("engine.filter", call=2).active():
                with pytest.raises(FaultInjected):
                    reinforce(graph, ALPHA, BETA, 2, 2, method="filver++",
                              t=1, checkpoint=ckpt, context=ctx)
            resumed = reinforce(graph, ALPHA, BETA, 2, 2, method="filver++",
                                t=1, checkpoint=ckpt, resume_from=ckpt,
                                context=ctx)
        assert canonical(resumed) == standalone


class TestServiceBatching:
    """The service-level integration: grouped dispatch + persisted cache."""

    PROBLEMS = [(1, 1, "filver++", 2), (2, 1, "filver++", 2),
                (1, 2, "filver+", 5), (2, 2, "filver", 5)]

    def specs(self):
        return [JobSpec(alpha=ALPHA, beta=BETA, b1=b1, b2=b2, method=m, t=t)
                for b1, b2, m, t in self.PROBLEMS]

    def run_service(self, graph, state_dir, specs, **kwargs):
        with CampaignService(graph, workers=0, state_dir=state_dir,
                             **kwargs) as service:
            handles = [service.submit(spec) for spec in specs]
            service.run_until_idle()
            results = [canonical(h.result(0)) for h in handles]
            return results, service.stats()

    def test_batched_service_matches_unbatched_and_standalone(self,
                                                              tmp_path):
        graph = batch_graph().to_csr()
        standalone = [canonical(reinforce(graph, ALPHA, BETA, b1, b2,
                                          method=m, t=t))
                      for b1, b2, m, t in self.PROBLEMS]
        batched, stats = self.run_service(
            graph, str(tmp_path / "a"), self.specs())
        unbatched, cold_stats = self.run_service(
            graph, str(tmp_path / "b"), self.specs(), batching=False)
        assert batched == standalone
        assert unbatched == standalone
        assert stats["batch"]["builds"] == 1
        assert stats["batch"]["hits"] == len(self.PROBLEMS) - 1
        assert cold_stats["batch"] is None

    def test_restart_reuses_the_persisted_cache(self, tmp_path):
        graph = batch_graph().to_csr()
        state = str(tmp_path / "state")
        first, _ = self.run_service(graph, state, self.specs())
        # Restart: the original jobs hit the disk tier; a new job runs
        # against the seed restored from it.
        extra = JobSpec(alpha=ALPHA, beta=BETA, b1=2, b2=2,
                        method="filver++", t=2)
        second, stats = self.run_service(graph, state,
                                         self.specs() + [extra])
        assert second[:len(first)] == first
        assert stats["cache"]["disk_hits"] == len(self.PROBLEMS)
        assert stats["batch"]["seed_restores"] == 1
        assert second[-1] == canonical(reinforce(
            graph, ALPHA, BETA, 2, 2, method="filver++", t=2))

    def test_grouped_dispatch_regroups_fifo_within_a_priority(self):
        """A warm-context job jumps ahead of an equal-priority cold one."""
        graph = batch_graph().to_csr()
        executed = []

        def tap(job, record):
            if job.job_id not in executed:
                executed.append(job.job_id)

        with CampaignService(graph, workers=0, on_iteration=tap) as service:
            warm = service.submit(JobSpec(alpha=ALPHA, beta=BETA,
                                          b1=1, b2=1))
            service.run_until_idle()  # (ALPHA, BETA) context is now warm
            cold = service.submit(JobSpec(alpha=ALPHA + 1, beta=BETA,
                                          b1=1, b2=1))
            grouped = service.submit(JobSpec(alpha=ALPHA, beta=BETA,
                                             b1=2, b2=1))
            service.run_until_idle()
            assert executed == [warm.job_id, grouped.job_id, cold.job_id]
            assert service.stats()["batch"]["grouped"] == 1

    def test_grouped_dispatch_never_outranks_priority(self):
        """A warm context cannot promote a job over a higher priority."""
        graph = batch_graph().to_csr()
        executed = []

        def tap(job, record):
            if job.job_id not in executed:
                executed.append(job.job_id)

        with CampaignService(graph, workers=0, on_iteration=tap) as service:
            warm = service.submit(JobSpec(alpha=ALPHA, beta=BETA,
                                          b1=1, b2=1))
            service.run_until_idle()
            hi = service.submit(JobSpec(alpha=ALPHA + 1, beta=BETA,
                                        b1=1, b2=1, priority=5))
            lo = service.submit(JobSpec(alpha=ALPHA, beta=BETA,
                                        b1=2, b2=1))
            service.run_until_idle()
            assert executed == [warm.job_id, hi.job_id, lo.job_id]

    def test_worker_pool_agrees_with_inline(self, tmp_path):
        graph = batch_graph().to_csr()
        standalone = [canonical(reinforce(graph, ALPHA, BETA, b1, b2,
                                          method=m, t=t))
                      for b1, b2, m, t in self.PROBLEMS]
        with CampaignService(graph, workers=2,
                             state_dir=str(tmp_path / "w")) as service:
            handles = [service.submit(spec) for spec in self.specs()]
            results = [canonical(h.result(timeout=60)) for h in handles]
        assert results == standalone
