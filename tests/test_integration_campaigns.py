"""End-to-end campaigns: every public workflow on every workload family.

These integration tests run the complete pipeline — generate → analyze →
reinforce → validate — over the three workload families (ER, power-law,
planted) and assert the cross-cutting invariants that no unit test owns:

* results are internally consistent (core sizes, follower accounting,
  budgets);
* all greedy variants agree on follower totals (t = 1) and stay close
  (t > 1);
* the cascade simulator, the core index, and the reinforcement results
  tell one coherent story about the same graph.
"""

import pytest

from repro.abcore import CoreIndex, abcore, anchored_abcore, delta
from repro.core import reinforce
from repro.dynamics import simulate_cascade
from repro.generators import (
    chung_lu_bipartite,
    erdos_renyi_bipartite,
    planted_core_graph,
)

WORKLOADS = {
    "er": lambda: erdos_renyi_bipartite(120, 100, n_edges=700, seed=11),
    "powerlaw": lambda: chung_lu_bipartite(150, 110, 650, seed=12),
    "planted": lambda: planted_core_graph(3, 3, n_chains=10,
                                          max_chain_length=5, seed=13),
}


def constraints_for(graph):
    d = delta(graph)
    return max(2, int(0.6 * d)), max(2, int(0.4 * d))


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
class TestCampaign:
    def test_full_pipeline_consistency(self, workload):
        graph = WORKLOADS[workload]()
        alpha, beta = constraints_for(graph)
        base = abcore(graph, alpha, beta)

        result = reinforce(graph, alpha, beta, 3, 3, method="filver++", t=2)

        # budget discipline
        uppers = [a for a in result.anchors if graph.is_upper(a)]
        lowers = [a for a in result.anchors if graph.is_lower(a)]
        assert len(uppers) <= 3 and len(lowers) <= 3
        # anchors come from outside the base core
        assert not set(result.anchors) & base
        # follower accounting matches a fresh global recomputation
        final = anchored_abcore(graph, alpha, beta, result.anchors)
        assert result.followers == final - base - set(result.anchors)
        assert result.final_core_size == len(final)
        assert result.base_core_size == len(base)

    def test_variants_agree(self, workload):
        graph = WORKLOADS[workload]()
        alpha, beta = constraints_for(graph)
        totals = {
            method: reinforce(graph, alpha, beta, 2, 2,
                              method=method).n_followers
            for method in ("naive", "filver", "filver+")
        }
        assert len(set(totals.values())) == 1, (workload, totals)
        multi = reinforce(graph, alpha, beta, 2, 2, method="filver++",
                          t=2).n_followers
        reference = totals["filver"]
        if reference:
            assert multi >= reference * 0.5

    def test_reinforced_graph_survives_the_shock_better(self, workload):
        graph = WORKLOADS[workload]()
        # find a constraint setting with promising anchors on this workload
        result = None
        alpha = beta = None
        for alpha, beta in (constraints_for(graph), (3, 3), (3, 2), (2, 2)):
            candidate = reinforce(graph, alpha, beta, 3, 3, method="filver")
            if candidate.anchors:
                result = candidate
                break
        if result is None:
            pytest.skip("no promising anchors on this workload")

        # shock: everything outside the anchored core departs
        final = anchored_abcore(graph, alpha, beta, result.anchors)
        shock = [v for v in graph.vertices() if v not in final]
        protected = simulate_cascade(graph, alpha, beta, shock,
                                     anchors=result.anchors)
        # the anchored core is cascade-stable by construction
        assert protected.survivors == final

    def test_index_agrees_with_run_constraints(self, workload):
        graph = WORKLOADS[workload]()
        alpha, beta = constraints_for(graph)
        index = CoreIndex.build(graph)
        assert index.core(alpha, beta) == abcore(graph, alpha, beta)
        assert index.delta() == delta(graph)
