"""Tests for the budget-minimization variant."""

import pytest

from repro.abcore import abcore, anchored_abcore
from repro.core.budget_min import (
    minimize_anchors_for_growth,
    minimize_anchors_for_targets,
)
from repro.exceptions import InvalidParameterError

from conftest import K34, random_bigraph


class TestGrowthGoal:
    def test_zero_target_needs_no_anchors(self, k34_with_periphery):
        result = minimize_anchors_for_growth(k34_with_periphery, 4, 3, 0)
        assert result.anchors == []
        assert result.n_followers == 0

    def test_reaches_small_target_with_one_anchor(self, k34_with_periphery):
        # anchoring l4 rescues 3 vertices; target 3 should cost one anchor
        result = minimize_anchors_for_growth(k34_with_periphery, 4, 3, 3)
        assert len(result.anchors) == 1
        assert result.n_followers >= 3

    def test_larger_target_uses_more_anchors(self, k34_with_periphery):
        result = minimize_anchors_for_growth(k34_with_periphery, 4, 3, 4)
        assert len(result.anchors) == 2
        assert result.n_followers >= 4

    def test_unreachable_target_stops_gracefully(self, k34_with_periphery):
        g = k34_with_periphery
        result = minimize_anchors_for_growth(g, 4, 3, 10_000)
        # ran out of useful anchors, returned its best effort
        assert result.n_followers < 10_000
        assert len(result.anchors) <= g.n_vertices

    def test_max_anchors_cap(self, k34_with_periphery):
        result = minimize_anchors_for_growth(k34_with_periphery, 4, 3, 4,
                                             max_anchors=1)
        assert len(result.anchors) <= 1

    def test_negative_target_rejected(self, k34_with_periphery):
        with pytest.raises(InvalidParameterError):
            minimize_anchors_for_growth(k34_with_periphery, 4, 3, -1)

    def test_anchor_prefixes_are_valid_plans(self):
        """Anchors come in placement order: each prefix's followers are a
        subset of the next prefix's (monotone plans)."""
        g = random_bigraph(3, n1_range=(12, 18), n2_range=(12, 18))
        result = minimize_anchors_for_growth(g, 2, 2, 6)
        base = abcore(g, 2, 2)
        previous: set = set()
        for i in range(1, len(result.anchors) + 1):
            prefix = result.anchors[:i]
            followers = anchored_abcore(g, 2, 2, prefix) - base - set(prefix)
            assert previous <= followers | set(prefix)
            previous = followers


class TestTargetGoal:
    def test_targets_already_in_core(self, k34_with_periphery):
        result = minimize_anchors_for_targets(k34_with_periphery, 4, 3, [0])
        assert result.anchors == []

    def test_rescuable_target_is_rescued_not_anchored(self,
                                                      k34_with_periphery):
        g = k34_with_periphery
        result = minimize_anchors_for_targets(g, 4, 3, [K34["u7"]])
        final = anchored_abcore(g, 4, 3, result.anchors)
        assert K34["u7"] in final
        # cheaper to rescue via the chain than to anchor u7 itself
        assert len(result.anchors) == 1

    def test_unrescuable_target_gets_anchored(self, k34_with_periphery):
        g = k34_with_periphery
        result = minimize_anchors_for_targets(g, 4, 3, [K34["u6"]])
        # u6 is isolated: nothing can rescue it
        assert K34["u6"] in result.anchors

    def test_multiple_targets_all_end_in_core(self):
        g = random_bigraph(5, n1_range=(12, 18), n2_range=(12, 18))
        core = abcore(g, 2, 2)
        outside = [v for v in g.vertices() if v not in core][:4]
        if not outside:
            return
        result = minimize_anchors_for_targets(g, 2, 2, outside)
        final = anchored_abcore(g, 2, 2, result.anchors)
        assert set(outside) <= final

    def test_out_of_range_target_rejected(self, k34_with_periphery):
        with pytest.raises(InvalidParameterError):
            minimize_anchors_for_targets(k34_with_periphery, 4, 3, [999])
