"""Tests for the runner defaults and the engine's progress callback."""

import pytest

from repro.core.engine import EngineOptions, run_engine
from repro.core.filver import FILVER_OPTIONS
from repro.experiments.runner import (
    DEFAULTS,
    ExperimentDefaults,
    MethodRun,
    default_constraints,
)
from repro.generators import load_dataset


class TestDefaults:
    def test_paper_defaults(self):
        assert DEFAULTS.b1 == DEFAULTS.b2 == 10
        assert DEFAULTS.t == 5
        assert DEFAULTS.alpha_fraction == pytest.approx(0.6)
        assert DEFAULTS.beta_fraction == pytest.approx(0.4)

    def test_default_constraints_floor(self):
        from repro.bigraph import from_biadjacency

        # delta = 1 star graph: fractions floor at 2
        g = from_biadjacency([[1, 1, 1]])
        assert default_constraints(g) == (2, 2)

    def test_default_constraints_scale_with_delta(self):
        g = load_dataset("ER", scale=0.3)
        alpha, beta = default_constraints(g)
        assert alpha >= beta >= 2

    def test_method_run_display(self):
        ok = MethodRun("AC", "filver", 3, 2, 5, 5, 7, 0.5, False, None)
        assert ok.display_time == "0.500"
        late = MethodRun("AC", "naive", 3, 2, 5, 5, -1, float("inf"), True,
                         None)
        assert late.display_time == "TIMEOUT"


class TestProgressCallback:
    def test_callback_sees_every_iteration(self, k34_with_periphery):
        seen = []
        result = run_engine(k34_with_periphery, 4, 3, 1, 1, FILVER_OPTIONS,
                            "x", on_iteration=seen.append)
        assert len(seen) == len(result.iterations)
        assert [r.anchors for r in seen] == \
            [r.anchors for r in result.iterations]

    def test_callback_exception_aborts_the_run(self, k34_with_periphery):
        class Abort(RuntimeError):
            pass

        def boom(record):
            raise Abort()

        with pytest.raises(Abort):
            run_engine(k34_with_periphery, 4, 3, 1, 1, FILVER_OPTIONS, "x",
                       on_iteration=boom)

    def test_callback_fires_on_terminal_empty_iteration(self):
        from repro.bigraph import from_biadjacency

        # core covers everything useful; first iteration finds no candidates
        g = from_biadjacency([[1, 1], [1, 1], [0, 0]])
        seen = []
        run_engine(g, 2, 2, 1, 0, FILVER_OPTIONS, "x",
                   on_iteration=seen.append)
        assert len(seen) <= 1  # either nothing (no candidates) or one empty
