"""Tests for GraphBuilder and the edge-list constructors."""

import pytest

from repro.bigraph import GraphBuilder, from_edge_list
from repro.exceptions import GraphConstructionError


class TestGraphBuilder:
    def test_incremental_build(self):
        b = GraphBuilder()
        b.add_edge("alice", "bread")
        b.add_edge("alice", "milk")
        b.add_edge("bob", "milk")
        g = b.build()
        assert (g.n_upper, g.n_lower, g.n_edges) == (2, 2, 3)
        assert g.label_of(g.vertex_of("upper", "bob")) == "bob"

    def test_layers_have_separate_namespaces(self):
        b = GraphBuilder()
        b.add_edge("x", "x")  # same label on both layers is fine
        g = b.build()
        assert g.n_upper == 1 and g.n_lower == 1
        assert g.vertex_of("upper", "x") != g.vertex_of("lower", "x")

    def test_add_vertex_idempotent(self):
        b = GraphBuilder()
        assert b.add_upper("u") == b.add_upper("u") == 0
        assert b.add_lower("v") == b.add_lower("v") == 0

    def test_duplicate_edges_deduped_by_default(self):
        b = GraphBuilder()
        b.add_edges([("a", "x"), ("a", "x")])
        assert b.n_edges_staged == 2
        assert b.build().n_edges == 1

    def test_duplicate_edges_rejected_when_strict(self):
        b = GraphBuilder()
        b.add_edges([("a", "x"), ("a", "x")])
        with pytest.raises(GraphConstructionError):
            b.build(dedupe=False)

    def test_isolated_vertices_kept(self):
        b = GraphBuilder()
        b.add_upper("lonely")
        b.add_edge("a", "x")
        g = b.build()
        assert g.n_upper == 2
        assert g.degree(g.vertex_of("upper", "lonely")) == 0


class TestFromEdgeList:
    def test_layer_sizes_inferred(self):
        g = from_edge_list([(0, 0), (2, 1)])
        assert (g.n_upper, g.n_lower) == (3, 2)

    def test_explicit_layer_sizes_allow_isolated(self):
        g = from_edge_list([(0, 0)], n_upper=5, n_lower=4)
        assert g.n_vertices == 9
        assert g.degree(4) == 0

    def test_out_of_range_index_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_edge_list([(3, 0)], n_upper=2, n_lower=1)

    def test_negative_index_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_edge_list([(-1, 0)])

    def test_empty_edge_list(self):
        g = from_edge_list([])
        assert g.n_vertices == 0 and g.n_edges == 0

    def test_adjacency_is_sorted(self):
        g = from_edge_list([(0, 2), (0, 0), (0, 1)])
        assert g.neighbors(0) == [1, 2, 3]
