"""Tests for the CSV regression comparison tool."""

from repro.experiments.compare import compare_csv
from repro.experiments.export import write_csv
from repro.experiments.runner import MethodRun


def run(dataset, method, followers, elapsed, timed_out=False):
    return MethodRun(dataset, method, 3, 2, 5, 5, followers,
                     elapsed, timed_out, None)


def write(path, runs):
    write_csv(runs, path)
    return path


class TestCompare:
    def test_identical_exports_are_clean(self, tmp_path):
        runs = [run("AC", "filver", 10, 0.1), run("WC", "filver++", 20, 0.2)]
        old = write(tmp_path / "old.csv", runs)
        new = write(tmp_path / "new.csv", runs)
        report = compare_csv(old, new)
        assert report.clean
        assert report.compared == 2
        assert "no changes" in report.render()

    def test_runtime_regression_detected(self, tmp_path):
        old = write(tmp_path / "old.csv", [run("AC", "filver", 10, 0.1)])
        new = write(tmp_path / "new.csv", [run("AC", "filver", 10, 0.5)])
        report = compare_csv(old, new, tolerance=1.25)
        assert not report.clean
        assert len(report.regressions) == 1
        assert report.regressions[0]["ratio"] == 5.0
        assert "REGRESSIONS" in report.render()

    def test_improvement_detected_but_clean(self, tmp_path):
        old = write(tmp_path / "old.csv", [run("AC", "filver", 10, 0.5)])
        new = write(tmp_path / "new.csv", [run("AC", "filver", 10, 0.1)])
        report = compare_csv(old, new)
        assert report.clean
        assert len(report.improvements) == 1

    def test_follower_change_is_flagged(self, tmp_path):
        old = write(tmp_path / "old.csv", [run("AC", "filver", 10, 0.1)])
        new = write(tmp_path / "new.csv", [run("AC", "filver", 11, 0.1)])
        report = compare_csv(old, new)
        assert not report.clean
        assert report.follower_changes
        assert "FOLLOWER-COUNT CHANGES" in report.render()

    def test_noise_within_tolerance_ignored(self, tmp_path):
        old = write(tmp_path / "old.csv", [run("AC", "filver", 10, 0.100)])
        new = write(tmp_path / "new.csv", [run("AC", "filver", 10, 0.110)])
        report = compare_csv(old, new, tolerance=1.25)
        assert report.clean and not report.improvements

    def test_timeouts_are_skipped_for_ratios(self, tmp_path):
        old = write(tmp_path / "old.csv",
                    [run("SN", "naive", -1, float("inf"), timed_out=True)])
        new = write(tmp_path / "new.csv", [run("SN", "naive", -1, 0.5)])
        report = compare_csv(old, new)
        assert not report.regressions
        # follower counts equal (-1 both) -> no change flagged
        assert report.clean

    def test_one_sided_rows_reported(self, tmp_path):
        old = write(tmp_path / "old.csv", [run("AC", "filver", 10, 0.1)])
        new = write(tmp_path / "new.csv", [run("WC", "filver", 10, 0.1)])
        report = compare_csv(old, new)
        assert len(report.only_old) == 1
        assert len(report.only_new) == 1
        assert "only in old: 1" in report.render()
