"""Tests for the runtime sanitizer gate (repro.analysis.sanitize).

The failure taxonomy is unit-tested through the pure
:func:`~repro.analysis.sanitize.evaluate_run`; the ``SharedMemory``
instrumentation is exercised in throwaway subprocesses (so the
monkeypatch never touches this test process); and the driver runs
end-to-end against tiny generated suites.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.sanitize import evaluate_run

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
ENV = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}


class TestEvaluateRun:
    def test_clean_run_has_no_problems(self):
        stderr = ("repro-sanitize: tracking shm=True fd-baseline=12\n"
                  "repro-sanitize: fd-baseline=12 fd-final=13\n"
                  "repro-sanitize: done handles=0 segments=0\n")
        assert evaluate_run(0, stderr, set(), set(), 8, seed=7) == []

    def test_nonzero_exit_names_the_seed(self):
        problems = evaluate_run(1, "", set(), set(), 8, seed=42)
        assert len(problems) == 1
        assert "PYTHONHASHSEED=42" in problems[0]

    def test_leak_markers_become_problems(self):
        stderr = ("repro-sanitize: leaked-shm-handle name=psm_x "
                  "created=True\n"
                  "repro-sanitize: leaked-shm-segment name=psm_x\n")
        problems = evaluate_run(0, stderr, set(), set(), 8, seed=0)
        assert len(problems) == 2
        assert any(p.startswith("leaked-shm-handle") for p in problems)
        assert any(p.startswith("leaked-shm-segment") for p in problems)

    def test_unmarked_stderr_lines_are_ignored(self):
        stderr = "some test wrote leaked-shm-handle to stderr\n"
        assert evaluate_run(0, stderr, set(), set(), 8, seed=0) == []

    def test_fd_delta_respects_tolerance(self):
        stderr = "repro-sanitize: fd-baseline=10 fd-final=20\n"
        assert evaluate_run(0, stderr, set(), set(), 10, seed=0) == []
        problems = evaluate_run(0, stderr, set(), set(), 8, seed=0)
        assert len(problems) == 1 and "fd delta +10" in problems[0]

    def test_resource_tracker_warning_is_a_problem(self):
        stderr = ("UserWarning: resource_tracker: There appear to be 1 "
                  "leaked shared_memory objects to clean up at shutdown\n")
        problems = evaluate_run(0, stderr, set(), set(), 8, seed=0)
        assert len(problems) == 1 and "worker-side leak" in problems[0]

    def test_surviving_dev_shm_segments_are_reported(self):
        problems = evaluate_run(0, "", {"psm_old"}, {"psm_old", "psm_new"},
                                8, seed=0)
        assert len(problems) == 1
        assert "psm_new" in problems[0] and "psm_old" not in problems[0]


def run_plugin_script(body: str) -> str:
    """Run the instrumentation in a throwaway process; return its stderr."""
    script = textwrap.dedent("""\
        import repro.analysis._sanitize_plugin as plugin
        from multiprocessing import shared_memory

        plugin.pytest_sessionstart(None)
        %s
        plugin.pytest_sessionfinish(None, 0)
    """) % textwrap.dedent(body)
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True,
                          cwd=str(REPO_ROOT), env=ENV)
    assert proc.returncode == 0, proc.stderr
    return proc.stderr


@pytest.mark.skipif(sys.platform.startswith("win"),
                    reason="POSIX shared memory")
class TestSanitizePlugin:
    def test_closed_and_unlinked_segment_reports_clean(self):
        stderr = run_plugin_script("""\
            shm = shared_memory.SharedMemory(create=True, size=64)
            shm.close()
            shm.unlink()
        """)
        assert "repro-sanitize: done handles=0 segments=0" in stderr
        assert "leaked-shm" not in stderr
        assert evaluate_run(0, stderr, set(), set(), 1024, seed=0) == []

    def test_leaked_handle_and_segment_are_reported(self):
        stderr = run_plugin_script("""\
            shm = shared_memory.SharedMemory(create=True, size=64)
            plugin.pytest_sessionfinish(None, 0)
            shm.close()
            shm.unlink()
        """)
        # The first sessionfinish (inside the body, while the handle is
        # still live) must report both leak shapes; the parser must then
        # turn them into gate failures.
        assert "leaked-shm-handle" in stderr
        assert "leaked-shm-segment" in stderr
        problems = evaluate_run(0, stderr, set(), set(), 1024, seed=0)
        assert any("leaked-shm-segment" in p for p in problems)

    def test_attached_handle_without_close_is_a_handle_leak_only(self):
        stderr = run_plugin_script("""\
            shm = shared_memory.SharedMemory(create=True, size=64)
            shm.close()
            attached = shared_memory.SharedMemory(name=shm.name)
            plugin.pytest_sessionfinish(None, 0)
            attached.close()
            shm.unlink()
        """)
        assert "leaked-shm-handle" in stderr
        assert "created=False" in stderr


class TestSanitizeMain:
    def run_main(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis.sanitize", *args],
            capture_output=True, text=True, cwd=str(REPO_ROOT), env=ENV)

    def test_passing_suite_is_clean_and_seed_is_pinned(self, tmp_path):
        target = tmp_path / "test_tiny_pass.py"
        target.write_text("def test_ok():\n    assert True\n",
                          encoding="utf-8")
        proc = self.run_main("--seed", "7", "--runs", "3",
                             "--fd-tolerance", "256", str(target))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # --seed pins the hash seed and forces a single run.
        assert "run 1/1 seed=7 ok" in proc.stdout
        assert "clean" in proc.stdout

    def test_failing_suite_fails_the_gate_and_names_the_seed(self, tmp_path):
        target = tmp_path / "test_tiny_fail.py"
        target.write_text("def test_no():\n    assert False\n",
                          encoding="utf-8")
        proc = self.run_main("--seed", "11", "--fd-tolerance", "256",
                             str(target))
        assert proc.returncode == 1
        assert "suite failed under PYTHONHASHSEED=11" in proc.stdout
        assert "repro.analysis.sanitize: FAILED" in proc.stdout
