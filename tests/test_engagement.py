"""Tests for heterogeneous-threshold engagement equilibria."""

import pytest
from hypothesis import given, settings

from repro.abcore import abcore, anchored_abcore
from repro.bigraph import from_biadjacency
from repro.dynamics.engagement import ThresholdProfile, anchored_gain, equilibrium
from repro.exceptions import InvalidParameterError

from conftest import graphs_with_constraints


class TestProfile:
    def test_uniform_profile(self, k34_with_periphery):
        profile = ThresholdProfile.uniform(4, 3)
        g = k34_with_periphery
        assert profile.threshold(g, 0) == 4
        assert profile.threshold(g, g.n_upper) == 3

    def test_overrides(self, k34_with_periphery):
        profile = ThresholdProfile(4, 3, overrides={0: 1})
        assert profile.threshold(k34_with_periphery, 0) == 1

    def test_negative_thresholds_rejected(self):
        with pytest.raises(InvalidParameterError):
            ThresholdProfile(-1, 2)
        with pytest.raises(InvalidParameterError):
            ThresholdProfile(1, 1, overrides={3: -2})


class TestEquilibrium:
    def test_zero_thresholds_keep_everyone(self, k34_with_periphery):
        g = k34_with_periphery
        assert equilibrium(g, ThresholdProfile(0, 0)) == set(g.vertices())

    def test_lenient_override_keeps_a_vertex(self, k34_with_periphery):
        from conftest import K34

        g = k34_with_periphery
        strict = ThresholdProfile.uniform(4, 3)
        assert K34["u4"] not in equilibrium(g, strict)
        lenient = ThresholdProfile(4, 3, overrides={K34["u4"]: 2})
        result = equilibrium(g, lenient)
        # u4 now needs only 2 of its 3 neighbors; l0 and l1 are stable
        assert K34["u4"] in result

    def test_strict_override_expels_and_cascades(self):
        # 4-cycle at (2,2) is stable; raising one threshold collapses it
        g = from_biadjacency([[1, 1], [1, 1]])
        strict = ThresholdProfile(2, 2, overrides={0: 3})
        assert equilibrium(g, strict) == set()

    def test_anchors_are_unconditional(self, k34_with_periphery):
        from conftest import K34

        g = k34_with_periphery
        profile = ThresholdProfile.uniform(4, 3)
        result = equilibrium(g, profile, anchors=[K34["u6"]])
        assert K34["u6"] in result

    def test_anchored_gain_matches_followers(self, k34_with_periphery):
        from conftest import K34

        g = k34_with_periphery
        profile = ThresholdProfile.uniform(4, 3)
        gain = anchored_gain(g, profile, [K34["l4"]])
        assert gain == {K34["u3"], K34["l5"], K34["u7"]}


@settings(max_examples=35, deadline=None)
@given(graphs_with_constraints())
def test_uniform_equilibrium_is_the_core(data):
    g, alpha, beta = data
    profile = ThresholdProfile.uniform(alpha, beta)
    assert equilibrium(g, profile) == abcore(g, alpha, beta)
    anchor = g.n_vertices // 2
    assert equilibrium(g, profile, [anchor]) \
        == anchored_abcore(g, alpha, beta, [anchor])


@settings(max_examples=25, deadline=None)
@given(graphs_with_constraints())
def test_equilibrium_is_stable_and_maximal(data):
    g, alpha, beta = data
    profile = ThresholdProfile(alpha, beta,
                               overrides={0: max(0, alpha - 1)}
                               if g.n_upper else {})
    stable = equilibrium(g, profile)
    for v in stable:
        inside = sum(1 for w in g.neighbors(v) if w in stable)
        assert inside >= profile.threshold(g, v)
    for v in g.vertices():
        if v in stable:
            continue
        inside = sum(1 for w in g.neighbors(v) if w in stable)
        assert inside < profile.threshold(g, v)
