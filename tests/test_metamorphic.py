"""Metamorphic properties of the anchored (α,β)-core machinery.

Each test states a relation that must hold between a computation and a
transformed re-run of it (relabeled vertices, tightened constraints, added
edges, placed anchors) — no oracle values, so the properties hold on any
seeded graph and catch whole classes of bugs that example-based tests
cannot (id-dependent tie-breaking, backend-dependent neighbor handling,
monotonicity violations).

All randomness flows through ``make_rng`` seeds; both adjacency backends
run every property.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import pytest

from repro.abcore.decomposition import abcore, anchored_abcore
from repro.bigraph import BipartiteGraph, add_edges, from_edge_list
from repro.core.api import reinforce
from repro.utils.rng import derive_seed, make_rng

BACKENDS = ("list", "csr")
SEEDS = (11, 23, 47)
CONSTRAINTS = ((2, 2), (3, 2), (2, 3))


def seeded_graph(seed: int, backend: str, n1: int = 14, n2: int = 12,
                 density: float = 0.3) -> BipartiteGraph:
    rng = make_rng(seed)
    edges = [(u, v) for u in range(n1) for v in range(n2)
             if rng.random() < density]
    return from_edge_list(edges, n_upper=n1, n_lower=n2, backend=backend)


def followers_of(graph: BipartiteGraph, alpha: int, beta: int,
                 anchors: Set[int]) -> Set[int]:
    """``F(A)`` straight from the definition (global recomputation)."""
    base = abcore(graph, alpha, beta)
    anchored = anchored_abcore(graph, alpha, beta, anchors)
    return anchored - base - anchors


def permuted_copy(graph: BipartiteGraph,
                  seed: int) -> Tuple[BipartiteGraph, Dict[int, int]]:
    """A copy with a seeded within-layer relabeling; returns (copy, old→new)."""
    rng = make_rng(seed)
    new_upper = list(range(graph.n_upper))
    new_lower = list(range(graph.n_lower))
    rng.shuffle(new_upper)
    rng.shuffle(new_lower)
    mapping = {old: new for old, new in enumerate(new_upper)}
    for old, new in enumerate(new_lower):
        mapping[graph.n_upper + old] = graph.n_upper + new
    edges = sorted((mapping[u], mapping[v] - graph.n_upper)
                   for u, v in graph.edges())
    relabeled = from_edge_list(edges, n_upper=graph.n_upper,
                               n_lower=graph.n_lower, backend=graph.backend)
    return relabeled, mapping


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("alpha,beta", CONSTRAINTS)
def test_relabeling_invariance_of_follower_counts(seed, backend, alpha, beta):
    """``|F(A)|`` does not depend on vertex ids, only on structure."""
    graph = seeded_graph(seed, backend)
    relabeled, mapping = permuted_copy(graph, derive_seed(seed, "perm"))
    assert abcore(graph, alpha, beta) == {  # the core itself maps over too
        v for v in graph.vertices()
        if mapping[v] in abcore(relabeled, alpha, beta)}
    rng = make_rng(derive_seed(seed, "anchors"))
    vertices = sorted(graph.vertices())
    for size in (1, 2, 3):
        anchors = set(rng.sample(vertices, size))
        original = followers_of(graph, alpha, beta, anchors)
        relabeled_followers = followers_of(
            relabeled, alpha, beta, {mapping[a] for a in anchors})
        assert len(original) == len(relabeled_followers)
        assert {mapping[f] for f in original} == relabeled_followers


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("alpha,beta", CONSTRAINTS)
def test_anchoring_only_grows_the_core(seed, backend, alpha, beta):
    """``C(G) ⊆ C(G_A)``: anchors add support, never remove it."""
    graph = seeded_graph(seed, backend)
    base = abcore(graph, alpha, beta)
    rng = make_rng(derive_seed(seed, "grow"))
    vertices = sorted(graph.vertices())
    for size in (1, 2, 4):
        anchors = rng.sample(vertices, size)
        anchored = anchored_abcore(graph, alpha, beta, anchors)
        assert base <= anchored | set(anchors)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("method", ("filver", "filver+", "filver++"))
def test_followers_disjoint_from_core_and_anchors(seed, backend, method):
    """Reported followers are new vertices: outside ``C(G)`` and ``A``."""
    graph = seeded_graph(seed, backend)
    alpha, beta = 2, 2
    result = reinforce(graph, alpha, beta, 2, 2, method=method)
    base = abcore(graph, alpha, beta)
    assert not result.followers & base
    assert not result.followers & set(result.anchors)
    # And they really are followers: the definitional recomputation agrees.
    assert result.followers == followers_of(graph, alpha, beta,
                                            set(result.anchors))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_core_shrinks_monotonically_in_alpha_and_beta(seed, backend):
    """Tightening either degree constraint can only lose core vertices."""
    graph = seeded_graph(seed, backend)
    for alpha in (1, 2, 3):
        for beta in (1, 2, 3):
            core = abcore(graph, alpha, beta)
            assert abcore(graph, alpha + 1, beta) <= core
            assert abcore(graph, alpha, beta + 1) <= core


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("alpha,beta", CONSTRAINTS)
def test_edge_addition_never_evicts_core_members(seed, backend, alpha, beta):
    """Extra edges only add support: ``C(G) ⊆ C(G + E')``."""
    graph = seeded_graph(seed, backend)
    core = abcore(graph, alpha, beta)
    present = set(graph.edges())
    candidates = [(u, v) for u in range(graph.n_upper)
                  for v in range(graph.n_upper, graph.n_vertices)
                  if (u, v) not in present]
    rng = make_rng(derive_seed(seed, "edges"))
    extra = rng.sample(candidates, min(5, len(candidates)))
    grown = add_edges(graph, extra)
    assert grown.backend == graph.backend
    assert core <= abcore(grown, alpha, beta)
