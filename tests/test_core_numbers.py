"""Tests for the capped upper/lower core numbers (Definition 10)."""

from hypothesis import given, settings

from repro.abcore import (
    abcore,
    anchored_abcore,
    lower_core_numbers,
    upper_core_numbers,
)

from conftest import graphs_with_constraints


def brute_force_upper_core_number(graph, v, alpha, beta, anchors=()):
    """min(beta, max k such that v in the anchored (alpha,k)-core)."""
    best = 0
    for k in range(1, beta + 1):
        if v in anchored_abcore(graph, alpha, k, anchors):
            best = k
    return best


class TestOnFixture:
    def test_core_vertices_get_the_cap(self, k34_with_periphery):
        g = k34_with_periphery
        numbers = upper_core_numbers(g, 4, 3)
        for v in abcore(g, 4, 3):
            assert numbers[v] == 3

    def test_shell_vertices_sit_one_below(self, k34_with_periphery):
        from conftest import K34

        g = k34_with_periphery
        numbers = upper_core_numbers(g, 4, 3)
        # chain-A members are in the (4,2)-core but not the (4,3)-core
        assert numbers[K34["u3"]] == 2
        assert numbers[K34["l4"]] == 2

    def test_isolated_vertex_is_zero(self, k34_with_periphery):
        from conftest import K34

        numbers = upper_core_numbers(k34_with_periphery, 4, 3)
        assert numbers[K34["u6"]] == 0

    def test_anchors_get_the_cap(self, k34_with_periphery):
        from conftest import K34

        g = k34_with_periphery
        numbers = upper_core_numbers(g, 4, 3, anchors=[K34["u6"]])
        assert numbers[K34["u6"]] == 3

    def test_subset_matches_global_for_closed_regions(self, k34_with_periphery):
        g = k34_with_periphery
        full = upper_core_numbers(g, 4, 3)
        # The whole vertex set as "subset" must reproduce the global numbers.
        sub = upper_core_numbers(g, 4, 3, subset=list(g.vertices()))
        assert sub == full


@settings(max_examples=25, deadline=None)
@given(graphs_with_constraints(max_constraint=3))
def test_upper_core_numbers_match_definition(data):
    g, alpha, beta = data
    numbers = upper_core_numbers(g, alpha, beta)
    for v in g.vertices():
        assert numbers[v] == brute_force_upper_core_number(g, v, alpha, beta)


@settings(max_examples=25, deadline=None)
@given(graphs_with_constraints(max_constraint=3))
def test_lower_core_numbers_match_definition(data):
    g, alpha, beta = data
    numbers = lower_core_numbers(g, alpha, beta)
    for v in g.vertices():
        best = 0
        for k in range(1, alpha + 1):
            if v in anchored_abcore(g, k, beta, ()):
                best = k
        assert numbers[v] == best


@settings(max_examples=20, deadline=None)
@given(graphs_with_constraints(max_constraint=3))
def test_core_numbers_never_decrease_with_anchors(data):
    g, alpha, beta = data
    plain = upper_core_numbers(g, alpha, beta)
    anchor = next(iter(g.vertices()), None)
    if anchor is None:
        return
    anchored = upper_core_numbers(g, alpha, beta, anchors=[anchor])
    for v in g.vertices():
        assert anchored[v] >= plain[v]
