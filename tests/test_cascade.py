"""Tests for the departure-cascade simulator."""

from hypothesis import given, settings

from repro.abcore import abcore
from repro.bigraph import from_biadjacency
from repro.dynamics import resilience_gain, simulate_cascade

from conftest import K34, graphs_with_constraints


class TestCascadeMechanics:
    def test_no_shock_no_departures(self, k34_with_periphery):
        result = simulate_cascade(k34_with_periphery, 4, 3, [])
        assert result.departed == 0
        assert result.survivors == set(k34_with_periphery.vertices())

    def test_shock_waves_are_ordered(self, k34_with_periphery):
        g = k34_with_periphery
        # removing core upper u0 should trigger cascading waves
        result = simulate_cascade(g, 4, 3, [0])
        assert result.rounds[0] == [0]
        assert result.n_rounds >= 2
        # each wave's members actually violated after the previous waves
        gone = set()
        for wave in result.rounds:
            for v in wave:
                if v in gone:
                    continue
            gone.update(wave)
        assert gone | result.survivors == set(g.vertices())
        assert gone.isdisjoint(result.survivors)

    def test_anchor_never_leaves_even_if_shocked(self, k34_with_periphery):
        g = k34_with_periphery
        result = simulate_cascade(g, 4, 3, [0], anchors=[0])
        assert 0 in result.survivors
        assert result.departed == 0 or 0 not in [v for r in result.rounds
                                                 for v in r]

    def test_total_collapse(self):
        # a bare 4-cycle at thresholds (2,2) collapses entirely once one
        # vertex leaves
        g = from_biadjacency([[1, 1], [1, 1]])
        result = simulate_cascade(g, 2, 2, [0])
        assert result.survivors == set()
        assert result.departed == 4

    def test_anchoring_stops_the_collapse(self):
        g = from_biadjacency([[1, 1], [1, 1]])
        result = simulate_cascade(g, 2, 2, [0], anchors=[1])
        # upper 1 is retained; lowers keep only 1 < 2 supports and leave
        assert 1 in result.survivors


class TestFixedPoint:
    @settings(max_examples=30, deadline=None)
    @given(graphs_with_constraints())
    def test_shocking_all_violators_yields_the_core(self, data):
        """Seeding the cascade with every under-threshold vertex must
        converge exactly to the (α,β)-core — the model's central tie-in."""
        g, alpha, beta = data
        shock = [v for v in g.vertices()
                 if g.degree(v) < (alpha if g.is_upper(v) else beta)]
        result = simulate_cascade(g, alpha, beta, shock)
        assert result.survivors == abcore(g, alpha, beta)


class TestResilienceGain:
    def test_gain_is_non_negative_on_fixture(self, k34_with_periphery):
        g = k34_with_periphery
        report = resilience_gain(g, 4, 3, [0], anchors=[K34["l4"]])
        assert set(report) == {"unprotected", "protected", "gain"}
        assert report["gain"] >= 0

    def test_anchors_do_not_count_themselves(self):
        g = from_biadjacency([[1, 1], [1, 1]])
        report = resilience_gain(g, 2, 2, [0], anchors=[1])
        # only vertex 1 survives and it is an anchor: no counted gain
        assert report["protected"] == report["unprotected"] == 0
