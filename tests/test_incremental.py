"""Cross-iteration verification memoization: differential and unit tests.

The acceptance bar for ``repro.core.incremental`` and the flat CSR kernel
is *byte-identity*: a memoized campaign must equal the memo-off engine in
anchors, follower sets, and per-iteration diagnostics (``verifications``
counts cache hits exactly as the serial scan counts recomputations), under
canonical JSON (:func:`repro.experiments.export.canonical_result_dict`).

Layers of evidence, cheapest first:

* unit contracts — the dirty regions :meth:`OrderState.apply_anchors`
  reports, and the kernel's set-identity with the generic follower code;
* a stale-entry differential that replays a random anchoring campaign and
  cross-checks every cache read against a fresh recomputation;
* engine-level byte-identity across all three FILVER variants, both
  adjacency backends, ``workers`` in {1, 4}, and resume-from-checkpoint;
* a metamorphic check: invalidating with a region covering the whole graph
  leaves the cache indistinguishable from a cold one.
"""

import json
import os
import random

import pytest

from repro.bigraph import disjoint_union, from_edge_list
from repro.bigraph.kernel import FollowerKernel, kernel_for
from repro.core import run_filver, run_filver_plus, run_filver_plus_plus
from repro.core.deletion_order import reachable_from
from repro.core.engine import run_engine
from repro.core.filver_plus_plus import filver_plus_plus_options
from repro.core.followers import compute_followers
from repro.core.incremental import VerificationCache
from repro.core.order_maintenance import OrderState
from repro.core.signatures import two_hop_filter, two_hop_filter_cached
from repro.exceptions import AbortCampaign, GraphConstructionError
from repro.experiments.export import canonical_result_dict
from repro.generators.planted import planted_core_graph


def canon(result):
    return json.dumps(canonical_result_dict(result), sort_keys=True)


def er_graph(seed, nu=30, nl=30, p=0.1, backend="list"):
    rng = random.Random(seed)
    edges = [(u, nu + v) for u in range(nu) for v in range(nl)
             if rng.random() < p]
    if not edges:
        edges = [(0, nu)]
    return from_edge_list(edges, backend=backend)


def planted_composite(n_parts=5, seed_base=900):
    """Disjoint planted-core components: repairs stay local to one
    component, so invalidation regions are genuinely partial and the cache
    survives across iterations (a single planted graph invalidates
    everything — its core numbering is global)."""
    parts = [planted_core_graph(alpha=3, beta=3, core_upper=8, core_lower=8,
                                n_chains=10, max_chain_length=8,
                                seed=seed_base + i)
             for i in range(n_parts)]
    return disjoint_union(parts)


RUNNERS = {
    "filver": run_filver,
    "filver+": run_filver_plus,
    "filver++": lambda g, a, b, b1, b2, **kw: run_filver_plus_plus(
        g, a, b, b1, b2, t=3, **kw),
}


# ----------------------------------------------------------------------
# Unit layer: dirty regions
# ----------------------------------------------------------------------

class TestDirtyRegions:
    def test_unmaintained_state_reports_none(self):
        g = planted_composite(2)
        state = OrderState(g, 3, 3, maintain=False)
        x = min(state.upper.position)
        assert state.apply_anchors([x]) is None

    def test_no_fresh_anchors_reports_empty_sides(self):
        g = planted_composite(2)
        state = OrderState(g, 3, 3, maintain=True)
        x = min(state.upper.position)
        state.apply_anchors([x])
        assert state.apply_anchors([x]) == {"upper": set(), "lower": set()}

    def test_everything_outside_the_region_is_untouched(self):
        """The soundness half of the contract the cache builds on: a
        position entry (or core membership) that changed MUST be inside
        the reported region — equivalently, outside it both orders and
        the core are bit-identical before and after the apply."""
        g = planted_composite(4).to_csr()
        state = OrderState(g, 3, 3, maintain=True)
        rng = random.Random(11)
        for _step in range(6):
            pool = sorted(set(state.upper.position)
                          | set(state.lower.position))
            pool = [v for v in pool if v not in state.anchors]
            if not pool:
                break
            before = {
                "upper": dict(state.upper.position),
                "lower": dict(state.lower.position),
            }
            core_before = set(state.core)
            dirty = state.apply_anchors(rng.sample(pool, min(2, len(pool))))
            assert dirty is not None
            core_after = state.core
            for side, order in (("upper", state.upper),
                                ("lower", state.lower)):
                old = before[side]
                new = order.position
                touched = dirty[side]
                for v in set(old) | set(new):
                    if v in touched:
                        continue
                    assert old.get(v) == new.get(v), (side, v)
            for v in core_before ^ core_after:
                assert v in dirty["upper"] or v in dirty["lower"], v

    def test_some_apply_leaves_a_clean_remainder(self):
        """The usefulness half: on a multi-component graph at least one
        apply must leave part of the shell untouched, otherwise the cache
        never carries anything and the differential tests are vacuous."""
        g = planted_composite(4).to_csr()
        state = OrderState(g, 3, 3, maintain=True)
        rng = random.Random(13)
        saw_partial = False
        for _step in range(6):
            pool = sorted(set(state.upper.position)
                          | set(state.lower.position))
            pool = [v for v in pool if v not in state.anchors]
            if not pool:
                break
            shell = len(pool)
            dirty = state.apply_anchors([rng.choice(pool)])
            if dirty is not None and sum(map(len, dirty.values())) < shell:
                saw_partial = True
        assert saw_partial


# ----------------------------------------------------------------------
# Unit layer: flat CSR kernel vs the generic follower code
# ----------------------------------------------------------------------

class TestFollowerKernel:
    def test_requires_csr_backend(self):
        g = er_graph(0, backend="list")
        assert kernel_for(g) is None
        with pytest.raises(GraphConstructionError):
            FollowerKernel(g)

    def test_kernel_for_builds_on_csr(self):
        assert isinstance(kernel_for(er_graph(0, backend="csr")),
                          FollowerKernel)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_set_identity_across_iterations(self, seed):
        """rf(x) and F(x) match the dict/set reference for every shell
        candidate, across several epochs of the same kernel instance (the
        stamp-based buffer reuse must not leak state between calls or
        iterations)."""
        g = planted_composite(3, seed_base=700 + 10 * seed).to_csr()
        state = OrderState(g, 3, 3, maintain=True)
        kernel = FollowerKernel(g)
        rng = random.Random(seed)
        for _step in range(4):
            kernel.begin_iteration(state.upper.position,
                                   state.lower.position, state.core)
            for order in (state.upper, state.lower):
                side = order.side
                for x in sorted(order.candidates(g)):
                    rf_ref = reachable_from(g, order, x)
                    assert kernel.reachable(side, x) == rf_ref, (side, x)
                    f_ref = compute_followers(g, order, x, core=state.core)
                    assert kernel.followers(side, x, 3, 3) == f_ref, (side, x)
                    assert kernel.followers(
                        side, x, 3, 3, candidates=rf_ref) == f_ref, (side, x)
            pool = sorted(set(state.upper.position)
                          | set(state.lower.position))
            pool = [v for v in pool if v not in state.anchors]
            if not pool:
                break
            state.apply_anchors([rng.choice(pool)])

    def test_release_is_idempotent(self):
        kernel = FollowerKernel(er_graph(0, backend="csr"))
        kernel.release()
        kernel.release()


# ----------------------------------------------------------------------
# Stale-entry differential: every cache read vs a fresh recomputation
# ----------------------------------------------------------------------

class TestCacheDifferential:
    def test_campaign_replay_never_serves_stale_entries(self):
        """Replays a random anchoring campaign; at every step, every
        cached signature, survivor verdict, rf set, bound, and follower
        set must equal a from-scratch recomputation.  Also asserts the
        cache actually got hits — a hit rate of zero would make this test
        pass vacuously."""
        g = planted_composite(6, seed_base=500).to_csr()
        state = OrderState(g, 3, 3, maintain=True)
        cache = VerificationCache(g)
        rng = random.Random(7)
        checked = 0
        for step in range(10):
            for order in (state.upper, state.lower):
                side = order.side
                cands = order.candidates(g)
                if not cands:
                    continue
                ref_surv, ref_sigs = two_hop_filter(g, order, cands)
                got_surv, got_sigs = two_hop_filter_cached(
                    g, order, cands, cache)
                assert got_surv == ref_surv, (step, side)
                assert got_sigs == ref_sigs, (step, side)
                for x in ref_surv:
                    checked += 1
                    rf_ref = reachable_from(g, order, x)
                    entry = cache.rf_entry(side, x)
                    if entry is None:
                        entry = cache.store_rf(side, x, rf_ref)
                    else:
                        assert entry.rf == rf_ref, (step, side, x)
                    assert entry.bound == len(rf_ref)
                    f_ref = compute_followers(g, order, x, core=state.core)
                    cached = cache.followers_for(side, x)
                    if cached is None:
                        cache.store_followers(side, x, f_ref)
                    else:
                        assert cached == f_ref, (step, side, x)
            pool = sorted(set(state.upper.position)
                          | set(state.lower.position))
            pool = [v for v in pool if v not in state.anchors]
            if not pool:
                break
            dirty = state.apply_anchors(rng.sample(pool, min(2, len(pool))))
            cache.invalidate(dirty)
        assert checked > 100
        assert cache.rf_hits > 0
        assert cache.sig_hits > 0
        assert cache.survivor_hits > 0
        assert cache.follower_hits > 0
        assert cache.evictions > 0  # invalidation actually fired


# ----------------------------------------------------------------------
# Metamorphic: whole-graph invalidation == cold cache
# ----------------------------------------------------------------------

class TestMetamorphicInvalidation:
    def test_full_region_invalidation_equals_cold_cache(self):
        """After invalidating with a dirty region covering every vertex,
        the warm cache must behave exactly like a fresh one: same filter
        output, and all reads are misses (nothing survived)."""
        g = planted_composite(3).to_csr()
        state = OrderState(g, 3, 3, maintain=True)
        warm = VerificationCache(g)
        for order in (state.upper, state.lower):
            surv, _ = two_hop_filter_cached(g, order,
                                            order.candidates(g), warm)
            for x in surv:
                warm.store_rf(side=order.side, x=x,
                              rf=reachable_from(g, order, x))
        assert warm.sig_misses > 0

        everything = set(range(g.n_upper + g.n_lower))
        warm.invalidate({"upper": everything, "lower": everything})

        cold = VerificationCache(g)
        for cache in (warm, cold):
            cache.rf_hits = cache.rf_misses = 0
            cache.sig_hits = cache.sig_misses = 0
            cache.survivor_hits = cache.survivor_misses = 0
        for order in (state.upper, state.lower):
            cands = order.candidates(g)
            warm_out = two_hop_filter_cached(g, order, cands, warm)
            cold_out = two_hop_filter_cached(g, order, cands, cold)
            assert warm_out == cold_out
            for x in warm_out[0]:
                assert warm.rf_entry(order.side, x) is None
        assert warm.rf_hits == cold.rf_hits == 0
        assert (warm.sig_hits, warm.sig_misses) == \
            (cold.sig_hits, cold.sig_misses)
        assert (warm.survivor_hits, warm.survivor_misses) == \
            (cold.survivor_hits, cold.survivor_misses)

    def test_none_region_clears_everything(self):
        """``None`` (unmaintained orders: no region information) must be
        treated as 'anything may have changed'."""
        g = planted_composite(2).to_csr()
        state = OrderState(g, 3, 3, maintain=True)
        cache = VerificationCache(g)
        order = state.upper
        surv, _ = two_hop_filter_cached(g, order, order.candidates(g), cache)
        for x in surv:
            cache.store_rf(order.side, x, reachable_from(g, order, x))
        cache.invalidate(None)
        assert cache.full_invalidations == 1
        for x in surv:
            assert cache.rf_entry(order.side, x) is None
            assert cache.signature_for(order.side, x) is None
            assert cache.survivor_verdict(order.side, x) is None


# ----------------------------------------------------------------------
# Engine layer: byte-identity of memoized / kernelized campaigns
# ----------------------------------------------------------------------

class TestEngineByteIdentity:
    @pytest.mark.parametrize("variant", sorted(RUNNERS))
    @pytest.mark.parametrize("backend", ["list", "csr"])
    def test_memo_and_kernel_match_baseline_on_er_graphs(
            self, variant, backend):
        run = RUNNERS[variant]
        for seed in range(4):
            g = er_graph(seed, backend=backend)
            base = canon(run(g, 2, 2, 3, 3, memoize=False,
                             flat_kernel=False))
            for memoize in (False, True):
                for flat_kernel in (False, None):
                    got = canon(run(g, 2, 2, 3, 3, memoize=memoize,
                                    flat_kernel=flat_kernel))
                    assert got == base, (variant, backend, seed,
                                         memoize, flat_kernel)

    @pytest.mark.parametrize("backend", ["list", "csr"])
    def test_memo_and_kernel_match_baseline_on_planted_campaign(
            self, backend):
        g = planted_composite()
        if backend == "csr":
            g = g.to_csr()
        base = canon(run_filver_plus_plus(g, 3, 3, 8, 8, t=3,
                                          memoize=False, flat_kernel=False))
        for memoize in (False, True):
            for flat_kernel in (False, None):
                got = canon(run_filver_plus_plus(
                    g, 3, 3, 8, 8, t=3, memoize=memoize,
                    flat_kernel=flat_kernel))
                assert got == base, (backend, memoize, flat_kernel)

    def test_explicit_flat_kernel_on_list_backend_raises(self):
        g = er_graph(0, backend="list")
        with pytest.raises(GraphConstructionError):
            run_filver_plus_plus(g, 2, 2, 2, 2, t=2, flat_kernel=True)


class TestParallelAndResume:
    def test_workers_and_resume_match_serial_memo_off(self, tmp_path):
        """One end-to-end matrix on the planted campaign: workers=4 with
        memoization on and off, and resume-from-checkpoint (written by an
        aborted memoized run) serial and parallel — all byte-identical to
        the serial memo-off baseline.  Caches are ephemeral: the resumed
        run rebuilds its cache from the replayed state, which must not
        show through in the output."""
        g = planted_composite().to_csr()
        base = canon(run_filver_plus_plus(g, 3, 3, 8, 8, t=3,
                                          memoize=False, flat_kernel=False))
        assert canon(run_filver_plus_plus(
            g, 3, 3, 8, 8, t=3, workers=4)) == base
        assert canon(run_filver_plus_plus(
            g, 3, 3, 8, 8, t=3, workers=4,
            memoize=False, flat_kernel=False)) == base

        cp = os.path.join(str(tmp_path), "cp.json")
        seen = []

        def abort_after_two(record):
            seen.append(record)
            if len(seen) == 2:
                raise AbortCampaign("mid-campaign stop")

        partial = run_engine(g, 3, 3, 8, 8, filver_plus_plus_options(3),
                             algorithm="filver++(t=3)", checkpoint=cp,
                             on_iteration=abort_after_two)
        assert partial.interrupted and len(partial.iterations) == 2

        for kwargs in ({}, {"memoize": False, "flat_kernel": False},
                       {"workers": 4}):
            got = canon(run_filver_plus_plus(g, 3, 3, 8, 8, t=3,
                                             resume_from=cp, **kwargs))
            assert got == base, kwargs
